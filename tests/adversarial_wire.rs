//! Adversarial wire & HTTP tests: the hand-rolled JSON parser and the
//! server's request path against hostile inputs — deeply nested arrays
//! at and past the depth limit, non-finite and 400-digit numbers,
//! bodies truncated mid-escape, duplicate keys, raw control characters.
//! Every case must come back as a **typed 400** (or a clean connection
//! error for transport-level truncation); the parser must never panic,
//! and the worker pool must never hang — after every attack the same
//! server answers a well-formed request promptly.

use lewis_serve::wire::Json;
use lewis_serve::{serve, Client, EngineRegistry, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const ENGINE: &str = "german_syn";

fn start() -> Server {
    let mut registry = EngineRegistry::new();
    registry.load_builtin(ENGINE, 400, 17).unwrap();
    let config = ServerConfig {
        workers: 2,
        max_body: 64 * 1024,
        ..ServerConfig::default()
    };
    serve(&config, Arc::new(registry)).unwrap()
}

// ---------------------------------------------------------------------
// Parser level: hostile documents must return Err, never panic or hang.
// ---------------------------------------------------------------------

#[test]
fn deep_nesting_is_cut_off_at_the_limit_not_the_stack() {
    // within the limit: parses fine
    let deep_ok = format!("{}1{}", "[".repeat(90), "]".repeat(90));
    assert!(Json::parse(&deep_ok).is_ok());
    // just past the limit: typed error naming the problem
    for depth in [97usize, 98, 200, 20_000] {
        let bomb = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let err = Json::parse(&bomb).expect_err("depth bomb must be rejected");
        assert!(err.message.contains("nesting"), "{err}");
    }
    // the same bomb as objects
    let obj_bomb = format!(r#"{}"k":1{}"#, r#"{"k":"#.repeat(200), "}".repeat(200));
    assert!(Json::parse(&obj_bomb).is_err());
    // unclosed nesting (truncated bomb) is an error, not a hang
    assert!(Json::parse(&"[".repeat(50_000)).is_err());
}

#[test]
fn huge_and_non_finite_numbers_are_rejected_typed() {
    // 400 digits overflow f64 → typed error, not Infinity smuggled in
    let digits = "9".repeat(400);
    let err = Json::parse(&digits).expect_err("overflowing literal");
    assert!(err.message.contains("overflow"), "{err}");
    assert!(Json::parse(&format!("-{digits}")).is_err());
    assert!(Json::parse("1e999").is_err());
    assert!(Json::parse("-1e999").is_err());
    // JSON has no spelling for these; they must not parse as numbers
    for text in ["NaN", "Infinity", "-Infinity", "+1", "0x10", "1.", ".5"] {
        assert!(Json::parse(text).is_err(), "{text:?} must not parse");
    }
    // a 400-digit *fraction* underflows to a finite value: legal
    let tiny = format!("0.{}1", "0".repeat(400));
    assert_eq!(Json::parse(&tiny).unwrap(), Json::Num(0.0));
    // and an exact parse survives round-tripping
    assert_eq!(
        Json::parse("1e308").unwrap(),
        Json::Num(1e308),
        "large-but-finite stays exact"
    );
}

#[test]
fn truncated_documents_mid_token_are_errors() {
    let cases = [
        r#"{"kind": "glo"#,          // mid-string
        r#"{"kind": "global\"#,      // mid-escape
        r#"{"kind": "global\u00"#,   // mid \u escape
        r#"{"kind": "global\ud83d"#, // high surrogate, no low half
        r#"{"kind":"#,               // mid-object
        r#"[1, 2,"#,                 // mid-array
        r#"{"kind": tru"#,           // mid-literal
        r#"12e"#,                    // mid-exponent
        r#"-"#,                      // sign only
    ];
    for case in cases {
        assert!(Json::parse(case).is_err(), "{case:?} must be an error");
    }
}

#[test]
fn duplicate_keys_parse_but_resolve_to_the_first() {
    // RFC 8259 leaves duplicates implementation-defined; ours keeps
    // insertion order and `get` resolves to the first — pinned here so
    // request decoding can never be smuggled a second "kind"
    let j = Json::parse(r#"{"kind":"global","kind":"local"}"#).unwrap();
    assert_eq!(j.get("kind").unwrap().as_str(), Some("global"));
    let Json::Obj(pairs) = &j else {
        panic!("object")
    };
    assert_eq!(pairs.len(), 2, "both members survive parsing");
}

#[test]
fn control_characters_and_bad_escapes_are_errors() {
    assert!(Json::parse("\"a\u{07}b\"").is_err(), "raw control char");
    assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
    assert!(
        Json::parse(r#""\udc00x""#).is_err(),
        "unpaired low surrogate"
    );
    assert!(
        Json::parse(r#""\ud800\ud800""#).is_err(),
        "two high surrogates"
    );
    assert!(Json::parse("[1] []").is_err(), "trailing value");
    assert!(Json::parse("").is_err(), "empty document");
}

// ---------------------------------------------------------------------
// HTTP level: the same attacks over a real socket. Every response is a
// typed 400 (JSON body with error.code) and the worker pool stays
// responsive afterwards.
// ---------------------------------------------------------------------

/// Assert the server still answers a well-formed request promptly — the
/// "never hang the worker pool" half of every case below.
fn assert_alive(server: &Server) {
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, body) = client
        .post(
            &format!("/v1/engines/{ENGINE}/explain"),
            r#"{"kind":"global"}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "server must stay usable: {body:?}");
}

#[test]
fn hostile_bodies_return_typed_400s_and_never_wedge_the_pool() {
    let server = start();
    let path = format!("/v1/engines/{ENGINE}/explain");
    let depth_bomb = format!("{}1{}", "[".repeat(5000), "]".repeat(5000));
    let big_number = format!(
        r#"{{"kind":"contextual","attr":{},"context":[]}}"#,
        "9".repeat(400)
    );
    let hostile = [
        depth_bomb.as_str(),
        big_number.as_str(),
        r#"{"kind":"contextual","attr":1e999,"context":[]}"#,
        r#"{"kind": "global\"#,
        r#"{"kind": "glo"#,
        "\"a\u{07}b\"",
        "9e99999999",
        "[[[[",
    ];
    for body in hostile {
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, response) = client.post(&path, body).unwrap();
        assert_eq!(status, 400, "{body:?} must be a 400");
        let code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str())
            .unwrap_or_else(|| panic!("{body:?}: 400 body must carry error.code"));
        assert!(
            code == "bad_json" || code == "bad_request",
            "{body:?}: unexpected code {code}"
        );
    }
    // duplicate keys are *parseable*; the request layer resolves to the
    // first kind and answers it (no panic, no 500)
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, _) = client
        .post(&path, r#"{"kind":"global","kind":"local"}"#)
        .unwrap();
    assert_eq!(status, 200, "first-key semantics");
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn transport_truncation_mid_body_does_not_hang_a_worker() {
    let server = start();
    // announce more bytes than we send — then go silent and close, with
    // the cut landing mid-escape inside the JSON
    for payload in [r#"{"kind": "global\"#, r#"{"kind""#, "["] {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let request = format!(
            "POST /v1/engines/{ENGINE}/explain HTTP/1.1\r\nHost: x\r\n\
             Content-Length: {}\r\n\r\n{payload}",
            payload.len() + 100
        );
        stream.write_all(request.as_bytes()).unwrap();
        // half-close the write side so the server's read sees EOF
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // whatever the server does (400 or drop), it must terminate the
        // exchange rather than park the worker
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
    }
    assert_alive(&server);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Admin lifecycle under attack: bad packs, wrong schemas, missing
// engines. Every refusal is typed, the registry never changes, and the
// old engine keeps serving.
// ---------------------------------------------------------------------

fn admin_error_code(body: &Json) -> String {
    body.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("<missing error.code>")
        .to_string()
}

#[test]
fn hostile_swaps_are_refused_typed_and_the_old_engine_keeps_serving() {
    let server = start();
    let dir = std::env::temp_dir().join(format!("lewis-adversarial-admin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let swap_path = format!("/admin/engines/{ENGINE}/swap");

    // the baseline: generation 1, one engine serving
    let (_, listing) = client.get("/v1/engines").unwrap();
    let baseline = listing.to_json();

    // a pack path that does not exist
    let (status, body) = client
        .post(&swap_path, r#"{"path": "/nonexistent/nowhere.lewis"}"#)
        .unwrap();
    assert_eq!(status, 400, "{body:?}");
    assert_eq!(admin_error_code(&body), "bad_pack");

    // a corrupt pack: real bytes with one bit flipped mid-file
    let corrupt = dir.join("corrupt.lewis");
    {
        let mut donor = EngineRegistry::new();
        donor.load_builtin(ENGINE, 200, 17).unwrap();
        donor.save_pack(ENGINE, corrupt.to_str().unwrap()).unwrap();
        let mut bytes = std::fs::read(&corrupt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&corrupt, &bytes).unwrap();
    }
    let (status, body) = client
        .post(
            &swap_path,
            &format!(
                "{{\"path\": {}}}",
                Json::str(corrupt.to_str().unwrap()).to_json()
            ),
        )
        .unwrap();
    assert_eq!(status, 400, "{body:?}");
    assert_eq!(admin_error_code(&body), "bad_pack");

    // a valid pack of a *different schema* (adult): typed 409, no swap
    let foreign = dir.join("foreign.lewis");
    {
        let mut donor = EngineRegistry::new();
        donor.load_builtin("adult", 200, 17).unwrap();
        donor.save_pack("adult", foreign.to_str().unwrap()).unwrap();
    }
    let (status, body) = client
        .post(
            &swap_path,
            &format!(
                "{{\"path\": {}}}",
                Json::str(foreign.to_str().unwrap()).to_json()
            ),
        )
        .unwrap();
    assert_eq!(status, 409, "{body:?}");
    assert_eq!(admin_error_code(&body), "schema_mismatch");

    // malformed bodies: wrong shape or missing path is `bad_request`,
    // outright non-JSON is `bad_json` — all typed 400s either way
    for (bad, code) in [
        (r#"{"path": 7}"#, "bad_request"),
        (r#"{"paths": "x"}"#, "bad_request"),
        ("not json", "bad_json"),
        ("", "bad_json"),
    ] {
        let (status, body) = client.post(&swap_path, bad).unwrap();
        assert_eq!(status, 400, "{bad:?}: {body:?}");
        assert_eq!(admin_error_code(&body), code, "{bad:?}");
    }

    // swapping an engine that was never registered
    let (status, body) = client
        .post(
            "/admin/engines/ghost/swap",
            r#"{"path": "/nonexistent/nowhere.lewis"}"#,
        )
        .unwrap();
    assert_eq!(status, 404, "{body:?}");
    assert_eq!(admin_error_code(&body), "unknown_engine");

    // unloading a nonexistent engine: 404, pool stays live
    let (status, body) = client.post("/admin/engines/ghost/unload", "").unwrap();
    assert_eq!(status, 404, "{body:?}");
    assert_eq!(admin_error_code(&body), "unknown_engine");

    // unknown admin actions and non-POST methods are refused
    let (status, _) = client
        .post(&format!("/admin/engines/{ENGINE}/explode"), "")
        .unwrap();
    assert_eq!(status, 404);
    let (status, _) = client
        .request("GET", &format!("/admin/engines/{ENGINE}/swap"), b"")
        .unwrap();
    assert_eq!(status, 405);

    // after the whole barrage: registry unchanged, old engine serving
    let (_, listing) = client.get("/v1/engines").unwrap();
    assert_eq!(
        listing.to_json(),
        baseline,
        "no failed admin op may mutate the registry"
    );
    assert_alive(&server);
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn depth_limited_but_valid_batch_still_works() {
    // a legitimate request near the nesting limit must not be caught in
    // the anti-bomb net: batch → request → context pairs is 4 levels
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, body) = client
        .post(
            &format!("/v1/engines/{ENGINE}/explain"),
            r#"{"batch":[{"kind":"global"},{"kind":"contextual","attr":2,"context":[[1,1]]}]}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(
        body.get("results")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2),
        "{body:?}"
    );
    server.shutdown();
}
