//! Acceptance: the recourse surrogate fit is **bit-identical** for any
//! shard count. The chunk-canonical optimizer accumulates gradients in
//! fixed-size chunks whose boundaries depend only on the row count —
//! never on the shard layout — so an engine built with 7 shards fits
//! literally the same coefficients as the unsharded seed engine. These
//! tests pin that property through the public engine path
//! (`prepare_surrogate` → snapshot), not just the ml-crate internals.

use lewis_core::Engine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{AttrId, Domain, Schema, Table, Value};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A random labelled table: 2–4 feature attributes of cardinality 2–4
/// and a binary prediction correlated with the first feature.
fn random_world(seed: u64) -> (Table, AttrId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_features = rng.gen_range(2..5usize);
    let mut schema = Schema::new();
    let mut cards = Vec::new();
    for i in 0..n_features {
        let card = rng.gen_range(2..5usize);
        let labels: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
        schema.push(format!("f{i}"), Domain::categorical(labels));
        cards.push(card);
    }
    schema.push("pred", Domain::boolean());
    let pred = AttrId(n_features as u32);
    let mut table = Table::new(schema);
    let n_rows = rng.gen_range(40..300usize);
    for _ in 0..n_rows {
        let mut row: Vec<Value> = cards
            .iter()
            .map(|&card| rng.gen_range(0..card as Value))
            .collect();
        let p = if row[0] as usize * 2 >= cards[0] {
            0.8
        } else {
            0.25
        };
        row.push(Value::from(rng.gen_range(0.0..1.0) < p));
        table.push_row(&row).unwrap();
    }
    (table, pred)
}

fn build_engine(table: &Table, pred: AttrId, shards: usize) -> Engine {
    let features: Vec<AttrId> = table.schema().attr_ids().filter(|&a| a != pred).collect();
    Engine::builder(table.clone())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.5)
        .min_support(5)
        .shards(shards)
        .build()
        .unwrap()
}

/// Fit surrogates for every probe set and export them as exact bit
/// patterns keyed by actionable set, via the public snapshot.
fn fitted_bits(engine: &Engine, probes: &[Vec<AttrId>]) -> Vec<(Vec<AttrId>, String)> {
    for actionable in probes {
        engine.prepare_surrogate(actionable).unwrap();
    }
    let mut fits: Vec<(Vec<AttrId>, String)> = engine
        .snapshot()
        .surrogates
        .fits
        .into_iter()
        .map(|f| {
            let coeffs: Vec<String> = f
                .coefficients
                .iter()
                .map(|c| format!("{:x}", c.to_bits()))
                .collect();
            (
                f.actionable,
                format!(
                    "i={:x} c=[{}] o={:?}",
                    f.intercept.to_bits(),
                    coeffs.join(","),
                    f.orders
                ),
            )
        })
        .collect();
    fits.sort();
    fits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: for shard counts {1, 2, 4, 7}, the
    /// surrogate fitted for any actionable set — singleton and pair —
    /// carries the same intercept, coefficients, and value orders down
    /// to the f64 bit patterns.
    #[test]
    fn surrogate_fits_are_bitwise_shard_invariant(seed in 0u64..10_000) {
        let (table, pred) = random_world(seed);
        let baseline = build_engine(&table, pred, 1);
        let features = baseline.features().to_vec();
        let mut probes: Vec<Vec<AttrId>> =
            features.iter().map(|&f| vec![f]).collect();
        probes.push(vec![features[0], features[1 % features.len()]]);
        let want = fitted_bits(&baseline, &probes);
        prop_assert_eq!(want.len(), probes.len(), "every probe set fitted");
        for &n_shards in &SHARD_COUNTS[1..] {
            let sharded = build_engine(&table, pred, n_shards);
            let got = fitted_bits(&sharded, &probes);
            prop_assert_eq!(
                &want, &got,
                "surrogate fits diverged at {} shards (seed {})",
                n_shards, seed
            );
        }
    }
}
