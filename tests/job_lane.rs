//! The async job lane over a real socket: `?mode=async` answers `202`
//! with a ticket, polling replays the exact synchronous answer, the
//! queue bound is a typed `429`, and tickets expire into `404`s.

use lewis_serve::loadgen::{run, LoadgenConfig, Mix};
use lewis_serve::wire::Json;
use lewis_serve::{serve, Client, EngineRegistry, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ENGINE: &str = "german_syn";

fn start(config: ServerConfig) -> Server {
    let mut registry = EngineRegistry::new();
    registry.load_builtin(ENGINE, 1200, 17).unwrap();
    serve(&config, Arc::new(registry)).unwrap()
}

/// A recourse body over the schema the server publishes: the all-zeros
/// row (code 0 is valid in every domain) with the first two features
/// actionable. Whatever the engine answers — actions, "no recourse",
/// "already favourable" — the async lane must replay it exactly.
fn recourse_body(client: &mut Client) -> String {
    let (_, list) = client.get("/v1/engines").unwrap();
    let engine = &list.get("engines").unwrap().as_arr().unwrap()[0];
    let features = engine.get("features").unwrap().as_arr().unwrap();
    let actionable: Vec<Json> = features.iter().take(2).cloned().collect();
    let n_attrs = engine.get("attributes").unwrap().as_arr().unwrap().len();
    let row: Vec<Json> = (0..n_attrs).map(|_| Json::num(0u32)).collect();
    Json::obj([
        ("kind", Json::str("recourse")),
        ("row", Json::Arr(row)),
        ("actionable", Json::Arr(actionable)),
    ])
    .to_json()
}

/// Poll `/v1/jobs/{id}` until the job is terminal (bounded, so a
/// regression hangs the assertion, not the suite).
fn poll_until_terminal(client: &mut Client, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = client.get(&format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "poll failed: {body:?}");
        let state = body.get("state").unwrap().as_str().unwrap().to_string();
        match state.as_str() {
            "done" | "failed" => return body,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("unknown job state {other:?}"),
        }
    }
}

/// Submit `body` async; return (ticket, poll path).
fn submit(client: &mut Client, body: &str) -> String {
    let (status, answer) = client
        .post(&format!("/v1/engines/{ENGINE}/explain?mode=async"), body)
        .unwrap();
    assert_eq!(status, 202, "submission failed: {answer:?}");
    let id = answer.get("job_id").unwrap().as_str().unwrap().to_string();
    assert_eq!(
        answer.get("poll").unwrap().as_str().unwrap(),
        format!("/v1/jobs/{id}"),
        "the 202 carries the poll path"
    );
    id
}

#[test]
fn async_jobs_replay_the_sync_answer_exactly() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/v1/engines/{ENGINE}/explain");

    // one cheap query and one recourse query, sync first
    for body in [
        r#"{"kind":"global"}"#.to_string(),
        recourse_body(&mut client),
    ] {
        let (sync_status, sync_answer) = client.post(&path, &body).unwrap();
        let id = submit(&mut client, &body);
        let view = poll_until_terminal(&mut client, &id);
        assert_eq!(view.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(
            view.get("status").unwrap().as_f64(),
            Some(f64::from(sync_status)),
            "the stored status replays the sync one"
        );
        assert_eq!(
            view.get("result").unwrap().to_json(),
            sync_answer.to_json(),
            "the stored body replays the sync one byte for byte"
        );
        assert!(view.get("waited_us").unwrap().as_f64().is_some());
        assert!(view.get("ran_us").unwrap().as_f64().is_some());
    }

    // error parity too: a malformed body answers 400 on both lanes
    let bad = r#"{"kind":"nonsense"}"#;
    let (sync_status, sync_answer) = client.post(&path, bad).unwrap();
    assert_eq!(sync_status, 400);
    let id = submit(&mut client, bad);
    let view = poll_until_terminal(&mut client, &id);
    assert_eq!(view.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(view.get("status").unwrap().as_f64(), Some(400.0));
    assert_eq!(view.get("result").unwrap().to_json(), sync_answer.to_json());

    // the lane shows up in /metrics
    let (_, metrics) = client.get("/metrics").unwrap();
    let lane = metrics.get("job_lane").unwrap();
    assert!(lane.get("submitted").unwrap().as_f64().unwrap() >= 3.0);
    assert!(lane.get("completed").unwrap().as_f64().unwrap() >= 3.0);
    assert_eq!(lane.get("failed").unwrap().as_f64(), Some(0.0));
    let jobs_route = metrics.get("routes").unwrap().get("jobs").unwrap();
    assert!(jobs_route.get("requests").unwrap().as_f64().unwrap() >= 3.0);
    let surrogate = metrics
        .get("engines")
        .unwrap()
        .get(ENGINE)
        .unwrap()
        .get("surrogate_cache")
        .unwrap();
    assert!(
        surrogate.get("misses").unwrap().as_f64().unwrap() >= 1.0,
        "the recourse queries fitted (and cached) a surrogate"
    );
    assert!(
        surrogate.get("hits").unwrap().as_f64().unwrap() >= 1.0,
        "the repeated actionable set hit the surrogate cache"
    );
    server.shutdown();
}

#[test]
fn loadgen_routes_recourse_through_the_lane_cleanly() {
    let server = start(ServerConfig::default());
    let config = LoadgenConfig {
        addr: server.addr(),
        engine: ENGINE.to_string(),
        duration: Duration::from_millis(400),
        concurrency: 2,
        mix: Mix {
            global: 1,
            contextual: 1,
            local: 1,
            recourse: 5,
        },
        batch: 1,
        seed: 7,
        job_lane: true,
        append_mix: None,
        ..LoadgenConfig::default()
    };
    let report = run(&config).unwrap();
    assert!(report.sent_by_kind[3] > 0, "recourse was exercised");
    assert!(report.ok > 0, "queries succeeded: {report:?}");
    assert_eq!(
        report.other_errors, 0,
        "a job-lane run is as clean as a sync one: {report:?}"
    );
    // the lane really was used: submissions show up in /metrics
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, metrics) = client.get("/metrics").unwrap();
    let lane = metrics.get("job_lane").unwrap();
    assert!(
        lane.get("submitted").unwrap().as_f64().unwrap() >= 1.0,
        "recourse queries went through the lane: {lane:?}"
    );
    assert_eq!(lane.get("failed").unwrap().as_f64(), Some(0.0));
    server.shutdown();
}

#[test]
fn a_full_queue_is_a_typed_429() {
    // capacity 0: every submission rejected, deterministically
    let server = start(ServerConfig {
        job_capacity: 0,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, answer) = client
        .post(
            &format!("/v1/engines/{ENGINE}/explain?mode=async"),
            r#"{"kind":"global"}"#,
        )
        .unwrap();
    assert_eq!(status, 429);
    assert_eq!(
        answer.get("error").unwrap().get("code").unwrap().as_str(),
        Some("queue_full")
    );
    // the synchronous route is unaffected
    let (status, _) = client
        .post(
            &format!("/v1/engines/{ENGINE}/explain"),
            r#"{"kind":"global"}"#,
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, metrics) = client.get("/metrics").unwrap();
    assert_eq!(
        metrics
            .get("job_lane")
            .unwrap()
            .get("rejected")
            .unwrap()
            .as_f64(),
        Some(1.0)
    );
    server.shutdown();
}

#[test]
fn finished_tickets_expire_into_404s() {
    let server = start(ServerConfig {
        job_ttl: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let id = submit(&mut client, r#"{"kind":"global"}"#);
    let view = poll_until_terminal(&mut client, &id);
    assert_eq!(view.get("state").unwrap().as_str(), Some("done"));
    std::thread::sleep(Duration::from_millis(120));
    let (status, answer) = client.get(&format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(status, 404, "expired tickets read as unknown: {answer:?}");
    assert_eq!(
        answer.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unknown_job")
    );
    server.shutdown();
}

#[test]
fn unknown_jobs_engines_and_modes_fail_typed() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    for bogus in ["999999", "banana", "-1"] {
        let (status, answer) = client.get(&format!("/v1/jobs/{bogus}")).unwrap();
        assert_eq!(status, 404, "{bogus}: {answer:?}");
        assert_eq!(
            answer.get("error").unwrap().get("code").unwrap().as_str(),
            Some("unknown_job")
        );
    }

    // submissions against unknown engines fail at submit time
    let (status, answer) = client
        .post(
            "/v1/engines/missing/explain?mode=async",
            r#"{"kind":"global"}"#,
        )
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(
        answer.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unknown_engine")
    );

    // a typo'd mode is a 400, not silently-sync
    let (status, answer) = client
        .post(
            &format!("/v1/engines/{ENGINE}/explain?mode=later"),
            r#"{"kind":"global"}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "{answer:?}");
    // and POSTing the poll route is a 405
    let (status, _) = client.post("/v1/jobs/0", "").unwrap();
    assert_eq!(status, 405);
    server.shutdown();
}
