//! The XAI baselines run against real pipelines and behave as their
//! papers specify — and diverge from LEWIS exactly where the paper says
//! they should.

use lewis::core::blackbox::{label_table, BlackBox};
use lewis::core::{ClassifierBox, Engine};
use lewis::datasets::{GermanDataset, GermanSynDataset};
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::{Classifier, RandomForestClassifier};
use lewis::tabular::{AttrId, Context, Table, Value};
use rand::SeedableRng;
use xai::feat::accuracy_scorer;
use xai::{KernelShap, LimeExplainer, LimeOptions, LinearIpRecourse, ShapOptions};

struct Pipe {
    table: Table,
    pred: AttrId,
    features: Vec<AttrId>,
    forest: RandomForestClassifier,
    encoder: TableEncoder,
}

fn german_syn_pipe(n: usize, seed: u64) -> (Pipe, lewis::causal::Scm) {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(n, seed);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 25,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest.clone(), encoder.clone());
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    (
        Pipe {
            table,
            pred,
            features,
            forest,
            encoder,
        },
        scm,
    )
}

fn proba(p: &Pipe, row: &[Value]) -> f64 {
    p.forest.proba_of(&p.encoder.encode_row(row), 1)
}

#[test]
fn shap_misses_indirect_influence_lewis_captures() {
    // The Fig 11a divergence: age/sex have only indirect influence on
    // the model (through status/saving); SHAP's masked-prediction game
    // attributes them ~nothing, LEWIS attributes them their causal share.
    let (p, scm) = german_syn_pipe(6_000, 41);
    let lewis = Engine::builder(p.table.clone())
        .graph(scm.graph())
        .prediction(p.pred, 1)
        .features(&p.features)
        .alpha(0.25)
        .build()
        .unwrap();
    let age_lewis = lewis
        .attribute_scores(GermanSynDataset::AGE, &Context::empty())
        .unwrap()
        .scores
        .nesuf;

    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let shap = KernelShap::new(
        &p.table,
        &p.features,
        ShapOptions {
            n_background: 30,
            ..ShapOptions::default()
        },
    )
    .unwrap();
    let imp = shap
        .global_importance(&|r| proba(&p, r), 10, &mut rng)
        .unwrap();
    let age_shap = imp
        .iter()
        .find(|&&(a, _)| a == GermanSynDataset::AGE)
        .unwrap()
        .1;
    let status_shap = imp
        .iter()
        .find(|&&(a, _)| a == GermanSynDataset::STATUS)
        .unwrap()
        .1;
    assert!(
        age_shap < status_shap * 0.35,
        "SHAP should treat age as near-irrelevant: age {age_shap} vs status {status_shap}"
    );
    assert!(
        age_lewis > 0.15,
        "LEWIS should find the indirect influence: {age_lewis}"
    );
}

#[test]
fn lime_agrees_with_lewis_on_direct_causes() {
    let (p, scm) = german_syn_pipe(4_000, 42);
    let lewis = Engine::builder(p.table.clone())
        .graph(scm.graph())
        .prediction(p.pred, 1)
        .features(&p.features)
        .alpha(0.25)
        .build()
        .unwrap();
    let lime = LimeExplainer::new(&p.table, &p.features, LimeOptions::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    // an approved individual holding the best status — skipping anyone
    // in the top savings bracket, whose approval is overdetermined and
    // for whom the necessity of status is genuinely ~0
    let idx = (0..p.table.n_rows())
        .find(|&i| {
            p.table.get(i, GermanSynDataset::STATUS).unwrap() == 3
                && p.table.get(i, GermanSynDataset::SAVING).unwrap() < 3
                && p.table.get(i, p.pred).unwrap() == 1
        })
        .expect("approved individual with top status");
    let row = p.table.row(idx).unwrap();
    let weights = lime.explain(&row, &|r| proba(&p, r), &mut rng).unwrap();
    let status_w = weights
        .iter()
        .find(|&&(a, _)| a == GermanSynDataset::STATUS)
        .unwrap()
        .1;
    assert!(status_w > 0.05, "LIME weight on top status: {status_w}");
    // LEWIS agrees the current value contributes positively
    let local = lewis.local(&row).unwrap();
    let status_c = local
        .contributions
        .iter()
        .find(|c| c.attr == GermanSynDataset::STATUS)
        .unwrap();
    assert!(
        status_c.positive > 0.2,
        "status positive contribution: {}",
        status_c.positive
    );
}

#[test]
fn permutation_importance_runs_on_model_predictions() {
    let (p, _) = german_syn_pipe(3_000, 43);
    let mut rng = rand::rngs::StdRng::seed_from_u64(43);
    let forest = p.forest.clone();
    let encoder = p.encoder.clone();
    let model =
        move |row: &[Value]| ClassifierBox::new(forest.clone(), encoder.clone()).predict(row);
    let scorer = accuracy_scorer(&model, p.pred);
    let imps = xai::permutation_importance(&p.table, &p.features, &scorer, 2, &mut rng).unwrap();
    let of = |attr: AttrId| imps.iter().find(|&&(a, _)| a == attr).unwrap().1;
    assert!(
        of(GermanSynDataset::STATUS) > of(GermanSynDataset::SEX),
        "status must matter more than sex to the model itself"
    );
}

#[test]
fn linear_ip_gives_up_where_lewis_persists() {
    // §5.4: LinearIP's feasible region is capped by its linear logit
    // range; extreme thresholds are infeasible for it.
    let dataset = GermanDataset::generate(2_000, 44);
    let features = dataset.features.clone();
    let actionable = dataset.actionable.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table.column(GermanDataset::OUTCOME).unwrap().to_vec();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest =
        RandomForestClassifier::fit(&xs, &labels, 2, &ForestParams::default(), 44).unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();

    let linear = LinearIpRecourse::fit(&table, pred, &actionable).unwrap();
    let neg = table
        .column(pred)
        .unwrap()
        .iter()
        .position(|&v| v == 0)
        .unwrap();
    let row = table.row(neg).unwrap();
    let extreme = linear.recourse(&table, pred, &row, 0.9999999);
    assert!(
        extreme.is_err(),
        "near-1 threshold must be infeasible for LinearIP"
    );
}
