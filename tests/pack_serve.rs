//! Serving parity: an engine compiled from a CSV into a `.lewis` pack
//! and served from that pack answers **byte-identically** to the same
//! CSV loaded directly — verified over real sockets against one server
//! hosting both engines (the in-process half of the CI pack smoke).

use lewis_serve::warm::warm_engine;
use lewis_serve::ServeError;
use lewis_serve::{serve, Client, EngineRegistry, GraphSpec, ServerConfig};
use std::sync::Arc;

#[test]
fn pack_served_engine_is_byte_identical_to_csv_served_engine() {
    let dir = std::env::temp_dir().join(format!("lewis-pack-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("german_syn.csv");
    let pack_path = dir.join("german_syn.lewis");

    // materialize the tiny german_syn table as a user CSV
    {
        let mut seedreg = EngineRegistry::new();
        seedreg.load_builtin("german_syn", 700, 13).unwrap();
        tabular::write_csv_file(
            seedreg.get("german_syn").unwrap().engine().table(),
            &csv_path,
        )
        .unwrap();
    }

    // one registry, two engines: the CSV directly, and a pack compiled
    // from that same CSV (with a warm cache — fidelity must hold for
    // cache hits and misses alike)
    let mut registry = EngineRegistry::new();
    registry
        .load_csv(
            "from_csv",
            csv_path.to_str().unwrap(),
            "pred",
            "true",
            GraphSpec::FullyConnected,
        )
        .unwrap();
    warm_engine(&registry.get("from_csv").unwrap().engine(), 32, 13).unwrap();
    registry
        .save_pack("from_csv", pack_path.to_str().unwrap())
        .unwrap();
    registry
        .load_pack("from_pack", pack_path.to_str().unwrap())
        .unwrap();

    let server = serve(
        &ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // the listing shows both, with pack provenance
    let (status, list) = client.get("/v1/engines").unwrap();
    assert_eq!(status, 200);
    let engines = list.get("engines").unwrap().as_arr().unwrap();
    assert_eq!(engines.len(), 2);
    assert!(engines[1]
        .get("source")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("pack:"));

    // identical bodies to both engines must produce identical bytes —
    // the wire codec is deterministic, so string equality is byte
    // equality
    let bodies = [
        r#"{"kind":"global"}"#.to_string(),
        r#"{"kind":"contextual_global","context":[[1,1]]}"#.to_string(),
        r#"{"kind":"contextual","attr":2,"context":[[1,0]]}"#.to_string(),
        r#"{"kind":"local","row":[1,1,2,1,1,5,1]}"#.to_string(),
        r#"{"kind":"recourse","row":[1,0,0,0,0,2,0],"actionable":[2,3]}"#.to_string(),
        // batch of everything at once
        r#"{"batch":[{"kind":"global"},{"kind":"contextual","attr":3,"context":[[1,1]]},{"kind":"local","row":[0,1,1,1,0,3,0]}]}"#
            .to_string(),
    ];
    for body in &bodies {
        let (s_csv, r_csv) = client.post("/v1/engines/from_csv/explain", body).unwrap();
        let (s_pack, r_pack) = client.post("/v1/engines/from_pack/explain", body).unwrap();
        assert_eq!(s_csv, s_pack, "status parity for {body}");
        assert_eq!(r_csv.to_json(), r_pack.to_json(), "byte parity for {body}");
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn registry_load_pack_reports_corrupt_files_with_typed_errors() {
    let dir = std::env::temp_dir().join(format!("lewis-pack-serve-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pack_path = dir.join("corrupt.lewis");

    let mut registry = EngineRegistry::new();
    registry.load_builtin("german_syn", 300, 1).unwrap();
    registry
        .save_pack("german_syn", pack_path.to_str().unwrap())
        .unwrap();

    // flip one byte in the middle of the file: the registry must refuse
    // with a typed store error, never serve a corrupted engine
    let mut bytes = std::fs::read(&pack_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&pack_path, &bytes).unwrap();
    let err = registry
        .load_pack("bad", pack_path.to_str().unwrap())
        .unwrap_err();
    match err {
        ServeError::Store(inner) => {
            let text = inner.to_string();
            assert!(
                text.contains("checksum") || text.contains("corrupt") || text.contains("truncated"),
                "typed store error: {text}"
            );
        }
        other => panic!("expected a store error, got {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_packed_metrics_expose_the_carried_cache() {
    // a pack-loaded engine starts with the donor's cache counters — the
    // /metrics route must show non-zero residency before any traffic
    let dir = std::env::temp_dir().join(format!("lewis-pack-serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pack_path = dir.join("warm.lewis");

    let mut donor_reg = EngineRegistry::new();
    donor_reg.load_builtin("german_syn", 500, 2).unwrap();
    warm_engine(&donor_reg.get("german_syn").unwrap().engine(), 24, 2).unwrap();
    donor_reg
        .save_pack("german_syn", pack_path.to_str().unwrap())
        .unwrap();

    let mut registry = EngineRegistry::new();
    registry
        .load_pack("warm", pack_path.to_str().unwrap())
        .unwrap();
    let server = serve(&ServerConfig::default(), Arc::new(registry)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, metrics) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    let cache = metrics
        .get("engines")
        .unwrap()
        .get("warm")
        .unwrap()
        .get("counting_cache")
        .unwrap();
    let entries = cache.get("entries").unwrap().as_f64().unwrap();
    assert!(entries > 0.0, "cache arrives warm: {entries}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
