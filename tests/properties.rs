//! Property-based tests (proptest) over the core data structures and
//! the paper's invariants.

use lewis::causal::{is_d_separated, Dag};
use lewis::core::report::{kendall_tau, ranks_desc, spearman_rho};
use lewis::optim::{Group, IpError, Item, MckpSolver};
use lewis::tabular::{Binner, BinningStrategy, Context, Counter, Domain, Schema, Table};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// tabular invariants
// ---------------------------------------------------------------------

/// Strategy: a small random table over a fixed 3-attribute schema.
fn arb_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0u32..3, 0u32..4, 0u32..2), 1..60).prop_map(|rows| {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1", "2"]));
        s.push("b", Domain::categorical(["0", "1", "2", "3"]));
        s.push("c", Domain::boolean());
        let mut t = Table::new(s);
        for (a, b, c) in rows {
            t.push_row(&[a, b, c]).unwrap();
        }
        t
    })
}

proptest! {
    #[test]
    fn filter_count_consistency(t in arb_table(), a in 0u32..3, b in 0u32..4) {
        let ctx = Context::of([(lewis::tabular::AttrId(0), a), (lewis::tabular::AttrId(1), b)]);
        prop_assert_eq!(t.filter(&ctx).len(), t.count(&ctx));
        // filter results actually satisfy the context
        for r in t.filter(&ctx) {
            prop_assert!(ctx.matches_row(&t.row(r).unwrap()));
        }
    }

    #[test]
    fn conditional_distribution_is_normalized(t in arb_table(), alpha in 0.0f64..3.0) {
        let attr = lewis::tabular::AttrId(1);
        if let Ok(d) = t.distribution(attr, &Context::empty(), alpha) {
            let sum: f64 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn counter_marginals_match_table_counts(t in arb_table()) {
        let attrs = [lewis::tabular::AttrId(0), lewis::tabular::AttrId(2)];
        let counter = Counter::build(&t, &attrs, &Context::empty()).unwrap();
        prop_assert_eq!(counter.total() as usize, t.n_rows());
        for a in 0..3u32 {
            for c in 0..2u32 {
                let via_counter = counter.count(&[a, c]);
                let via_table = t.count(&Context::of([
                    (lewis::tabular::AttrId(0), a),
                    (lewis::tabular::AttrId(2), c),
                ]));
                prop_assert_eq!(via_counter as usize, via_table);
            }
        }
        // pinned marginal equals sum over free attribute
        for a in 0..3u32 {
            let marg = counter.marginal_count(&[Some(a), None]);
            let direct: u64 = (0..2u32).map(|c| counter.count(&[a, c])).sum();
            prop_assert_eq!(marg, direct);
        }
    }

    #[test]
    fn binning_respects_order_and_range(
        mut xs in proptest::collection::vec(-1000.0f64..1000.0, 2..200),
        n_bins in 1usize..10
    ) {
        let binner = Binner::fit(&BinningStrategy::EqualWidth { n_bins }, &xs).unwrap();
        let card = binner.domain().cardinality();
        prop_assert!(card <= n_bins && card >= 1);
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let codes = binner.transform(&xs);
        // codes are monotone in the raw value
        for w in codes.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(codes.iter().all(|&c| (c as usize) < card));
    }

    #[test]
    fn context_set_then_get_roundtrip(pairs in proptest::collection::vec((0u32..30, 0u32..10), 0..20)) {
        let mut ctx = Context::empty();
        let mut reference = std::collections::BTreeMap::new();
        for &(a, v) in &pairs {
            ctx.set(lewis::tabular::AttrId(a), v);
            reference.insert(a, v);
        }
        prop_assert_eq!(ctx.len(), reference.len());
        for (&a, &v) in &reference {
            prop_assert_eq!(ctx.get(lewis::tabular::AttrId(a)), Some(v));
        }
        // iteration is sorted by attribute id
        let attrs: Vec<u32> = ctx.iter().map(|(a, _)| a.0).collect();
        let mut sorted = attrs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(attrs, sorted);
    }
}

// ---------------------------------------------------------------------
// causal-graph invariants
// ---------------------------------------------------------------------

/// Strategy: a random DAG over `n` nodes (edges only from lower to
/// higher index, so acyclicity is guaranteed by construction).
fn arb_dag(n: usize) -> impl Strategy<Value = Dag> {
    proptest::collection::vec((0usize..n, 0usize..n), 0..n * 2).prop_map(move |pairs| {
        let mut g = Dag::new(n);
        for (a, b) in pairs {
            if a < b {
                g.add_edge(a, b).unwrap();
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn topological_order_respects_all_edges(g in arb_dag(8)) {
        let order = g.topological_order();
        prop_assert_eq!(order.len(), 8);
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        for (from, to) in g.edges() {
            prop_assert!(pos(from) < pos(to));
        }
    }

    #[test]
    fn descendants_and_ancestors_are_inverse(g in arb_dag(8)) {
        for v in 0..8 {
            for &d in &g.descendants(v) {
                prop_assert!(g.ancestors(d).contains(&v), "{v} -> {d}");
            }
            for &a in &g.ancestors(v) {
                prop_assert!(g.descendants(a).contains(&v));
            }
        }
    }

    #[test]
    fn d_separation_is_symmetric(g in arb_dag(7), x in 0usize..7, y in 0usize..7, z in 0usize..7) {
        prop_assume!(x != y && x != z && y != z);
        let a = is_d_separated(&g, &[x], &[y], &[z]);
        let b = is_d_separated(&g, &[y], &[x], &[z]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn disconnected_nodes_are_d_separated(x in 0usize..4, y in 4usize..8) {
        // two disjoint components: 0..4 and 4..8 chains
        let mut g = Dag::new(8);
        for i in 0..3 {
            g.add_edge(i, i + 1).unwrap();
        }
        for i in 4..7 {
            g.add_edge(i, i + 1).unwrap();
        }
        prop_assert!(is_d_separated(&g, &[x], &[y], &[]));
    }
}

// ---------------------------------------------------------------------
// IP-solver invariants
// ---------------------------------------------------------------------

fn arb_groups() -> impl Strategy<Value = Vec<Group>> {
    proptest::collection::vec(
        proptest::collection::vec((0.0f64..10.0, -3.0f64..6.0), 1..4),
        1..5,
    )
    .prop_map(|gs| {
        gs.into_iter()
            .enumerate()
            .map(|(gid, items)| Group {
                id: gid,
                items: items
                    .into_iter()
                    .enumerate()
                    .map(|(iid, (cost, gain))| Item {
                        id: iid,
                        cost,
                        gain,
                    })
                    .collect(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn solver_solutions_are_feasible_and_unbeatable(groups in arb_groups(), target in 0.0f64..8.0) {
        let solver = MckpSolver::new(groups.clone(), target).unwrap();
        match solver.solve() {
            Ok(sol) => {
                prop_assert!(sol.total_gain >= target - 1e-9);
                // at most one item per group
                let mut seen = std::collections::HashSet::new();
                for &(g, _) in &sol.chosen {
                    prop_assert!(seen.insert(g), "group {g} chosen twice");
                }
                // brute force can't do better
                let best = brute_force(&groups, target);
                prop_assert!(best.is_some());
                prop_assert!((sol.total_cost - best.unwrap()).abs() < 1e-9,
                    "solver {} vs brute {}", sol.total_cost, best.unwrap());
            }
            Err(IpError::Infeasible) => {
                prop_assert!(brute_force(&groups, target).is_none());
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}

fn brute_force(groups: &[Group], target: f64) -> Option<f64> {
    fn walk(groups: &[Group], i: usize, cost: f64, gain: f64, target: f64, best: &mut Option<f64>) {
        if gain >= target && best.is_none_or(|b| cost < b) {
            *best = Some(cost);
        }
        if i == groups.len() {
            return;
        }
        walk(groups, i + 1, cost, gain, target, best);
        for it in &groups[i].items {
            walk(groups, i + 1, cost + it.cost, gain + it.gain, target, best);
        }
    }
    let mut best = None;
    walk(groups, 0, 0.0, 0.0, target, &mut best);
    best
}

// ---------------------------------------------------------------------
// report / ranking invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn ranks_are_a_valid_competition_ranking(scores in proptest::collection::vec(0.0f64..1.0, 1..20)) {
        let ranks = ranks_desc(&scores);
        prop_assert_eq!(ranks.len(), scores.len());
        // rank 1 goes to (one of) the maxima
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        for (i, &r) in ranks.iter().enumerate() {
            prop_assert!((1..=scores.len()).contains(&r));
            if r == 1 {
                prop_assert_eq!(scores[i], max);
            }
        }
        // equal scores share ranks
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] == scores[j] {
                    prop_assert_eq!(ranks[i], ranks[j]);
                }
            }
        }
    }

    #[test]
    fn correlation_measures_bounded((a, b) in (2usize..15).prop_flat_map(|n| (
        proptest::collection::vec(0.0f64..1.0, n),
        proptest::collection::vec(0.0f64..1.0, n),
    ))) {
        let rho = spearman_rho(&a, &b);
        let tau = kendall_tau(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&rho), "rho {rho}");
        prop_assert!((-1.0..=1.0).contains(&tau), "tau {tau}");
        // self-correlation is maximal (when not constant)
        if a.windows(2).any(|w| w[0] != w[1]) {
            prop_assert!((spearman_rho(&a, &a) - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// score invariants on random small worlds
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scores_are_probabilities_on_random_worlds(seed in 0u64..5000, flip in 0.05f64..0.45) {
        use lewis::causal::{Mechanism, ScmBuilder};
        use lewis::core::ScoreEstimator;
        use rand::SeedableRng;

        let mut schema = Schema::new();
        schema.push("c", Domain::boolean());
        schema.push("x", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        let fp = flip;
        b.mechanism(1, Mechanism::with_noise(
            vec![1.0 - fp, fp],
            |pa, u| pa[0] ^ (u as u32),
        )).unwrap();
        let scm = b.build().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut t = scm.generate(600, &mut rng);
        let f = |row: &[u32]| u32::from(row[0] + row[1] >= 1);
        let pred = lewis::core::blackbox::label_table(&mut t, &f, "pred").unwrap();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.5).unwrap();
        if let Ok(s) = est.scores(lewis::tabular::AttrId(1), 1, 0, &Context::empty()) {
            for v in [s.necessity, s.sufficiency, s.nesuf] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            // Prop 4.3 direction: NESUF cannot exceed the weighted
            // combination bound by more than estimation noise
            let n = t.n_rows() as f64;
            let pr_o_x = t.count(&Context::of([(lewis::tabular::AttrId(1), 1), (pred, 1)])) as f64 / n;
            let pr_on_xn = t.count(&Context::of([(lewis::tabular::AttrId(1), 0), (pred, 0)])) as f64 / n;
            let bound = pr_o_x * s.necessity + pr_on_xn * s.sufficiency;
            prop_assert!(s.nesuf <= bound + 0.25, "nesuf {} vs bound {}", s.nesuf, bound);
        }
    }
}
