//! End-to-end pipelines: dataset → black box → labelled table → LEWIS
//! explanations, across model families and datasets.

use lewis::core::blackbox::label_table;
use lewis::core::multiclass::binarize_outcome;
use lewis::core::{ClassifierBox, Engine};
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::gbdt::GbdtParams;
use lewis::ml::nn::NnParams;
use lewis::ml::{GradientBoostedTrees, NeuralNetwork, RandomForestClassifier};
use lewis::tabular::{AttrId, Context, Table};

/// Train a random forest on a dataset bundle and label its table.
fn rf_pipeline(dataset: lewis::datasets::Dataset, seed: u64) -> (Table, AttrId, Vec<AttrId>) {
    let mut table = dataset.table;
    let labels: Vec<u32> = table.column(dataset.outcome).unwrap().to_vec();
    let n_classes = table.schema().cardinality(dataset.outcome).unwrap();
    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        n_classes,
        &ForestParams {
            n_trees: 25,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    (table, pred, dataset.features)
}

#[test]
fn german_pipeline_produces_full_global_explanation() {
    let dataset = lewis::datasets::GermanDataset::generate(2500, 1);
    let scm = lewis::datasets::GermanDataset::scm();
    let (table, pred, features) = rf_pipeline(dataset, 1);
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(1.0)
        .build()
        .unwrap();
    let g = lewis.global().unwrap();
    assert_eq!(g.attributes.len(), 20, "all 20 German attributes scored");
    for a in &g.attributes {
        assert!((0.0..=1.0).contains(&a.scores.necessity), "{}", a.name);
        assert!((0.0..=1.0).contains(&a.scores.sufficiency), "{}", a.name);
        assert!((0.0..=1.0).contains(&a.scores.nesuf), "{}", a.name);
    }
    // sorted descending by NESUF
    for w in g.attributes.windows(2) {
        assert!(w[0].scores.nesuf >= w[1].scores.nesuf);
    }
}

#[test]
fn adult_fnlwgt_noise_feature_scores_near_zero() {
    // Proposition 4.4 in the wild: fnlwgt has no causal path to the
    // model's decision, so all its scores must vanish.
    let dataset = lewis::datasets::AdultDataset::generate(6000, 2);
    let scm = lewis::datasets::AdultDataset::scm();
    let (table, pred, features) = rf_pipeline(dataset, 2);
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(1.0)
        .build()
        .unwrap();
    let fnlwgt = lewis
        .attribute_scores(lewis::datasets::AdultDataset::FNLWGT, &Context::empty())
        .unwrap();
    assert!(fnlwgt.scores.nesuf < 0.05, "NESUF {}", fnlwgt.scores.nesuf);
    // and a causal attribute dominates it
    let marital = lewis
        .attribute_scores(lewis::datasets::AdultDataset::MARITAL, &Context::empty())
        .unwrap();
    assert!(marital.scores.nesuf > fnlwgt.scores.nesuf + 0.1);
}

#[test]
fn drug_multiclass_pipeline_via_binarize() {
    let dataset = lewis::datasets::DrugDataset::generate(1500, 3);
    let scm = lewis::datasets::DrugDataset::scm();
    let outcome = dataset.outcome;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    // derive "ever used" from the 3-class outcome, then explain a model
    // that predicts it
    let ever = binarize_outcome(&mut table, outcome, 1, "ever_used").unwrap();
    let labels: Vec<u32> = table.column(ever).unwrap().to_vec();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let gbdt = GradientBoostedTrees::fit(
        &xs,
        &labels,
        &GbdtParams {
            n_rounds: 25,
            ..GbdtParams::default()
        },
        3,
    )
    .unwrap();
    let bb = ClassifierBox::new(gbdt, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(1.0)
        .build()
        .unwrap();
    let g = lewis.global().unwrap();
    // country should be influential (Fig 3d)
    let country_rank = g
        .attributes
        .iter()
        .position(|a| a.attr == lewis::datasets::DrugDataset::COUNTRY)
        .unwrap();
    assert!(country_rank < 4, "country rank {country_rank}");
}

#[test]
fn neural_network_black_box_is_explainable() {
    let dataset = lewis::datasets::GermanSynDataset::standard().generate(3000, 4);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(lewis::datasets::GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::OneHot).unwrap();
    let xs = encoder.encode_table(&table);
    let nn = NeuralNetwork::fit(
        &xs,
        &labels,
        2,
        &NnParams {
            hidden: vec![16],
            epochs: 10,
            ..NnParams::default()
        },
        4,
    )
    .unwrap();
    let bb = ClassifierBox::new(nn, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(1.0)
        .build()
        .unwrap();
    let g = lewis.global().unwrap();
    // status must dominate sex for any sane model of this SCM
    let score = |attr: AttrId| {
        g.attributes
            .iter()
            .find(|a| a.attr == attr)
            .map(|a| a.scores.nesuf)
            .unwrap()
    };
    assert!(
        score(lewis::datasets::GermanSynDataset::STATUS)
            > score(lewis::datasets::GermanSynDataset::SEX)
    );
}

#[test]
fn local_explanations_are_consistent_with_outcome_direction() {
    let dataset = lewis::datasets::GermanDataset::generate(2500, 5);
    let scm = lewis::datasets::GermanDataset::scm();
    let (table, pred, features) = rf_pipeline(dataset, 5);
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(1.0)
        .build()
        .unwrap();
    let preds = table.column(pred).unwrap().to_vec();
    let mut checked = 0;
    for (idx, &pred_value) in preds.iter().enumerate() {
        if checked >= 4 {
            break;
        }
        if pred_value != 0 {
            continue;
        }
        checked += 1;
        let row = table.row(idx).unwrap();
        let local = lewis.local(&row).unwrap();
        assert_eq!(local.outcome, 0);
        for c in &local.contributions {
            assert!((0.0..=1.0).contains(&c.positive));
            assert!((0.0..=1.0).contains(&c.negative));
        }
    }
    assert!(checked > 0, "no rejected individuals found");
}
