//! Golden conformance suite: end-to-end `ExplainResponse` JSON for a
//! fixed query mix over every builtin dataset, pinned to checked-in
//! golden files. Any future refactor that silently changes a score —
//! a re-ordered float sum, a tweaked tie-break, a "harmless" estimator
//! cleanup — fails this suite loudly instead of shipping drift.
//!
//! The pinned bytes go through the deterministic wire codec
//! (`lewis_serve::wire`), which serializes every finite f64 with
//! shortest-round-trip precision, so the goldens capture scores to the
//! bit. Errors are pinned too (as `err:<message>` lines): changing an
//! error message or variant for a fixed input is also an observable
//! behavior change.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden
//! ```
//!
//! and review the diff like any other code change.

use lewis_core::{ExplainRequest, ExplainResponse, LewisError, RecourseOptions};
use lewis_serve::wire;
use lewis_serve::EngineRegistry;
use std::path::PathBuf;
use tabular::Context;

/// Rows per dataset: small enough to build every engine in seconds,
/// large enough that every query kind has support somewhere.
const ROWS: usize = 400;
const SEED: u64 = 42;

/// The original five paper datasets plus the scaled generator — every
/// name `lewis-serve --builtin` accepts ships a golden.
const DATASETS: [&str; 6] = [
    "german_syn",
    "german_syn_scaled",
    "german",
    "adult",
    "compas",
    "drug",
];

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

fn render(result: &Result<ExplainResponse, LewisError>) -> String {
    match result {
        Ok(response) => wire::response_to_json(response).to_json(),
        Err(e) => format!("err:{e}"),
    }
}

/// The fixed query mix: every kind, deterministic targets, plus one
/// deliberately unsupported context.
fn golden_queries(engine: &lewis_core::Engine) -> Vec<(String, ExplainRequest)> {
    let table = engine.table();
    let features = engine.features();
    let a = features[0];
    let b = features[1 % features.len()];
    let row0 = table.row(0).unwrap();
    let row7 = table.row(7 % table.n_rows()).unwrap();
    vec![
        ("global".to_string(), ExplainRequest::Global),
        (
            "contextual_global".to_string(),
            ExplainRequest::ContextualGlobal {
                k: Context::of([(a, row0[a.index()])]),
            },
        ),
        (
            "contextual".to_string(),
            ExplainRequest::Contextual {
                attr: b,
                k: Context::of([(a, row7[a.index()])]),
            },
        ),
        (
            "local".to_string(),
            ExplainRequest::Local { row: row0.clone() },
        ),
        (
            "recourse".to_string(),
            ExplainRequest::Recourse {
                row: row7,
                actionable: vec![a, b],
                opts: RecourseOptions::default(),
            },
        ),
        (
            "tight_context".to_string(),
            ExplainRequest::Contextual {
                attr: b,
                k: Context::of(
                    features
                        .iter()
                        .filter(|f| **f != b)
                        .map(|&f| (f, row0[f.index()])),
                ),
            },
        ),
    ]
}

fn actual_for(name: &str) -> String {
    let mut registry = EngineRegistry::new();
    registry.load_builtin(name, ROWS, SEED).unwrap();
    let engine = registry.get(name).unwrap().engine();
    let mut out = String::new();
    for (label, request) in golden_queries(&engine) {
        out.push_str(&label);
        out.push('\t');
        out.push_str(&render(&engine.run(&request)));
        out.push('\n');
    }
    out
}

#[test]
fn explain_responses_match_checked_in_goldens() {
    let update = std::env::var("UPDATE_GOLDENS").ok().as_deref() == Some("1");
    let dir = goldens_dir();
    if update {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for name in DATASETS {
        let actual = actual_for(name);
        let path = dir.join(format!("{name}.golden"));
        if update {
            std::fs::write(&path, &actual).unwrap();
            eprintln!("wrote {}", path.display());
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test --test golden",
                path.display()
            )
        });
        if actual != expected {
            // name the first diverging line so the failure is readable
            let diverged = actual
                .lines()
                .zip(expected.lines())
                .find(|(a, e)| a != e)
                .map(|(a, e)| format!("\n  actual:   {a}\n  expected: {e}"))
                .unwrap_or_else(|| "\n  (line counts differ)".to_string());
            failures.push(format!("{name}: first divergence:{diverged}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatch — a score-visible behavior changed. If intentional, \
         regenerate with UPDATE_GOLDENS=1 and review the diff.\n{}",
        failures.join("\n")
    );
}

/// The async job lane is part of the conformance surface too: the
/// golden recourse query for `drug`, submitted with `?mode=async` and
/// polled to completion over a real socket, must replay exactly the
/// pinned golden bytes — the ticket carries the same serialized answer
/// the synchronous route (and the golden) pins.
#[test]
fn the_job_lane_replays_the_golden_recourse_answer() {
    use lewis_serve::{serve, Client, ServerConfig};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let name = "drug";
    let mut registry = EngineRegistry::new();
    registry.load_builtin(name, ROWS, SEED).unwrap();
    let engine = registry.get(name).unwrap().engine();
    let server = serve(&ServerConfig::default(), Arc::new(registry)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (_, request) = golden_queries(&engine)
        .into_iter()
        .find(|(label, _)| label == "recourse")
        .unwrap();
    let body = wire::request_to_json(&request).to_json();
    let (status, answer) = client
        .post(&format!("/v1/engines/{name}/explain?mode=async"), &body)
        .unwrap();
    assert_eq!(status, 202, "submission: {answer:?}");
    let id = answer.get("job_id").unwrap().as_str().unwrap().to_string();

    let deadline = Instant::now() + Duration::from_secs(30);
    let view = loop {
        let (status, view) = client.get(&format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(status, 200, "poll: {view:?}");
        match view.get("state").unwrap().as_str() {
            Some("done") | Some("failed") => break view,
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    };
    assert_eq!(view.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(view.get("status").unwrap().as_f64(), Some(200.0));

    let golden = std::fs::read_to_string(goldens_dir().join(format!("{name}.golden"))).unwrap();
    let want = golden
        .lines()
        .find_map(|l| l.strip_prefix("recourse\t"))
        .expect("the golden has a recourse line");
    assert_eq!(
        view.get("result").unwrap().to_json(),
        want,
        "the async replay matches the pinned golden bytes"
    );
    server.shutdown();
}

/// Hot lifecycle churn must be invisible to the conformance surface:
/// an engine packed from the golden build, then hot-loaded, swapped to
/// the same pack, unloaded, and reloaded through the admin lifecycle,
/// answers the pinned golden mix byte-for-byte. Generations advance at
/// every step (the registry's monotonic counter) while the bytes stand
/// still.
#[test]
fn goldens_survive_hot_lifecycle_churn() {
    let name = "german_syn";
    let dir = std::env::temp_dir().join(format!("lewis-golden-churn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pack = dir.join(format!("{name}.lewis"));
    let pack = pack.to_str().unwrap().to_string();

    let mut registry = EngineRegistry::new();
    registry.load_builtin(name, ROWS, SEED).unwrap();
    registry.save_pack(name, &pack).unwrap();
    let queries = golden_queries(&registry.get(name).unwrap().engine());

    // load → swap (same pack) → unload → reload, watching generations
    let g1 = registry.admin_load_pack("churn", &pack).unwrap();
    let g2 = registry.swap_pack("churn", &pack).unwrap();
    registry.unload("churn").unwrap();
    let g3 = registry.admin_load_pack("churn", &pack).unwrap();
    assert!(g1 < g2 && g2 < g3, "generations advance: {g1} {g2} {g3}");

    let golden = std::fs::read_to_string(goldens_dir().join(format!("{name}.golden"))).unwrap();
    let engine = registry.get("churn").unwrap().engine();
    for (label, request) in queries {
        let want = golden
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{label}\t")))
            .unwrap_or_else(|| panic!("the golden has a {label} line"));
        assert_eq!(
            render(&engine.run(&request)),
            want,
            "{name}/{label} drifted through the load→swap→unload→reload churn"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The goldens must be shard-count-invariant: CI's shard matrix runs
/// this same suite under `LEWIS_TEST_SHARDS=4`, and a sharded engine
/// answering differently from the golden would mean the determinism
/// contract broke. This test makes the invariance explicit locally.
#[test]
fn goldens_are_shard_invariant() {
    for name in ["german_syn", "compas"] {
        let mut plain = EngineRegistry::new();
        plain.load_builtin(name, ROWS, SEED).unwrap();
        let mut sharded = EngineRegistry::new();
        sharded.set_default_shards(3);
        sharded.load_builtin(name, ROWS, SEED).unwrap();
        let e_plain = plain.get(name).unwrap().engine();
        let e_sharded = sharded.get(name).unwrap().engine();
        for (label, request) in golden_queries(&e_plain) {
            assert_eq!(
                render(&e_plain.run(&request)),
                render(&e_sharded.run(&request)),
                "{name}/{label} diverged between 1 and 3 shards"
            );
        }
    }
}
