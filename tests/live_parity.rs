//! Acceptance (lewis-live): a live table grown by replaying a random
//! append stream is **byte-for-byte identical** to an engine cold-built
//! over the concatenated table — for all six built-in datasets, shard
//! counts {1, 4}, bitmap index on and off, every query kind (global,
//! contextual global, contextual, local, recourse, batch), with the
//! counting-pass cache cold *and* warm, before and after compaction —
//! and a v5 pack saved mid-stream restores to an engine that resumes
//! the same stream and still converges to the cold answer.
//!
//! Why this is exact (not approximate): appends maintain counts as
//! integer base+delta sums merged in a fixed order, so the overlaid
//! engine materializes literally the same `ArmTable` a contiguous scan
//! of the concatenated table would, and compaction only re-derives that
//! table. These tests are the fence around that argument.

use lewis_core::blackbox::label_table;
use lewis_core::{Engine, ExplainRequest, ExplainResponse, LewisError, RecourseOptions};
use lewis_live::LiveEngine;
use lewis_serve::{wire, BUILTINS};
use lewis_store::{Pack, PackMeta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tabular::{AttrId, Context, Table, Value};

/// Generate a built-in dataset, oracle-labelled exactly the way the
/// serving registry labels it (favourable = `outcome ≥ pivot`).
fn builtin_world(name: &str, rows: usize, seed: u64) -> (Table, causal::Dag, AttrId, Vec<AttrId>) {
    let dataset = match name {
        "german_syn" => datasets::GermanSynDataset::standard().generate(rows, seed),
        "german_syn_scaled" => datasets::german_syn_scaled(rows, seed),
        "german" => datasets::GermanDataset::generate(rows, seed),
        "adult" => datasets::AdultDataset::generate(rows, seed),
        "compas" => datasets::CompasDataset::generate(rows, seed),
        "drug" => datasets::DrugDataset::generate(rows, seed),
        other => panic!("unknown built-in {other:?}"),
    };
    let pivot = BUILTINS
        .iter()
        .find(|&&(n, _)| n == name)
        .expect("every generated name is in BUILTINS")
        .1;
    let datasets::Dataset {
        table: mut t,
        scm,
        outcome,
        features,
        ..
    } = dataset;
    let oracle = move |row: &[Value]| u32::from(row[outcome.index()] >= pivot);
    let pred = label_table(&mut t, &oracle, "pred").unwrap();
    (t, scm.graph().clone(), pred, features)
}

fn build(
    table: Table,
    graph: &causal::Dag,
    pred: AttrId,
    features: &[AttrId],
    shards: usize,
    index: bool,
) -> Engine {
    Engine::builder(table)
        .graph(graph)
        .prediction(pred, 1)
        .features(features)
        .shards(shards)
        .index(index)
        .build()
        .unwrap()
}

/// The first `rows` rows of `table`, as a fresh table over the same
/// schema — the frozen base the append stream grows back to `table`.
fn prefix(table: &Table, rows: usize) -> Table {
    let mut out = Table::new(table.schema().clone());
    for i in 0..rows {
        out.push_row(&table.row(i).unwrap()).unwrap();
    }
    out
}

/// Render one engine answer into comparable bytes via the deterministic
/// wire codec; errors render too — a live table must reproduce the cold
/// build's failures exactly, not just its successes.
fn response_bytes(result: &Result<ExplainResponse, LewisError>) -> String {
    match result {
        Ok(response) => wire::response_to_json(response).to_json(),
        Err(e) => format!("err:{e}"),
    }
}

/// Every query kind, aimed at real rows plus one likely-unsupported
/// context so error parity is pinned too.
fn probe_requests(engine: &Engine, seed: u64) -> Vec<ExplainRequest> {
    let table = engine.table();
    let features = engine.features();
    let a = features[seed as usize % features.len()];
    let b = features[(seed as usize + 1) % features.len()];
    let row0 = table.row(seed as usize % table.n_rows()).unwrap();
    let row1 = table.row((seed as usize * 7 + 3) % table.n_rows()).unwrap();
    vec![
        ExplainRequest::Global,
        ExplainRequest::ContextualGlobal {
            k: Context::of([(a, row0[a.index()])]),
        },
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of([(a, row1[a.index()])]),
        },
        ExplainRequest::Local { row: row0.clone() },
        ExplainRequest::Recourse {
            row: row1,
            actionable: vec![a, b],
            opts: RecourseOptions::default(),
        },
        // a deliberately tight context, likely unsupported
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of(
                features
                    .iter()
                    .filter(|f| **f != b)
                    .map(|&f| (f, row0[f.index()])),
            ),
        },
    ]
}

/// Run the probes cold, then again warm (all cache hits), asserting the
/// engine is cache-stable; returns the cold bytes.
fn sweep(engine: &Engine, requests: &[ExplainRequest]) -> Vec<String> {
    let cold: Vec<String> = requests
        .iter()
        .map(|r| response_bytes(&engine.run(r)))
        .collect();
    let warm: Vec<String> = requests
        .iter()
        .map(|r| response_bytes(&engine.run(r)))
        .collect();
    assert_eq!(cold, warm, "answers must be cache-stable");
    cold
}

/// Replay `full[base_rows..]` onto `live` in random-sized batches.
fn replay(live: &LiveEngine, full: &Table, base_rows: usize, rng: &mut StdRng) {
    let total = full.n_rows();
    let mut i = base_rows;
    while i < total {
        let batch = rng.gen_range(1..8usize).min(total - i);
        let rows: Vec<Vec<Value>> = (i..i + batch).map(|r| full.row(r).unwrap()).collect();
        let receipt = live.append_rows(&rows).unwrap();
        assert_eq!(receipt.appended, batch);
        i += batch;
    }
    assert_eq!(live.status().total_rows, total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: replaying a random append stream over any
    /// built-in, any shard count, index on or off, answers every query
    /// kind byte-identically to the cold build over the concatenated
    /// table — before compaction, and again after.
    #[test]
    fn replayed_append_streams_match_cold_builds(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE);
        let (name, _) = BUILTINS[(seed as usize) % BUILTINS.len()];
        let shards = if seed % 2 == 0 { 1 } else { 4 };
        let index = (seed / 2) % 2 == 1;
        let total = rng.gen_range(120..200usize);
        let appended = rng.gen_range(10..40usize);
        let (full, graph, pred, features) = builtin_world(name, total, seed);
        let total = full.n_rows();
        let base_rows = total - appended;

        let base = build(prefix(&full, base_rows), &graph, pred, &features, shards, index);
        let live = LiveEngine::new(Arc::new(base));
        replay(&live, &full, base_rows, &mut rng);

        let cold = build(full.clone(), &graph, pred, &features, shards, index);
        let requests = probe_requests(&cold, seed);
        let want = sweep(&cold, &requests);
        let overlaid = live.engine();
        let got = sweep(&overlaid, &requests);
        prop_assert_eq!(
            &want, &got,
            "{} diverged at {} shards, index {} (seed {})",
            name, shards, index, seed
        );
        // the batch path shares passes across queries — same bytes
        for (i, (w, g)) in cold
            .run_batch(&requests)
            .iter()
            .zip(&overlaid.run_batch(&requests))
            .enumerate()
        {
            prop_assert_eq!(
                response_bytes(w),
                response_bytes(g),
                "batch slot #{} diverged ({}, seed {})",
                i, name, seed
            );
        }

        // compaction folds the delta without moving answers or the
        // watermark, and the table keeps accepting appends afterwards
        let version_before = live.status().version;
        let receipt = live.compact().unwrap();
        prop_assert!(!receipt.skipped);
        prop_assert_eq!(receipt.pending_delta_rows, 0);
        prop_assert_eq!(live.status().version, version_before);
        let folded = live.engine();
        prop_assert_eq!(folded.delta_rows(), 0, "compaction folded the delta");
        let after = sweep(&folded, &requests);
        prop_assert_eq!(
            &want, &after,
            "{} diverged after compaction (seed {})",
            name, seed
        );
    }

    /// A v5 pack written mid-stream restores to an engine that picks the
    /// stream back up: the watermark survives the round-trip, the
    /// resumed table accepts the remaining appends, and the final
    /// answers are byte-identical to the cold build.
    #[test]
    fn a_v5_pack_saved_mid_stream_resumes_the_append_stream(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACED);
        let (name, _) = BUILTINS[(seed as usize + 3) % BUILTINS.len()];
        let shards = if seed % 2 == 0 { 4 } else { 1 };
        let index = (seed / 2) % 2 == 0;
        let total = rng.gen_range(120..200usize);
        let appended = rng.gen_range(12..40usize);
        let (full, graph, pred, features) = builtin_world(name, total, seed);
        let total = full.n_rows();
        let base_rows = total - appended;
        let pause_at = base_rows + appended / 2;

        // first half of the stream, then freeze to pack bytes
        let base = build(prefix(&full, base_rows), &graph, pred, &features, shards, index);
        let live = LiveEngine::new(Arc::new(base));
        replay(&live, &prefix(&full, pause_at), base_rows, &mut rng);
        let bytes = Pack::from_engine(&live.engine(), PackMeta::default()).to_bytes();
        let (version, watermark) = lewis_store::version_info(&bytes).unwrap();
        prop_assert_eq!(version, 5);
        prop_assert_eq!(watermark, Some(pause_at as u64), "watermark survives");

        // restore and resume the second half on the revived table
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        prop_assert_eq!(restored.total_rows(), pause_at, "mid-stream rows survive");
        let resumed = LiveEngine::new(Arc::new(restored));
        prop_assert_eq!(resumed.status().version, pause_at as u64);
        replay(&resumed, &full, pause_at, &mut rng);

        let cold = build(full.clone(), &graph, pred, &features, shards, index);
        let requests = probe_requests(&cold, seed);
        let want = sweep(&cold, &requests);
        let got = sweep(&resumed.engine(), &requests);
        prop_assert_eq!(
            &want, &got,
            "{} diverged after pack round-trip (seed {})",
            name, seed
        );
        // and the revived stream compacts cleanly too
        resumed.compact().unwrap();
        prop_assert_eq!(&want, &sweep(&resumed.engine(), &requests));
    }
}

/// The CI matrix hooks: `LEWIS_TEST_SHARDS` / `LEWIS_TEST_INDEX` set
/// builder defaults, so the parity suite above (which sets both
/// explicitly) pins the same answers whatever the matrix leg.
#[test]
fn explicit_layout_beats_the_env_matrix_defaults() {
    let (full, graph, pred, features) = builtin_world("german_syn", 150, 9);
    let engine = build(full, &graph, pred, &features, 3, true);
    assert_eq!(engine.shards(), 3);
}
