//! Acceptance: a row-sharded engine is **byte-for-byte identical** to
//! the unsharded seed engine — for every query kind (global, contextual
//! global, contextual, local, set-sufficiency, recourse), for shard
//! counts {1, 2, 3, 7, 16}, over proptest-generated tables and seeds,
//! with the counting-pass cache cold *and* warm.
//!
//! The mechanism making this exact (not approximate): per-shard counts
//! are unsigned integers merged in shard-index order, so a sharded pass
//! produces literally the same `ArmTable` a contiguous scan would, and
//! every downstream f64 sum runs in the same order over the same values.
//! These tests are the fence around that argument.

use lewis_core::{Contrast, Engine, ExplainRequest, ExplainResponse, LewisError, RecourseOptions};
use lewis_serve::wire;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{AttrId, Context, Domain, Schema, Table, Value};

const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 7, 16];

/// Render one engine answer into comparable bytes via the deterministic
/// wire codec; errors render too — a sharded engine must reproduce the
/// seed engine's failures exactly, not just its successes.
fn response_bytes(result: &Result<ExplainResponse, LewisError>) -> String {
    match result {
        Ok(response) => wire::response_to_json(response).to_json(),
        Err(e) => format!("err:{e}"),
    }
}

/// A random labelled table: 2–4 feature attributes of cardinality 2–4,
/// a binary prediction column correlated with the first feature, and
/// optionally a random DAG over the features.
fn random_world(seed: u64) -> (Table, Option<causal::Dag>, AttrId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_features = rng.gen_range(2..5usize);
    let mut schema = Schema::new();
    let mut cards = Vec::new();
    for i in 0..n_features {
        let card = rng.gen_range(2..5usize);
        let labels: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
        schema.push(format!("f{i}"), Domain::categorical(labels));
        cards.push(card);
    }
    schema.push("pred", Domain::boolean());
    let pred = AttrId(n_features as u32);
    let mut table = Table::new(schema);
    let n_rows = rng.gen_range(30..200usize);
    for _ in 0..n_rows {
        let mut row: Vec<Value> = cards
            .iter()
            .map(|&card| rng.gen_range(0..card as Value))
            .collect();
        // prediction leans on f0 so scores are non-degenerate
        let p = if row[0] as usize * 2 >= cards[0] {
            0.8
        } else {
            0.25
        };
        row.push(Value::from(rng.gen_range(0.0..1.0) < p));
        table.push_row(&row).unwrap();
    }
    let graph = if rng.gen_range(0..2) == 1 {
        let mut g = causal::Dag::new(n_features);
        for i in 0..n_features {
            for j in (i + 1)..n_features {
                if rng.gen_range(0..3) == 0 {
                    g.add_edge(i, j).unwrap();
                }
            }
        }
        Some(g)
    } else {
        None
    };
    (table, graph, pred)
}

fn build_engine(table: &Table, graph: Option<&causal::Dag>, pred: AttrId, shards: usize) -> Engine {
    let features: Vec<AttrId> = table.schema().attr_ids().filter(|&a| a != pred).collect();
    let mut builder = Engine::builder(table.clone())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.5)
        .min_support(5)
        .shards(shards);
    if let Some(g) = graph {
        builder = builder.graph(g);
    }
    builder.build().unwrap()
}

/// Every query kind, aimed at real rows plus one likely-unsupported
/// context so error parity is pinned too.
fn probe_requests(engine: &Engine, seed: u64) -> Vec<ExplainRequest> {
    let table = engine.table();
    let features = engine.features();
    let a = features[seed as usize % features.len()];
    let b = features[(seed as usize + 1) % features.len()];
    let row0 = table.row(seed as usize % table.n_rows()).unwrap();
    let row1 = table.row((seed as usize * 7 + 3) % table.n_rows()).unwrap();
    vec![
        ExplainRequest::Global,
        ExplainRequest::ContextualGlobal {
            k: Context::of([(a, row0[a.index()])]),
        },
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of([(a, row1[a.index()])]),
        },
        ExplainRequest::Local { row: row0.clone() },
        ExplainRequest::Recourse {
            row: row1,
            actionable: vec![a, b],
            opts: RecourseOptions::default(),
        },
        // a deliberately tight context, likely unsupported
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of(
                features
                    .iter()
                    .filter(|f| **f != b)
                    .map(|&f| (f, row0[f.index()])),
            ),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for every shard count, every query kind
    /// answers byte-identically to the unsharded seed engine — cold
    /// cache first, then warm (the second sweep is all cache hits).
    #[test]
    fn sharded_engines_answer_byte_identically(seed in 0u64..10_000) {
        let (table, graph, pred) = random_world(seed);
        let baseline = build_engine(&table, graph.as_ref(), pred, 1);
        let requests = probe_requests(&baseline, seed);
        // cold sweep on the baseline, then a warm sweep: both recorded
        let cold: Vec<String> = requests.iter().map(|r| response_bytes(&baseline.run(r))).collect();
        let warm: Vec<String> = requests.iter().map(|r| response_bytes(&baseline.run(r))).collect();
        prop_assert_eq!(&cold, &warm, "seed engine must be cache-stable (seed {})", seed);

        for &n_shards in &SHARD_COUNTS[1..] {
            let sharded = build_engine(&table, graph.as_ref(), pred, n_shards);
            prop_assert_eq!(sharded.shards(), n_shards);
            for (i, request) in requests.iter().enumerate() {
                // cold: the pass is built sharded, then warm: served
                // from cache — both must equal the seed answer
                let first = response_bytes(&sharded.run(request));
                prop_assert_eq!(
                    &cold[i], &first,
                    "request #{} diverged cold at {} shards (seed {})",
                    i, n_shards, seed
                );
                let second = response_bytes(&sharded.run(request));
                prop_assert_eq!(
                    &cold[i], &second,
                    "request #{} diverged warm at {} shards (seed {})",
                    i, n_shards, seed
                );
            }
            // batch path too (recourse grouping + cache sharing)
            for (i, (b, s)) in baseline
                .run_batch(&requests)
                .iter()
                .zip(&sharded.run_batch(&requests))
                .enumerate()
            {
                prop_assert_eq!(
                    response_bytes(b),
                    response_bytes(s),
                    "batch slot #{} diverged at {} shards (seed {})",
                    i, n_shards, seed
                );
            }
        }
    }

    /// Set-sufficiency (the recourse verifier's primitive) compares at
    /// the estimator level, down to the f64 bit patterns.
    #[test]
    fn set_sufficiency_is_bitwise_shard_invariant(seed in 0u64..10_000) {
        let (table, graph, pred) = random_world(seed);
        let baseline = build_engine(&table, graph.as_ref(), pred, 1);
        let features = baseline.features().to_vec();
        let a = features[0];
        let b = features[1 % features.len()];
        let hi = [(a, 1), (b, 1)];
        let lo = [(a, 0), (b, 0)];
        let want = baseline.estimator().scores_set(&hi, &lo, &Context::empty());
        for &n_shards in &SHARD_COUNTS[1..] {
            let sharded = build_engine(&table, graph.as_ref(), pred, n_shards);
            let got = sharded.estimator().scores_set(&hi, &lo, &Context::empty());
            match (&want, &got) {
                (Ok(w), Ok(g)) => {
                    prop_assert_eq!(w.necessity.to_bits(), g.necessity.to_bits());
                    prop_assert_eq!(w.sufficiency.to_bits(), g.sufficiency.to_bits());
                    prop_assert_eq!(w.nesuf.to_bits(), g.nesuf.to_bits());
                }
                (Err(w), Err(g)) => prop_assert_eq!(format!("{w}"), format!("{g}")),
                (w, g) => prop_assert!(false, "diverged at {} shards: {:?} vs {:?}", n_shards, w, g),
            }
        }
    }
}

/// Regression (satellite): `scores_batch` groups contrasts by
/// intervened-attribute set; with sharding on, a batch mixing duplicate
/// contrasts and `Unsupported` cases must preserve input order and
/// per-item error identity — each slot exactly what `scores_set` would
/// return for it.
#[test]
fn scores_batch_preserves_order_and_error_identity_with_sharding() {
    let (table, graph, pred) = random_world(77);
    for n_shards in SHARD_COUNTS {
        let engine = build_engine(&table, graph.as_ref(), pred, n_shards);
        let est = engine.estimator();
        let features = engine.features().to_vec();
        let a = features[0];
        let b = features[1 % features.len()];
        let k = Context::empty();
        let batch = vec![
            Contrast::single(a, 1, 0),
            // duplicate of the first (same pass, same slot-level answer)
            Contrast::single(a, 1, 0),
            // unsupported-by-construction: a code far outside any row
            // still validates against nothing here — use an identical
            // hi/lo pair instead, which is an Invalid error
            Contrast {
                hi: vec![(b, 0)],
                lo: vec![(b, 0)],
            },
            Contrast::set(&[(a, 1), (b, 1)], &[(a, 0), (b, 0)]),
            // duplicate of the set contrast
            Contrast::set(&[(a, 1), (b, 1)], &[(a, 0), (b, 0)]),
            // a contrast whose lo arm has no support in a tight context
            Contrast::single(b, 1, 0),
        ];
        // a context so tight the last contrast is typically unsupported
        let row0 = table.row(0).unwrap();
        let tight = Context::of(
            features
                .iter()
                .filter(|f| **f != b)
                .map(|&f| (f, row0[f.index()])),
        );
        for ctx in [&k, &tight] {
            let batched = est.scores_batch(&batch, ctx);
            assert_eq!(batched.len(), batch.len(), "positional alignment");
            for (i, (contrast, got)) in batch.iter().zip(&batched).enumerate() {
                let want = est.scores_set(&contrast.hi, &contrast.lo, ctx);
                match (&want, got) {
                    (Ok(w), Ok(g)) => {
                        assert_eq!(
                            w.nesuf.to_bits(),
                            g.nesuf.to_bits(),
                            "slot {i} at {n_shards} shards"
                        );
                        assert_eq!(w.necessity.to_bits(), g.necessity.to_bits());
                        assert_eq!(w.sufficiency.to_bits(), g.sufficiency.to_bits());
                    }
                    (Err(w), Err(g)) => {
                        // identity: same variant, same message
                        assert_eq!(
                            format!("{w}"),
                            format!("{g}"),
                            "slot {i} at {n_shards} shards"
                        );
                        assert_eq!(
                            std::mem::discriminant(w),
                            std::mem::discriminant(g),
                            "slot {i} at {n_shards} shards"
                        );
                    }
                    (w, g) => panic!("slot {i} diverged at {n_shards} shards: {w:?} vs {g:?}"),
                }
            }
            // duplicates agree with each other, bit for bit
            assert_eq!(
                response_like(&batched[0]),
                response_like(&batched[1]),
                "duplicate contrasts must answer identically"
            );
            assert_eq!(response_like(&batched[3]), response_like(&batched[4]));
        }
    }
}

fn response_like(r: &Result<lewis_core::Scores, LewisError>) -> String {
    match r {
        Ok(s) => format!(
            "{:x}/{:x}/{:x}",
            s.necessity.to_bits(),
            s.sufficiency.to_bits(),
            s.nesuf.to_bits()
        ),
        Err(e) => format!("err:{e}"),
    }
}

/// The env hook CI's shard matrix uses: `LEWIS_TEST_SHARDS` sets the
/// default, an explicit `.shards()` always wins.
#[test]
fn explicit_shards_override_the_env_default() {
    let (table, graph, pred) = random_world(5);
    let engine = build_engine(&table, graph.as_ref(), pred, 7);
    assert_eq!(engine.shards(), 7);
}
