//! The owned `Engine` surface: thread-sharing, the counting-pass
//! cache's bit-exactness, and the typed no-support outcomes.
//!
//! * N threads sharing one `Arc<Engine>` must produce exactly the
//!   explanations a single thread produces;
//! * cache-warm scores must be bit-identical to cache-cold scores
//!   (property-tested over random tables);
//! * an attribute with no supported value pair reports
//!   `best_pair == None` (not a silent `(0, 0)`).

use lewis::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// A small random labelled table: three feature attributes plus a
/// derived binary prediction column (same shape as the batch tests).
fn arb_labelled_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0u32..3, 0u32..4, 0u32..2), 12..120).prop_map(|rows| {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1", "2"]));
        s.push("b", Domain::categorical(["0", "1", "2", "3"]));
        s.push("c", Domain::boolean());
        s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        for (a, b, c) in rows {
            let pred = u32::from(a + b + c >= 3);
            t.push_row(&[a, b, c, pred]).unwrap();
        }
        t
    })
}

fn engine_over(t: &Table, alpha: f64) -> Engine {
    Engine::builder(t.clone())
        .prediction(AttrId(3), 1)
        .features(&[AttrId(0), AttrId(1), AttrId(2)])
        .alpha(alpha)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cache-warm scores must be **bit-identical** to cache-cold scores:
    /// a fresh engine's first answer (cold pass) equals a warmed
    /// engine's repeat answer (cache hit) down to the f64 bits.
    #[test]
    fn cache_warm_scores_bit_identical_to_cold(
        t in arb_labelled_table(),
        alpha in 0.0f64..2.0,
        k_attr in 0u32..3,
        k_val in 0u32..2,
    ) {
        let cold = engine_over(&t, alpha);
        let warm = engine_over(&t, alpha);
        let contexts = [Context::empty(), Context::of([(AttrId(k_attr), k_val)])];
        // populate the warm engine's cache with a full sweep
        for k in &contexts {
            for attr in 0..3u32 {
                if k.constrains(AttrId(attr)) { continue; }
                let _ = warm.attribute_scores(AttrId(attr), k);
            }
        }
        prop_assert!(warm.cache_stats().misses > 0, "sweep must build passes");
        for k in &contexts {
            for attr in 0..3u32 {
                if k.constrains(AttrId(attr)) { continue; }
                let c = cold.attribute_scores(AttrId(attr), k).unwrap();
                let w = warm.attribute_scores(AttrId(attr), k).unwrap();
                prop_assert_eq!(&c, &w, "cold vs warm for attr {} in {:?}", attr, k);
                prop_assert_eq!(c.scores.necessity.to_bits(), w.scores.necessity.to_bits());
                prop_assert_eq!(c.scores.sufficiency.to_bits(), w.scores.sufficiency.to_bits());
                prop_assert_eq!(c.scores.nesuf.to_bits(), w.scores.nesuf.to_bits());
            }
        }
        prop_assert!(warm.cache_stats().hits > 0, "repeat sweep must hit the cache");
    }
}

/// Build the German-syn audit pipeline shared by the integration tests.
fn german_engine(n: usize, seed: u64) -> Engine {
    use lewis::datasets::GermanSynDataset;
    use lewis::ml::encode::{Encoding, TableEncoder};
    use lewis::ml::forest::ForestParams;
    use lewis::ml::RandomForestClassifier;

    let dataset = GermanSynDataset::standard().generate(n, seed);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 15,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    Engine::builder(table)
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.25)
        .build()
        .unwrap()
}

/// N threads sharing one `Arc<Engine>` must return exactly the
/// single-threaded explanations — same rankings, same bits.
#[test]
fn concurrent_queries_match_single_threaded() {
    use lewis::datasets::GermanSynDataset;

    let engine = Arc::new(german_engine(3_000, 7));
    let k = Context::of([(GermanSynDataset::SEX, 1)]);
    let row = engine.table().row(17).unwrap();

    // single-threaded ground truth, computed on a *fresh* engine so the
    // concurrent run below also exercises cold-cache racing
    let baseline_engine = german_engine(3_000, 7);
    let baseline_global = baseline_engine.global().unwrap();
    let baseline_ctx = baseline_engine.contextual_global(&k).unwrap();
    let baseline_local = baseline_engine.local(&row).unwrap();

    let n_threads = 8;
    let mut handles = Vec::new();
    for worker in 0..n_threads {
        let engine = Arc::clone(&engine);
        let k = k.clone();
        let row = row.clone();
        handles.push(thread::spawn(move || {
            // stagger the query mix so threads race different passes
            let mut out = Vec::new();
            for round in 0..3 {
                if (worker + round) % 2 == 0 {
                    out.push((
                        engine.global().unwrap(),
                        engine.contextual_global(&k).unwrap(),
                        engine.local(&row).unwrap(),
                    ));
                } else {
                    let l = engine.local(&row).unwrap();
                    let c = engine.contextual_global(&k).unwrap();
                    let g = engine.global().unwrap();
                    out.push((g, c, l));
                }
            }
            out
        }));
    }
    for handle in handles {
        for (g, c, l) in handle.join().expect("worker thread panicked") {
            assert_eq!(g, baseline_global, "global must not depend on concurrency");
            assert_eq!(c, baseline_ctx, "contextual must not depend on concurrency");
            assert_eq!(l, baseline_local, "local must not depend on concurrency");
        }
    }
    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "threads must share counting passes: {stats:?}"
    );
}

/// `run_batch` must agree with `run`, positionally.
#[test]
fn run_batch_agrees_with_individual_runs() {
    use lewis::datasets::GermanSynDataset;

    let engine = german_engine(2_000, 9);
    let row = engine.table().row(3).unwrap();
    let requests = vec![
        ExplainRequest::Global,
        ExplainRequest::Contextual {
            attr: GermanSynDataset::STATUS,
            k: Context::of([(GermanSynDataset::SEX, 0)]),
        },
        ExplainRequest::Local { row: row.clone() },
        ExplainRequest::ContextualGlobal {
            k: Context::of([(GermanSynDataset::SEX, 1)]),
        },
        ExplainRequest::Global,
    ];
    let batch = engine.run_batch(&requests);
    assert_eq!(batch.len(), requests.len());
    for (request, from_batch) in requests.iter().zip(batch) {
        let alone = engine.run(request).unwrap();
        let from_batch = from_batch.unwrap();
        assert_eq!(
            format!("{alone:?}"),
            format!("{from_batch:?}"),
            "batch answer must equal the standalone answer"
        );
    }
}

/// An attribute whose every ordered value pair lacks support in the
/// context reports `best_pair == None` and zero scores — the old API
/// returned a misleading `(0, 0)` sentinel here.
#[test]
fn best_pair_is_none_when_no_pair_has_support() {
    let mut s = Schema::new();
    s.push("z", Domain::boolean());
    s.push("x", Domain::boolean());
    s.push("pred", Domain::boolean());
    let mut t = Table::new(s);
    // x = 1 never occurs alongside z = 1, so within k = {z = 1} the only
    // ordered pair of x has an empty arm.
    for _ in 0..10 {
        t.push_row(&[0, 0, 0]).unwrap();
        t.push_row(&[0, 1, 1]).unwrap();
        t.push_row(&[1, 0, 0]).unwrap();
    }
    let engine = Engine::builder(t)
        .prediction(AttrId(2), 1)
        .features(&[AttrId(0), AttrId(1)])
        .alpha(0.0)
        .build()
        .unwrap();
    let unsupported = engine
        .attribute_scores(AttrId(1), &Context::of([(AttrId(0), 1)]))
        .unwrap();
    assert_eq!(unsupported.best_pair, None);
    assert_eq!(unsupported.scores, Scores::default());
    // with full support the maximizing contrast is reported
    let supported = engine
        .attribute_scores(AttrId(1), &Context::empty())
        .unwrap();
    assert_eq!(supported.best_pair, Some((1, 0)));
    assert!(supported.scores.sufficiency > 0.9);
}

/// The expected no-support outcome is typed (`LewisError::Unsupported`),
/// distinct from caller errors (`LewisError::Invalid`).
#[test]
fn unsupported_is_a_typed_outcome() {
    let mut s = Schema::new();
    s.push("z", Domain::boolean());
    s.push("x", Domain::boolean());
    s.push("pred", Domain::boolean());
    let mut t = Table::new(s);
    for _ in 0..5 {
        t.push_row(&[0, 0, 0]).unwrap();
        t.push_row(&[0, 1, 1]).unwrap();
        t.push_row(&[1, 0, 0]).unwrap();
    }
    let est = ScoreEstimator::new(&t, None, AttrId(2), 1, 0.0).unwrap();
    // the x = 1 arm is empty under z = 1: typed no-support outcome
    match est.scores(AttrId(1), 1, 0, &Context::of([(AttrId(0), 1)])) {
        Err(e) => assert!(e.is_unsupported(), "expected Unsupported, got {e}"),
        Ok(s) => panic!("empty arm cannot score: {s:?}"),
    }
    // a malformed request stays Invalid
    match est.scores(AttrId(1), 1, 1, &Context::empty()) {
        Err(LewisError::Invalid(_)) => {}
        other => panic!("hi == lo must be Invalid, got {other:?}"),
    }
}
