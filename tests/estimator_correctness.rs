//! Correctness of the score estimators against exact ground truth — the
//! §5.5 / Fig. 11 validation as an automated test, plus the paper's
//! propositions checked end to end.

use lewis::core::blackbox::label_table;
use lewis::core::groundtruth::GroundTruth;
use lewis::core::ordering::ordered_pairs;
use lewis::core::scores::ScoreKind;
use lewis::core::{ClassifierBox, Engine, ScoreEstimator};
use lewis::datasets::GermanSynDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::tabular::{AttrId, Context, Table};

struct Fixture {
    table: Table,
    pred: AttrId,
    scm: lewis::causal::Scm,
    features: Vec<AttrId>,
    bb: ClassifierBox<RandomForestClassifier>,
}

fn fixture(n: usize, seed: u64) -> Fixture {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(n, seed);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    Fixture {
        table,
        pred,
        scm,
        features,
        bb,
    }
}

#[test]
fn estimated_scores_track_exact_ground_truth() {
    let f = fixture(12_000, 21);
    let est = ScoreEstimator::new(&f.table, Some(f.scm.graph()), f.pred, 1, 0.25).unwrap();
    let gt = GroundTruth::exact(&f.scm, &f.bb, 1).unwrap();
    let k = Context::empty();
    for attr in [
        GermanSynDataset::STATUS,
        GermanSynDataset::SAVING,
        GermanSynDataset::HOUSING,
    ] {
        let card = f.table.schema().cardinality(attr).unwrap() as u32;
        let (hi, lo) = (card - 1, 0);
        let estimated = est.scores(attr, hi, lo, &k).unwrap();
        let exact_suf = gt.sufficiency(attr, hi, lo, &k).unwrap();
        let exact_nec = gt.necessity(attr, hi, lo, &k).unwrap();
        let exact_ns = gt.nesuf(attr, hi, lo, &k).unwrap();
        assert!(
            (estimated.sufficiency - exact_suf).abs() < 0.08,
            "{attr} SUF: {} vs {exact_suf}",
            estimated.sufficiency
        );
        assert!(
            (estimated.necessity - exact_nec).abs() < 0.08,
            "{attr} NEC: {} vs {exact_nec}",
            estimated.necessity
        );
        assert!(
            (estimated.nesuf - exact_ns).abs() < 0.08,
            "{attr} NESUF: {} vs {exact_ns}",
            estimated.nesuf
        );
    }
}

#[test]
fn frechet_bounds_contain_ground_truth() {
    // Proposition 4.1: the bounds hold *without* monotonicity, so they
    // must bracket the exact counterfactual quantities.
    let f = fixture(12_000, 22);
    let est = ScoreEstimator::new(&f.table, Some(f.scm.graph()), f.pred, 1, 0.25).unwrap();
    let gt = GroundTruth::exact(&f.scm, &f.bb, 1).unwrap();
    let k = Context::empty();
    let attr = GermanSynDataset::STATUS;
    for (kind, exact) in [
        (ScoreKind::Necessity, gt.necessity(attr, 3, 0, &k).unwrap()),
        (
            ScoreKind::Sufficiency,
            gt.sufficiency(attr, 3, 0, &k).unwrap(),
        ),
        (
            ScoreKind::NecessityAndSufficiency,
            gt.nesuf(attr, 3, 0, &k).unwrap(),
        ),
    ] {
        let b = est.bounds(kind, attr, 3, 0, &k).unwrap();
        assert!(
            b.lower - 0.06 <= exact && exact <= b.upper + 0.06,
            "{kind:?}: exact {exact} outside [{}, {}]",
            b.lower,
            b.upper
        );
    }
}

#[test]
fn indirect_influence_of_age_is_recovered() {
    // The Fig 11a headline: age has NO direct edge to the score, yet its
    // ground-truth NESUF is materially positive, and LEWIS finds it.
    let f = fixture(12_000, 23);
    let lewis = Engine::builder(f.table.clone())
        .graph(f.scm.graph())
        .prediction(f.pred, 1)
        .features(&f.features)
        .alpha(0.25)
        .build()
        .unwrap();
    let gt = GroundTruth::exact(&f.scm, &f.bb, 1).unwrap();
    let order = lewis.value_order(GermanSynDataset::AGE).unwrap().to_vec();
    let mut exact_max = 0.0f64;
    for (hi, lo) in ordered_pairs(&order) {
        if let Ok(ns) = gt.nesuf(GermanSynDataset::AGE, hi, lo, &Context::empty()) {
            exact_max = exact_max.max(ns);
        }
    }
    let estimated = lewis
        .attribute_scores(GermanSynDataset::AGE, &Context::empty())
        .unwrap()
        .scores
        .nesuf;
    assert!(exact_max > 0.05, "ground truth indirect effect {exact_max}");
    assert!(
        (estimated - exact_max).abs() < 0.1,
        "estimate {estimated} vs exact {exact_max}"
    );
}

#[test]
fn contextual_scores_match_ground_truth_per_stratum() {
    let f = fixture(15_000, 24);
    let est = ScoreEstimator::new(&f.table, Some(f.scm.graph()), f.pred, 1, 0.25).unwrap();
    let gt = GroundTruth::exact(&f.scm, &f.bb, 1).unwrap();
    for age in 0..3u32 {
        let k = Context::of([(GermanSynDataset::AGE, age)]);
        let estimated = est.scores(GermanSynDataset::STATUS, 3, 0, &k).unwrap();
        let exact = gt.sufficiency(GermanSynDataset::STATUS, 3, 0, &k).unwrap();
        assert!(
            (estimated.sufficiency - exact).abs() < 0.1,
            "age {age}: {} vs {exact}",
            estimated.sufficiency
        );
    }
}

#[test]
fn no_graph_fallback_still_ranks_direct_causes_high() {
    // §6: without a causal diagram LEWIS degrades to the no-confounding
    // fallback — rankings of strong direct causes survive.
    let f = fixture(8_000, 25);
    let lewis = Engine::builder(f.table.clone())
        .prediction(f.pred, 1)
        .features(&f.features)
        .alpha(0.25)
        .build()
        .unwrap();
    let g = lewis.global().unwrap();
    assert_eq!(g.attributes[0].attr, GermanSynDataset::STATUS);
}
