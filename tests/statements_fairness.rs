//! Integration coverage for the natural-language statement generator and
//! the counterfactual-fairness audit, run against full pipelines.

use lewis::core::blackbox::label_table;
use lewis::core::fairness;
use lewis::core::statements::{best_statement, OutcomeWords};
use lewis::core::{ClassifierBox, Engine, ScoreEstimator};
use lewis::datasets::{CompasDataset, GermanDataset};
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::tabular::{AttrId, Context, Table};

fn train(dataset: lewis::datasets::Dataset, seed: u64) -> (Table, AttrId, Vec<AttrId>) {
    let mut table = dataset.table;
    let labels: Vec<u32> = table.column(dataset.outcome).unwrap().to_vec();
    let n_classes = table.schema().cardinality(dataset.outcome).unwrap();
    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        n_classes,
        &ForestParams {
            n_trees: 25,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    (table, pred, dataset.features)
}

#[test]
fn figure_one_style_statement_for_rejected_applicant() {
    let (table, pred, _features) = train(GermanDataset::generate(2500, 61), 61);
    let scm = GermanDataset::scm();
    let est = ScoreEstimator::new(&table, Some(scm.graph()), pred, 1, 0.25).unwrap();
    let words = OutcomeWords {
        subject: "your loan".into(),
        positive: "been approved".into(),
        negative: "been rejected".into(),
    };
    let order = lewis::core::infer_value_order(&table, GermanDataset::STATUS, pred, 1).unwrap();
    // find a rejected applicant whose status is not already maximal
    let preds = table.column(pred).unwrap().to_vec();
    let worst_status = *order.last().unwrap();
    let idx = (0..table.n_rows())
        .find(|&i| preds[i] == 0 && table.get(i, GermanDataset::STATUS).unwrap() != worst_status)
        .expect("rejected applicant with improvable status");
    let row = table.row(idx).unwrap();
    let stmt = best_statement(&est, &words, &row, GermanDataset::STATUS, &order, 20)
        .unwrap()
        .expect("a statement exists");
    assert!(stmt
        .text
        .starts_with("Your loan would have been approved with"));
    assert!(stmt.text.contains("status ="));
    assert!((0.0..=1.0).contains(&stmt.probability));
}

#[test]
fn compas_score_fails_counterfactual_fairness() {
    let (table, pred, features) = train(CompasDataset::generate(6000, 62), 62);
    let scm = CompasDataset::scm();
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.5)
        .build()
        .unwrap();
    let report = fairness::audit(&lewis, CompasDataset::RACE, &Context::empty(), 0.05).unwrap();
    assert!(
        !report.counterfactually_fair,
        "the biased score must fail the audit: {report:?}"
    );
    // the documented disparity: priors' sufficiency differs by race
    let gap = fairness::max_disparity(
        &lewis,
        CompasDataset::PRIORS,
        CompasDataset::RACE,
        &Context::empty(),
    )
    .unwrap();
    assert!(gap > 0.02, "priors sufficiency gap {gap}");
    // evidence list is non-empty and in [0,1]
    let evidence =
        fairness::contrast_evidence(&lewis, CompasDataset::RACE, &Context::empty()).unwrap();
    assert!(!evidence.is_empty());
    for (_, s) in evidence {
        assert!((0.0..=1.0).contains(&s.sufficiency));
    }
}

#[test]
fn german_sex_is_closer_to_fair_than_compas_race() {
    // German's sex reaches the outcome only through weak mediators, so
    // its audit scores should sit well below COMPAS race's.
    let (g_table, g_pred, g_features) = train(GermanDataset::generate(4000, 63), 63);
    let g_scm = GermanDataset::scm();
    let g_lewis = Engine::builder(g_table.clone())
        .graph(g_scm.graph())
        .prediction(g_pred, 1)
        .features(&g_features)
        .alpha(0.5)
        .build()
        .unwrap();
    let g_report = fairness::audit(&g_lewis, GermanDataset::SEX, &Context::empty(), 0.05).unwrap();

    let (c_table, c_pred, c_features) = train(CompasDataset::generate(4000, 63), 63);
    let c_scm = CompasDataset::scm();
    let c_lewis = Engine::builder(c_table.clone())
        .graph(c_scm.graph())
        .prediction(c_pred, 1)
        .features(&c_features)
        .alpha(0.5)
        .build()
        .unwrap();
    let c_report = fairness::audit(&c_lewis, CompasDataset::RACE, &Context::empty(), 0.05).unwrap();

    assert!(
        g_report.max_sufficiency < c_report.max_sufficiency,
        "german sex SUF {} should be below compas race SUF {}",
        g_report.max_sufficiency,
        c_report.max_sufficiency
    );
}
