//! Acceptance: an engine answering counting passes and support probes
//! from per-(feature, code) bitmap indexes is **byte-for-byte
//! identical** to the plain scanning engine — for every query kind
//! (global, contextual global, contextual, local, recourse), for shard
//! counts {1, 2, 4, 7}, over proptest-generated tables and seeds, with
//! the counting-pass cache cold *and* warm.
//!
//! Why this is exact (not approximate): a conjunctive count is an
//! AND-of-bitmaps popcount — an integer — and per-shard popcounts are
//! summed in shard-index order, so the indexed path materializes
//! literally the same `Counter` a row scan would. The routing decision
//! (index vs scan) is a pure function of the query's grid size, never
//! of timing, so answers cannot drift between runs either.

use lewis_core::{Engine, ExplainRequest, ExplainResponse, LewisError, RecourseOptions};
use lewis_serve::wire;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{AttrId, Context, Domain, Schema, Table, Value};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Render one engine answer into comparable bytes via the deterministic
/// wire codec; errors render too — the indexed engine must reproduce
/// the scan engine's failures exactly, not just its successes.
fn response_bytes(result: &Result<ExplainResponse, LewisError>) -> String {
    match result {
        Ok(response) => wire::response_to_json(response).to_json(),
        Err(e) => format!("err:{e}"),
    }
}

/// A random labelled table: 2–4 feature attributes of cardinality 2–4,
/// a binary prediction column correlated with the first feature, and
/// optionally a random DAG over the features.
fn random_world(seed: u64) -> (Table, Option<causal::Dag>, AttrId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_features = rng.gen_range(2..5usize);
    let mut schema = Schema::new();
    let mut cards = Vec::new();
    for i in 0..n_features {
        let card = rng.gen_range(2..5usize);
        let labels: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
        schema.push(format!("f{i}"), Domain::categorical(labels));
        cards.push(card);
    }
    schema.push("pred", Domain::boolean());
    let pred = AttrId(n_features as u32);
    let mut table = Table::new(schema);
    let n_rows = rng.gen_range(30..200usize);
    for _ in 0..n_rows {
        let mut row: Vec<Value> = cards
            .iter()
            .map(|&card| rng.gen_range(0..card as Value))
            .collect();
        let p = if row[0] as usize * 2 >= cards[0] {
            0.8
        } else {
            0.25
        };
        row.push(Value::from(rng.gen_range(0.0..1.0) < p));
        table.push_row(&row).unwrap();
    }
    let graph = if rng.gen_range(0..2) == 1 {
        let mut g = causal::Dag::new(n_features);
        for i in 0..n_features {
            for j in (i + 1)..n_features {
                if rng.gen_range(0..3) == 0 {
                    g.add_edge(i, j).unwrap();
                }
            }
        }
        Some(g)
    } else {
        None
    };
    (table, graph, pred)
}

fn build_engine(
    table: &Table,
    graph: Option<&causal::Dag>,
    pred: AttrId,
    shards: usize,
    index: bool,
) -> Engine {
    let features: Vec<AttrId> = table.schema().attr_ids().filter(|&a| a != pred).collect();
    let mut builder = Engine::builder(table.clone())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.5)
        .min_support(5)
        .shards(shards)
        .index(index);
    if let Some(g) = graph {
        builder = builder.graph(g);
    }
    builder.build().unwrap()
}

/// Every query kind, aimed at real rows plus one likely-unsupported
/// context so error parity is pinned too.
fn probe_requests(engine: &Engine, seed: u64) -> Vec<ExplainRequest> {
    let table = engine.table();
    let features = engine.features();
    let a = features[seed as usize % features.len()];
    let b = features[(seed as usize + 1) % features.len()];
    let row0 = table.row(seed as usize % table.n_rows()).unwrap();
    let row1 = table.row((seed as usize * 7 + 3) % table.n_rows()).unwrap();
    vec![
        ExplainRequest::Global,
        ExplainRequest::ContextualGlobal {
            k: Context::of([(a, row0[a.index()])]),
        },
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of([(a, row1[a.index()])]),
        },
        ExplainRequest::Local { row: row0.clone() },
        ExplainRequest::Recourse {
            row: row1,
            actionable: vec![a, b],
            opts: RecourseOptions::default(),
        },
        // a deliberately tight context, likely unsupported
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of(
                features
                    .iter()
                    .filter(|f| **f != b)
                    .map(|&f| (f, row0[f.index()])),
            ),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for every shard count, every query kind
    /// answers byte-identically whether counting runs over bitmap
    /// popcounts or row scans — cold cache first, then warm.
    #[test]
    fn indexed_engines_answer_byte_identically(seed in 0u64..10_000) {
        let (table, graph, pred) = random_world(seed);
        let baseline = build_engine(&table, graph.as_ref(), pred, 1, false);
        prop_assert!(!baseline.index_enabled());
        let requests = probe_requests(&baseline, seed);
        let cold: Vec<String> = requests.iter().map(|r| response_bytes(&baseline.run(r))).collect();

        for &n_shards in &SHARD_COUNTS {
            let indexed = build_engine(&table, graph.as_ref(), pred, n_shards, true);
            prop_assert!(indexed.index_enabled());
            prop_assert!(indexed.index_memory_bytes() > 0);
            prop_assert_eq!(indexed.shards(), n_shards);
            for (i, request) in requests.iter().enumerate() {
                // cold: counts come off the index, then warm: served
                // from cache — both must equal the scan answer
                let first = response_bytes(&indexed.run(request));
                prop_assert_eq!(
                    &cold[i], &first,
                    "request #{} diverged cold at {} shards (seed {})",
                    i, n_shards, seed
                );
                let second = response_bytes(&indexed.run(request));
                prop_assert_eq!(
                    &cold[i], &second,
                    "request #{} diverged warm at {} shards (seed {})",
                    i, n_shards, seed
                );
            }
            // batch path too (recourse grouping + cache sharing)
            for (i, (b, s)) in baseline
                .run_batch(&requests)
                .iter()
                .zip(&indexed.run_batch(&requests))
                .enumerate()
            {
                prop_assert_eq!(
                    response_bytes(b),
                    response_bytes(s),
                    "batch slot #{} diverged at {} shards (seed {})",
                    i, n_shards, seed
                );
            }
        }
    }

    /// Snapshot/restore keeps the parity: a pack round-trip of an
    /// indexed engine answers exactly like the donor and like scans.
    #[test]
    fn packed_indexed_engines_keep_the_parity(seed in 0u64..10_000) {
        let (table, graph, pred) = random_world(seed);
        let scan = build_engine(&table, graph.as_ref(), pred, 2, false);
        let indexed = build_engine(&table, graph.as_ref(), pred, 2, true);
        let requests = probe_requests(&scan, seed);
        let want: Vec<String> = requests.iter().map(|r| response_bytes(&scan.run(r))).collect();

        let bytes = lewis_store::Pack::from_engine(&indexed, lewis_store::PackMeta::default()).to_bytes();
        let (restored, _) = lewis_store::Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        prop_assert!(restored.index_enabled(), "the index ships in the pack");
        for (i, request) in requests.iter().enumerate() {
            prop_assert_eq!(
                &want[i],
                &response_bytes(&restored.run(request)),
                "request #{} diverged after pack round-trip (seed {})",
                i, seed
            );
        }
    }
}

/// The env hook CI's index leg uses: `LEWIS_TEST_INDEX=1` sets the
/// default, an explicit `.index()` always wins — in both directions.
#[test]
fn explicit_index_overrides_the_env_default() {
    let (table, graph, pred) = random_world(5);
    let on = build_engine(&table, graph.as_ref(), pred, 1, true);
    assert!(on.index_enabled());
    let off = build_engine(&table, graph.as_ref(), pred, 1, false);
    assert!(!off.index_enabled());
}
