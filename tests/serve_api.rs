//! End-to-end contract of the serving subsystem: what comes back over
//! a real socket is **bit-identical** to what `Engine::run` returns in
//! process, for every query kind, singly and batched — plus the error
//! paths a network service must get right (400/404/413).

use lewis_core::{ExplainRequest, ExplainResponse, RecourseOptions};
use lewis_serve::wire::{self, Json};
use lewis_serve::{serve, Client, EngineRegistry, Server, ServerConfig};
use std::sync::Arc;
use tabular::{AttrId, Context};

const ENGINE: &str = "german_syn";

/// Start a server over a small german_syn engine; return it with a
/// direct handle to the same shared engine.
fn start() -> (Server, Arc<lewis_core::Engine>) {
    let mut registry = EngineRegistry::new();
    registry.load_builtin(ENGINE, 1500, 17).unwrap();
    let engine = registry.get(ENGINE).unwrap().engine();
    let config = ServerConfig {
        workers: 2,
        max_body: 64 * 1024, // small enough to exercise 413 cheaply
        ..ServerConfig::default()
    };
    let server = serve(&config, Arc::new(registry)).unwrap();
    (server, engine)
}

/// A negative (pred = 0) row of the table, for local/recourse queries.
fn negative_row(engine: &lewis_core::Engine) -> Vec<tabular::Value> {
    let pred = engine.estimator().pred_attr();
    for i in 0..engine.table().n_rows() {
        let row = engine.table().row(i).unwrap();
        if row[pred.index()] == 0 {
            return row;
        }
    }
    panic!("no negative row in the table");
}

/// The five paper query kinds over one engine.
fn all_kinds(engine: &lewis_core::Engine) -> Vec<ExplainRequest> {
    let k = Context::of([(AttrId(1), 1)]); // sex = male sub-population
    let row = negative_row(engine);
    vec![
        ExplainRequest::Global,
        ExplainRequest::ContextualGlobal { k: k.clone() },
        ExplainRequest::Contextual { attr: AttrId(2), k },
        ExplainRequest::Local { row: row.clone() },
        ExplainRequest::Recourse {
            row,
            actionable: vec![AttrId(2), AttrId(3)],
            opts: RecourseOptions {
                alpha: 0.5,
                ..RecourseOptions::default()
            },
        },
    ]
}

/// Serialize a response with the wire codec — the codec is f64-lossless
/// and deterministic, so byte equality here **is** bit equality of
/// every score, label and action.
fn wire_bytes(response: &ExplainResponse) -> String {
    wire::response_to_json(response).to_json()
}

#[test]
fn over_the_wire_results_are_bit_identical_to_in_process() {
    let (server, engine) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/v1/engines/{ENGINE}/explain");

    for request in all_kinds(&engine) {
        let body = wire::request_to_json(&request).to_json();
        let (status, answer) = client.post(&path, &body).unwrap();
        let direct = engine.run(&request);
        match direct {
            Ok(direct) => {
                assert_eq!(status, 200, "{request:?} → {answer:?}");
                // byte-for-byte: every f64 crossed the wire losslessly
                assert_eq!(answer.to_json(), wire_bytes(&direct), "{request:?}");
                // and the decoded struct round-trips to the same bytes
                let decoded = wire::response_from_json(&answer).unwrap();
                assert_eq!(wire_bytes(&decoded), wire_bytes(&direct));
            }
            Err(e) => {
                assert_eq!(status, wire::error_status(&e), "{request:?}");
                assert_eq!(answer.to_json(), wire::error_to_json(&e).to_json());
            }
        }
    }

    // a second client sees the same bytes (cache hits are bit-identical)
    let mut second = Client::connect(server.addr()).unwrap();
    let body = wire::request_to_json(&ExplainRequest::Global).to_json();
    let (_, a) = client.post(&path, &body).unwrap();
    let (_, b) = second.post(&path, &body).unwrap();
    assert_eq!(a.to_json(), b.to_json());

    server.shutdown();
}

#[test]
fn mixed_batches_match_run_batch_positionally() {
    let (server, engine) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/v1/engines/{ENGINE}/explain");

    // all five kinds plus repeats, interleaved, in one body
    let mut requests = all_kinds(&engine);
    requests.push(ExplainRequest::Global);
    requests.push(requests[2].clone());
    let body = Json::obj([(
        "batch",
        Json::Arr(requests.iter().map(wire::request_to_json).collect()),
    )])
    .to_json();

    let (status, answer) = client.post(&path, &body).unwrap();
    assert_eq!(status, 200);
    let results = answer.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), requests.len());

    for (wire_result, direct) in results.iter().zip(engine.run_batch(&requests)) {
        match direct {
            Ok(direct) => assert_eq!(wire_result.to_json(), wire_bytes(&direct)),
            Err(e) => {
                assert_eq!(wire_result.to_json(), wire::error_to_json(&e).to_json())
            }
        }
    }
    server.shutdown();
}

#[test]
fn malformed_json_is_a_400_with_location() {
    let (server, _) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/v1/engines/{ENGINE}/explain");

    let (status, body) = client.post(&path, "{not json").unwrap();
    assert_eq!(status, 400);
    let error = body.get("error").unwrap();
    assert_eq!(error.get("code").unwrap().as_str(), Some("bad_json"));

    // well-formed JSON that is not a valid request is also a 400, and
    // the message names the offending path
    let (status, body) = client
        .post(&path, r#"{"kind":"local","row":["x"]}"#)
        .unwrap();
    assert_eq!(status, 400);
    let message = body
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        message.contains("row[0]"),
        "locates the bad field: {message}"
    );

    server.shutdown();
}

#[test]
fn unknown_engine_is_a_404() {
    let (server, _) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, body) = client
        .post("/v1/engines/not_registered/explain", r#"{"kind":"global"}"#)
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unknown_engine")
    );
    server.shutdown();
}

#[test]
fn oversized_bodies_are_a_413() {
    let (server, _) = start();
    let mut client = Client::connect(server.addr()).unwrap();
    let path = format!("/v1/engines/{ENGINE}/explain");

    // 64 KiB limit; announce (and send) more
    let huge = format!(
        r#"{{"kind":"local","row":[{}]}}"#,
        "0,".repeat(50_000) + "0"
    );
    assert!(huge.len() > 64 * 1024);
    let (status, body) = client.post(&path, &huge).unwrap();
    assert_eq!(status, 413);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("body_too_large")
    );

    // the server closed that connection (it never read the body); a
    // fresh connection still works
    let mut fresh = Client::connect(server.addr()).unwrap();
    let (status, _) = fresh.get("/healthz").unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}
