//! The batched scoring path and the parallel explanation fan-out are
//! *pure optimizations*: they must agree exactly with the sequential
//! per-contrast estimator and be deterministic for every thread count.

use lewis::core::{Contrast, Engine, ScoreEstimator};
use lewis::datasets::GermanSynDataset;
use lewis::tabular::{AttrId, Context, Domain, Schema, Table};
use proptest::prelude::*;

/// A small random labelled table: three feature attributes plus a
/// derived binary prediction column.
fn arb_labelled_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((0u32..3, 0u32..4, 0u32..2), 8..120).prop_map(|rows| {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1", "2"]));
        s.push("b", Domain::categorical(["0", "1", "2", "3"]));
        s.push("c", Domain::boolean());
        s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        for (a, b, c) in rows {
            // deterministic pseudo-model so predictions correlate with
            // the features
            let pred = u32::from(a + b + c >= 3);
            t.push_row(&[a, b, c, pred]).unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `scores_batch` must agree *exactly* (bit-for-bit, including
    /// which contrasts error) with a sequential loop of `scores_set`.
    #[test]
    fn batch_agrees_exactly_with_sequential_scores_set(
        t in arb_labelled_table(),
        alpha in 0.0f64..2.0,
        k_attr in 0u32..3,
        k_val in 0u32..2,
        with_ctx in 0u32..2,
    ) {
        let pred = AttrId(3);
        let est = ScoreEstimator::new(&t, None, pred, 1, alpha).unwrap();
        let k = if with_ctx == 1 {
            Context::of([(AttrId(k_attr), k_val)])
        } else {
            Context::empty()
        };
        // every ordered pair of every free attribute, plus a set
        // contrast and a deliberately malformed one
        let mut contrasts = Vec::new();
        let cards = [3u32, 4, 2];
        for attr in 0..3u32 {
            if k.constrains(AttrId(attr)) {
                continue;
            }
            for hi in 0..cards[attr as usize] {
                for lo in 0..cards[attr as usize] {
                    if hi != lo {
                        contrasts.push(Contrast::single(AttrId(attr), hi, lo));
                    }
                }
            }
        }
        if !k.constrains(AttrId(0)) && !k.constrains(AttrId(2)) {
            contrasts.push(Contrast::set(
                &[(AttrId(0), 2), (AttrId(2), 1)],
                &[(AttrId(0), 0), (AttrId(2), 0)],
            ));
        }
        contrasts.push(Contrast::single(AttrId(0), 1, 1)); // hi == lo: must error
        let batched = est.scores_batch(&contrasts, &k);
        prop_assert_eq!(batched.len(), contrasts.len());
        for (c, b) in contrasts.iter().zip(&batched) {
            let s = est.scores_set(&c.hi, &c.lo, &k);
            match (b, &s) {
                (Ok(bs), Ok(ss)) => {
                    // exact: the batched path shares the sequential
                    // path's arithmetic, not just its approximation
                    prop_assert!(bs.necessity == ss.necessity, "NEC {} vs {}", bs.necessity, ss.necessity);
                    prop_assert!(bs.sufficiency == ss.sufficiency, "SUF {} vs {}", bs.sufficiency, ss.sufficiency);
                    prop_assert!(bs.nesuf == ss.nesuf, "NESUF {} vs {}", bs.nesuf, ss.nesuf);
                }
                (Err(be), Err(se)) => {
                    prop_assert_eq!(format!("{be:?}"), format!("{se:?}"));
                }
                _ => {
                    return Err(TestCaseError::Fail(format!(
                        "batch/sequential disagree on outcome: {b:?} vs {s:?}"
                    )));
                }
            }
        }
    }
}

/// Build the standard German-syn audit pipeline used across the
/// integration tests.
fn german_pipeline(n: usize, seed: u64) -> (Table, AttrId, Vec<AttrId>, lewis::causal::Scm) {
    use lewis::core::blackbox::label_table;
    use lewis::core::ClassifierBox;
    use lewis::ml::encode::{Encoding, TableEncoder};
    use lewis::ml::forest::ForestParams;
    use lewis::ml::RandomForestClassifier;

    let dataset = GermanSynDataset::standard().generate(n, seed);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 15,
            ..ForestParams::default()
        },
        seed,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    (table, pred, features, scm)
}

/// The parallel global/local fan-out must produce identical
/// explanations whatever the thread count.
#[test]
fn parallel_explanations_deterministic_across_thread_counts() {
    let (table, pred, features, scm) = german_pipeline(3_000, 7);
    let lewis = Engine::builder(table.clone())
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .alpha(0.25)
        .build()
        .unwrap();
    let some_row = table.row(17).unwrap();
    let mut globals = Vec::new();
    let mut locals = Vec::new();
    for threads in [1usize, 2, 4, 16] {
        rayon::set_num_threads_for_test(threads);
        globals.push(lewis.global().unwrap());
        locals.push(lewis.local(&some_row).unwrap());
    }
    rayon::set_num_threads_for_test(0);
    for g in &globals[1..] {
        assert_eq!(
            &globals[0], g,
            "global explanation varies with thread count"
        );
    }
    for l in &locals[1..] {
        assert_eq!(&locals[0], l, "local explanation varies with thread count");
    }
    assert!(!globals[0].attributes.is_empty());
}

/// On the real pipeline, batching every ordered pair of an attribute
/// agrees with the per-pair sequential calls.
#[test]
fn batch_matches_sequential_on_real_pipeline() {
    let (table, pred, _features, scm) = german_pipeline(3_000, 11);
    let est = ScoreEstimator::new(&table, Some(scm.graph()), pred, 1, 0.25).unwrap();
    for attr in [
        GermanSynDataset::STATUS,
        GermanSynDataset::SAVING,
        GermanSynDataset::HOUSING,
    ] {
        let card = table.schema().cardinality(attr).unwrap() as u32;
        let mut contrasts = Vec::new();
        for hi in 0..card {
            for lo in 0..card {
                if hi != lo {
                    contrasts.push(Contrast::single(attr, hi, lo));
                }
            }
        }
        let batched = est.scores_batch(&contrasts, &Context::empty());
        for (c, b) in contrasts.iter().zip(batched) {
            let s = est.scores_set(&c.hi, &c.lo, &Context::empty());
            match (b, s) {
                (Ok(bs), Ok(ss)) => assert_eq!(bs, ss, "{c:?}"),
                (Err(be), Err(se)) => assert_eq!(format!("{be:?}"), format!("{se:?}")),
                (b, s) => panic!("outcome mismatch for {c:?}: {b:?} vs {s:?}"),
            }
        }
    }
}
