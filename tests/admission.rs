//! Admission control over real sockets: typed sheds, metrics counters,
//! and per-engine isolation (one overloaded engine must not starve its
//! neighbours).

use lewis_serve::wire::Json;
use lewis_serve::{serve, AdmissionConfig, Client, EngineRegistry, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 300;

/// One server, two engines: `capped` under the given admission config,
/// `free` unlimited.
fn start(capped: AdmissionConfig) -> lewis_serve::Server {
    let mut registry = EngineRegistry::new();
    registry
        .load_builtin_as("capped", "german_syn", ROWS, 3)
        .unwrap();
    registry
        .load_builtin_as("free", "german_syn", ROWS, 4)
        .unwrap();
    registry.set_admission("capped", capped).unwrap();
    serve(
        &ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .unwrap()
}

fn shed_code(body: &Json) -> Option<&str> {
    body.get("error")?.get("code")?.as_str()
}

#[test]
fn rate_cap_sheds_typed_429s_with_retry_hints() {
    let server = start(AdmissionConfig {
        rate: Some(50),
        ..AdmissionConfig::unlimited()
    });
    let mut client = Client::connect(server.addr()).unwrap();

    // hammer far past 50 q/s on one connection: the burst drains, then
    // the bucket sheds
    let (mut ok, mut shed) = (0u32, 0u32);
    for _ in 0..200 {
        let (status, body) = client
            .post("/v1/engines/capped/explain", r#"{"kind":"global"}"#)
            .unwrap();
        match status {
            200 => ok += 1,
            429 => {
                assert_eq!(shed_code(&body), Some("overloaded"), "{body:?}");
                let retry = body
                    .get("retry_after_ms")
                    .and_then(Json::as_f64)
                    .expect("shed bodies carry retry_after_ms");
                assert!(retry >= 1.0, "retry hint is at least 1ms: {retry}");
                assert!(
                    client.response_header("retry-after").is_some(),
                    "the standard header rides along"
                );
                shed += 1;
            }
            other => panic!("unexpected status {other}: {body:?}"),
        }
    }
    assert!(ok > 0, "the burst admits something");
    assert!(shed > 100, "an over-rate hammer mostly sheds: {shed}");

    // the counters surface per engine in /metrics
    let (_, metrics) = client.get("/metrics").unwrap();
    let capped = metrics.get("engines").unwrap().get("capped").unwrap();
    let admission = capped.get("admission").unwrap();
    assert_eq!(
        admission.get("admitted").and_then(Json::as_f64),
        Some(f64::from(ok)),
        "{admission:?}"
    );
    assert_eq!(
        admission.get("shed_rate").and_then(Json::as_f64),
        Some(f64::from(shed)),
        "{admission:?}"
    );
    let free = metrics.get("engines").unwrap().get("free").unwrap();
    assert_eq!(
        free.get("admission")
            .unwrap()
            .get("shed_total")
            .and_then(Json::as_f64),
        Some(0.0),
        "the unlimited engine shed nothing"
    );
    server.shutdown();
}

#[test]
fn queue_bound_sheds_queue_full_and_the_neighbour_engine_stays_fast() {
    // one slot, no queue: any concurrent second request sheds at once
    let server = start(AdmissionConfig {
        max_in_flight: 1,
        queue_depth: 0,
        ..AdmissionConfig::unlimited()
    });
    let addr = server.addr();

    // four hammer threads on the capped engine: with one slot and no
    // queue, overlapping requests shed `queue_full`
    let stop_at = Instant::now() + Duration::from_millis(800);
    let mut hammers = Vec::new();
    for _ in 0..4 {
        hammers.push(std::thread::spawn(move || -> (u64, u64, u64) {
            let mut client = Client::connect(addr).unwrap();
            let (mut ok, mut shed, mut bad) = (0u64, 0u64, 0u64);
            while Instant::now() < stop_at {
                let (status, body) = client
                    .post("/v1/engines/capped/explain", r#"{"kind":"global"}"#)
                    .unwrap();
                match status {
                    200 => ok += 1,
                    429 if shed_code(&body) == Some("queue_full") => shed += 1,
                    _ => bad += 1,
                }
            }
            (ok, shed, bad)
        }));
    }

    // meanwhile the unlimited neighbour must keep answering quickly:
    // sheds on `capped` are rejected at the gate, so `free` sees no
    // cross-engine starvation
    let mut free_latencies = Vec::new();
    let mut client = Client::connect(addr).unwrap();
    while Instant::now() < stop_at {
        let sent = Instant::now();
        let (status, body) = client
            .post("/v1/engines/free/explain", r#"{"kind":"global"}"#)
            .unwrap();
        assert_eq!(status, 200, "the free engine never degrades: {body:?}");
        free_latencies.push(sent.elapsed());
    }

    let (mut total_ok, mut total_shed) = (0u64, 0u64);
    for h in hammers {
        let (ok, shed, bad) = h.join().unwrap();
        assert_eq!(bad, 0, "only 200s and typed sheds leave the gate");
        total_ok += ok;
        total_shed += shed;
    }
    assert!(total_ok > 0, "the slot admits a stream");
    assert!(
        total_shed > 0,
        "4 hammers over 1 slot with no queue must shed"
    );

    free_latencies.sort();
    let p99 = free_latencies[(free_latencies.len() * 99 / 100).min(free_latencies.len() - 1)];
    assert!(
        p99 < Duration::from_millis(100),
        "free-engine p99 {p99:?} ballooned while the neighbour was overloaded"
    );

    let (_, metrics) = client.get("/metrics").unwrap();
    let admission = metrics
        .get("engines")
        .unwrap()
        .get("capped")
        .unwrap()
        .get("admission")
        .unwrap();
    assert_eq!(
        admission.get("shed_queue_full").and_then(Json::as_f64),
        Some(total_shed as f64),
        "{admission:?}"
    );
    server.shutdown();
}

#[test]
fn admission_configs_reject_nonsense_and_queue_admits_when_slots_free() {
    // parse errors are typed, not panics
    assert!(AdmissionConfig::parse("rate:abc").is_err());
    assert!(AdmissionConfig::parse("inflight:0").is_err());
    assert!(AdmissionConfig::parse("warp:9").is_err());
    let cfg = AdmissionConfig::parse("rate:1200,inflight:64,queue:16,deadline_ms:50").unwrap();
    assert_eq!(cfg.rate, Some(1200));
    assert_eq!(cfg.max_in_flight, 64);
    assert_eq!(cfg.queue_depth, 16);
    assert_eq!(cfg.deadline, Duration::from_millis(50));

    // a generous deadline with a queue: requests wait for the slot
    // instead of shedding, so a serial client is never refused
    let server = start(AdmissionConfig {
        max_in_flight: 1,
        queue_depth: 4,
        deadline: Duration::from_secs(5),
        ..AdmissionConfig::unlimited()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..20 {
        let (status, body) = client
            .post("/v1/engines/capped/explain", r#"{"kind":"global"}"#)
            .unwrap();
        assert_eq!(status, 200, "{body:?}");
    }
    server.shutdown();
}
