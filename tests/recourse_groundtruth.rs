//! Recourse validated against the generating causal model: recommended
//! actions must actually flip the decision with the promised
//! probability (the §5.5 recourse analysis as a test).

use lewis::core::blackbox::label_table;
use lewis::core::groundtruth::GroundTruth;
use lewis::core::recourse::RecourseEngine;
use lewis::core::{ClassifierBox, CostModel, RecourseOptions, ScoreEstimator};
use lewis::datasets::GermanSynDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::tabular::Context;

#[test]
fn recourse_achieves_ground_truth_sufficiency() {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(10_000, 31);
    let scm = dataset.scm;
    let actionable = dataset.actionable.clone();
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        },
        31,
    )
    .unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();

    let est = ScoreEstimator::new(&table, Some(scm.graph()), pred, 1, 0.25).unwrap();
    let engine = RecourseEngine::new(&est, &actionable).unwrap();
    let gt = GroundTruth::exact(&scm, &bb, 1).unwrap();
    let alpha = 0.9;
    let opts = RecourseOptions {
        alpha,
        cost: CostModel::Unit,
        ..RecourseOptions::default()
    };

    let preds = table.column(pred).unwrap().to_vec();
    let mut produced = 0usize;
    let mut achieved = 0usize;
    for (idx, &p) in preds.iter().enumerate() {
        if p != 0 || produced >= 40 {
            continue;
        }
        let row = table.row(idx).unwrap();
        let Ok(r) = engine.recourse(&row, &opts) else {
            continue;
        };
        if r.actions.is_empty() {
            continue;
        }
        produced += 1;
        let mut evidence = Context::empty();
        for &a in &features {
            evidence.set(a, row[a.index()]);
        }
        let actions: Vec<_> = r.actions.iter().map(|a| (a.attr, a.to)).collect();
        if let Ok(s) = gt.intervention_success(&actions, &evidence) {
            if s >= alpha - 0.05 {
                achieved += 1;
            }
        }
    }
    assert!(produced >= 20, "too few recourses produced: {produced}");
    let rate = achieved as f64 / produced as f64;
    assert!(
        rate >= 0.85,
        "only {achieved}/{produced} recourses reach ground-truth sufficiency"
    );
}

#[test]
fn recourse_respects_actionability_boundaries() {
    // actions must only ever touch the declared actionable set
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(6_000, 32);
    let scm = dataset.scm;
    let features = dataset.features.clone();
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&b| u32::from(b >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &features, Encoding::Ordinal).unwrap();
    let xs = encoder.encode_table(&table);
    let forest =
        RandomForestClassifier::fit(&xs, &labels, 2, &ForestParams::default(), 32).unwrap();
    let bb = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &bb, "pred").unwrap();
    let est = ScoreEstimator::new(&table, Some(scm.graph()), pred, 1, 0.25).unwrap();
    // only saving is actionable
    let engine = RecourseEngine::new(&est, &[GermanSynDataset::SAVING]).unwrap();
    let opts = RecourseOptions {
        alpha: 0.5,
        ..RecourseOptions::default()
    };
    let preds = table.column(pred).unwrap().to_vec();
    let mut any = false;
    for (idx, &p) in preds.iter().enumerate().take(2000) {
        if p != 0 {
            continue;
        }
        let row = table.row(idx).unwrap();
        if let Ok(r) = engine.recourse(&row, &opts) {
            for a in &r.actions {
                assert_eq!(
                    a.attr,
                    GermanSynDataset::SAVING,
                    "touched non-actionable attr"
                );
            }
            if !r.actions.is_empty() {
                any = true;
                break;
            }
        }
    }
    assert!(any, "no recourse produced at a permissive threshold");
}
