//! Acceptance: a restored engine is **observably identical** to its
//! donor. All five query kinds — global, contextual, local, recourse,
//! and batch — must return byte-identical `ExplainResponse`s after a
//! snapshot → pack-bytes → restore round-trip, across seeds.
//!
//! "Byte-identical" is checked two ways: the deterministic wire codec
//! (`lewis_serve::wire`, which serializes every finite `f64` with
//! shortest-round-trip precision) must produce equal strings, and spot
//! checks compare raw `f64` bit patterns.

use datasets::GermanSynDataset;
use lewis_core::blackbox::label_table;
use lewis_core::{Engine, ExplainRequest, ExplainResponse, LewisError, RecourseOptions};
use lewis_serve::warm::{warm_engine, warm_requests};
use lewis_serve::wire;
use lewis_store::{Pack, PackMeta};
use proptest::prelude::*;
use tabular::Context;

/// A german_syn engine labelled with the paper's oracle rule.
fn engine(rows: usize, seed: u64) -> Engine {
    let dataset = GermanSynDataset::standard().generate(rows, seed);
    let datasets::Dataset {
        table: mut t,
        scm,
        outcome,
        features,
        ..
    } = dataset;
    let oracle = move |row: &[tabular::Value]| u32::from(row[outcome.index()] >= 5);
    let pred = label_table(&mut t, &oracle, "pred").unwrap();
    Engine::builder(t)
        .graph(scm.graph())
        .prediction(pred, 1)
        .features(&features)
        .build()
        .unwrap()
}

/// Render one engine answer into comparable bytes; errors render too,
/// because a restored engine must reproduce even the donor's failures.
fn response_bytes(result: &Result<ExplainResponse, LewisError>) -> String {
    match result {
        Ok(response) => wire::response_to_json(response).to_json(),
        Err(e) => format!("err:{e}"),
    }
}

/// The five query kinds, aimed at real table rows so most of them have
/// support (plus one context that usually does not, to pin error
/// equality as well).
fn probe_requests(engine: &Engine, seed: u64) -> Vec<ExplainRequest> {
    let table = engine.table();
    let features = engine.features();
    let a = features[seed as usize % features.len()];
    let b = features[(seed as usize + 1) % features.len()];
    let row0 = table.row(seed as usize % table.n_rows()).unwrap();
    let row1 = table.row((seed as usize * 7 + 3) % table.n_rows()).unwrap();
    let mut requests = vec![
        ExplainRequest::Global,
        ExplainRequest::ContextualGlobal {
            k: Context::of([(a, row0[a.index()])]),
        },
        ExplainRequest::Contextual {
            attr: b,
            k: Context::of([(a, row1[a.index()])]),
        },
        ExplainRequest::Local { row: row0.clone() },
        ExplainRequest::Recourse {
            row: row1.clone(),
            actionable: vec![a, b],
            opts: RecourseOptions::default(),
        },
    ];
    // a deliberately tight context, likely unsupported: restored
    // engines must reproduce errors bit-for-bit too
    requests.push(ExplainRequest::Contextual {
        attr: b,
        k: Context::of(
            features
                .iter()
                .filter(|f| **f != b)
                .map(|&f| (f, row0[f.index()])),
        ),
    });
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn restored_engines_answer_all_query_kinds_byte_identically(seed in 0u64..1000) {
        let donor = engine(1500, seed);
        // realistic warm-up so the snapshot carries a non-trivial cache
        warm_engine(&donor, 48, seed).unwrap();

        let bytes = Pack::from_engine(&donor, PackMeta::default()).to_bytes();
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();

        // single-shot: every kind, byte for byte
        let requests = probe_requests(&donor, seed);
        for (i, request) in requests.iter().enumerate() {
            let d = donor.run(request);
            let r = restored.run(request);
            prop_assert_eq!(
                response_bytes(&d),
                response_bytes(&r),
                "request #{} diverged (seed {})",
                i,
                seed
            );
        }

        // batch: positionally aligned, byte for byte — including the
        // recourse grouping path
        let d_batch = donor.run_batch(&requests);
        let r_batch = restored.run_batch(&requests);
        prop_assert_eq!(d_batch.len(), r_batch.len());
        for (i, (d, r)) in d_batch.iter().zip(&r_batch).enumerate() {
            prop_assert_eq!(
                response_bytes(d),
                response_bytes(r),
                "batch slot #{} diverged (seed {})",
                i,
                seed
            );
        }

        // a fresh warm stream served by both answers identically too
        // (exercises cache hits *and* post-restore cold misses)
        for request in warm_requests(&donor, 24, seed ^ 0xABCD) {
            prop_assert_eq!(
                response_bytes(&donor.run(&request)),
                response_bytes(&restored.run(&request))
            );
        }
    }
}

#[test]
fn restored_scores_match_to_the_bit() {
    let donor = engine(2000, 11);
    warm_engine(&donor, 32, 11).unwrap();
    let bytes = Pack::from_engine(&donor, PackMeta::default()).to_bytes();
    let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
    let d = donor.global().unwrap();
    let r = restored.global().unwrap();
    assert_eq!(d.attributes.len(), r.attributes.len());
    for (x, y) in d.attributes.iter().zip(&r.attributes) {
        assert_eq!(x.attr, y.attr);
        assert_eq!(x.scores.necessity.to_bits(), y.scores.necessity.to_bits());
        assert_eq!(
            x.scores.sufficiency.to_bits(),
            y.scores.sufficiency.to_bits()
        );
        assert_eq!(x.scores.nesuf.to_bits(), y.scores.nesuf.to_bits());
        assert_eq!(x.best_pair, y.best_pair);
    }
    // the restored engine served that global from its warm cache
    assert!(restored.cache_stats().hits > 0);
}

#[test]
fn restored_engine_value_orders_are_carried_not_recomputed() {
    // orders are part of the snapshot: even if the donor's orders were
    // perturbed (legal permutations), restore must carry them verbatim
    let donor = engine(800, 3);
    let mut snapshot = donor.snapshot();
    let a = donor.features()[0];
    let order = snapshot.orders[a.index()].as_mut().unwrap();
    order.reverse();
    let expected = order.clone();
    let restored = Engine::restore(snapshot).unwrap();
    assert_eq!(
        restored.value_order(a).unwrap(),
        expected.as_slice(),
        "restore must trust the snapshot's orders"
    );
}

#[test]
fn pack_files_round_trip_through_disk() {
    let donor = engine(600, 5);
    warm_engine(&donor, 16, 5).unwrap();
    let dir = std::env::temp_dir().join(format!("lewis-pack-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.lewis");
    Pack::from_engine(
        &donor,
        PackMeta {
            source: "test".into(),
            graph: "scm".into(),
        },
    )
    .write_file(&path)
    .unwrap();
    let (restored, meta) = lewis_store::load_engine(&path).unwrap();
    assert_eq!(meta.source, "test");
    assert_eq!(
        response_bytes(&donor.run(&ExplainRequest::Global)),
        response_bytes(&restored.run(&ExplainRequest::Global))
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
