//! Chaos & soak: hot pack swaps under live mixed load.
//!
//! One server, two `.lewis` pack generations of the same schema
//! (different seeds → different data). Reader threads hammer the engine
//! with the full query mix over real sockets while a background admin
//! thread hot-swaps the engine between the two generations every few
//! milliseconds. The storm must be invisible to clients:
//!
//! * **zero non-shed errors** — every response is a 200, an expected
//!   422 (`unsupported` / `no_recourse`), or a typed shed; nothing else;
//! * **generations are live when answered** — every response's
//!   `x-engine-generation` header names a generation that had been
//!   created by then, and per keep-alive connection the generation
//!   never goes backwards (serial requests can't time-travel to an
//!   unloaded engine);
//! * **byte determinism after the dust settles** — post-storm answers
//!   equal a cold build restored from the final pack, byte for byte.

use lewis_serve::wire::Json;
use lewis_serve::{serve, Client, EngineRegistry, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ENGINE: &str = "engine";
const ROWS: usize = 400;
const STORM: Duration = Duration::from_millis(1500);
const SWAP_EVERY: Duration = Duration::from_millis(5);

/// The mixed bodies the readers cycle through (german_syn shape:
/// 7 attributes, features 0..=5 minus the prediction).
const BODIES: [&str; 5] = [
    r#"{"kind":"global"}"#,
    r#"{"kind":"contextual","attr":2,"context":[[1,0]]}"#,
    r#"{"kind":"contextual_global","context":[[1,1]]}"#,
    r#"{"kind":"local","row":[1,1,2,1,1,5,1]}"#,
    r#"{"batch":[{"kind":"global"},{"kind":"local","row":[0,1,1,1,0,3,0]}]}"#,
];

fn write_pack(dir: &std::path::Path, seed: u64) -> String {
    let mut registry = EngineRegistry::new();
    registry
        .load_builtin_as(ENGINE, "german_syn", ROWS, seed)
        .unwrap();
    let path = dir.join(format!("gen_{seed}.lewis"));
    let path = path.to_str().unwrap().to_string();
    registry.save_pack(ENGINE, &path).unwrap();
    path
}

fn is_shed(body: &Json) -> bool {
    matches!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded") | Some("queue_full") | Some("deadline_exceeded")
    )
}

fn is_expected_422(body: &Json) -> bool {
    matches!(
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unsupported") | Some("no_recourse")
    )
}

#[test]
fn hot_swap_storm_is_invisible_to_clients() {
    let dir = std::env::temp_dir().join(format!("lewis-fleet-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pack_a = write_pack(&dir, 31);
    let pack_b = write_pack(&dir, 32);

    let mut registry = EngineRegistry::new();
    registry.load_pack(ENGINE, &pack_a).unwrap();
    let server = serve(
        &ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .unwrap();
    let addr = server.addr();

    // highest generation created so far, updated by the swapper; readers
    // assert every response's generation is <= this (never from the
    // future) and non-decreasing per connection (never resurrected)
    let latest_generation = Arc::new(AtomicU64::new(1));
    let stop = Arc::new(AtomicBool::new(false));

    let swapper = {
        let latest = Arc::clone(&latest_generation);
        let stop = Arc::clone(&stop);
        let (pack_a, pack_b) = (pack_a.clone(), pack_b.clone());
        std::thread::spawn(move || -> (u64, String) {
            let mut admin = Client::connect(addr).unwrap();
            let mut swaps = 0u64;
            let mut flip = false;
            let mut current = pack_a.clone();
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(SWAP_EVERY);
                let target = if flip { &pack_a } else { &pack_b };
                flip = !flip;
                // the server bumps the generation *before* the admin
                // response returns, so a reader can legitimately see the
                // new generation first — announce it ahead of the swap.
                // Only this thread performs lifecycle ops, so the next
                // generation is exactly latest+1.
                let announced = latest.fetch_add(1, Ordering::SeqCst) + 1;
                let body = format!("{{\"path\": {}}}", Json::str(target.as_str()).to_json());
                let (status, answer) = admin
                    .post(&format!("/admin/engines/{ENGINE}/swap"), &body)
                    .unwrap();
                assert_eq!(status, 200, "swap #{swaps} failed: {answer:?}");
                let generation = answer.get("generation").and_then(Json::as_f64).unwrap() as u64;
                assert_eq!(generation, announced, "generations advance one per swap");
                current = target.clone();
                swaps += 1;
            }
            (swaps, current)
        })
    };

    let mut readers = Vec::new();
    for r in 0..3usize {
        let latest = Arc::clone(&latest_generation);
        readers.push(std::thread::spawn(move || -> (u64, u64) {
            let mut client = Client::connect(addr).unwrap();
            let deadline = Instant::now() + STORM;
            let (mut ok, mut bad) = (0u64, 0u64);
            let mut last_gen = 0u64;
            let mut i = r; // offset so the threads interleave kinds
            while Instant::now() < deadline {
                let body = BODIES[i % BODIES.len()];
                i += 1;
                let (status, answer) = client
                    .post(&format!("/v1/engines/{ENGINE}/explain"), body)
                    .unwrap();
                match status {
                    200 => ok += 1,
                    422 if is_expected_422(&answer) => ok += 1,
                    429 if is_shed(&answer) => {}
                    _ => {
                        bad += 1;
                        eprintln!("reader {r}: {status} {answer:?}");
                    }
                }
                if status == 200 {
                    let generation: u64 = client
                        .response_header("x-engine-generation")
                        .expect("every explain answer carries its generation")
                        .parse()
                        .expect("generation header parses");
                    assert!(
                        generation >= 1 && generation <= latest.load(Ordering::SeqCst),
                        "generation {generation} was never live"
                    );
                    assert!(
                        generation >= last_gen,
                        "generation went backwards: {last_gen} then {generation}"
                    );
                    last_gen = generation;
                }
            }
            (ok, bad)
        }));
    }

    let mut total_ok = 0u64;
    for reader in readers {
        let (ok, bad) = reader.join().unwrap();
        total_ok += ok;
        assert_eq!(bad, 0, "non-shed errors leaked through the swap storm");
    }
    stop.store(true, Ordering::SeqCst);
    let (swaps, final_pack) = swapper.join().unwrap();
    assert!(swaps >= 20, "the storm swapped only {swaps} times");
    assert!(total_ok >= 100, "readers answered only {total_ok} queries");

    // the dust settles: the served engine now answers byte-identically
    // to a cold registry restored from whichever pack won the last swap
    let mut cold = EngineRegistry::new();
    cold.load_pack(ENGINE, &final_pack).unwrap();
    let cold_server = serve(&ServerConfig::default(), Arc::new(cold)).unwrap();
    let mut hot = Client::connect(addr).unwrap();
    let mut fresh = Client::connect(cold_server.addr()).unwrap();
    for body in BODIES {
        let path = format!("/v1/engines/{ENGINE}/explain");
        let (hot_status, hot_answer) = hot.post(&path, body).unwrap();
        let (cold_status, cold_answer) = fresh.post(&path, body).unwrap();
        assert_eq!(hot_status, cold_status, "status parity for {body}");
        assert_eq!(
            hot_answer.to_json(),
            cold_answer.to_json(),
            "byte parity with the cold build for {body}"
        );
    }

    cold_server.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
