//! Auditing a scoring algorithm for disparate causal impact — the
//! paper's COMPAS analysis (§5.3, Figs. 4c/4d) as a reusable recipe.
//!
//! LEWIS's scores support counterfactual-fairness reasoning (§6): an
//! algorithm is counterfactually fair w.r.t. a protected attribute iff
//! both its sufficiency AND necessity scores are zero. Here the COMPAS
//! software score fails that test, and its contextual scores reveal that
//! criminal-history increments are more damaging for Black defendants.
//!
//! ```sh
//! cargo run --release --example fairness_audit
//! ```

use lewis::datasets::CompasDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::prelude::*;

fn main() {
    let dataset = CompasDataset::generate(8_000, 5);
    let mut table = dataset.table;
    let labels: Vec<u32> = table.column(CompasDataset::SCORE).unwrap().to_vec();

    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal)
        .expect("encoder builds");
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 50,
            ..ForestParams::default()
        },
        5,
    )
    .expect("forest trains");
    let black_box = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &black_box, "pred").expect("labelling");

    let engine = Engine::builder(table)
        .graph(dataset.scm.graph())
        .prediction(pred, 1)
        .features(&dataset.features)
        .alpha(1.0)
        .build()
        .expect("engine builds");

    // 1. Counterfactual-fairness check on the protected attribute.
    let race = engine
        .attribute_scores(CompasDataset::RACE, &Context::empty())
        .expect("race scores");
    println!("counterfactual fairness check (race):");
    println!(
        "  NEC = {:.3}, SUF = {:.3}  ->  {}",
        race.scores.necessity,
        race.scores.sufficiency,
        if race.scores.necessity < 0.02 && race.scores.sufficiency < 0.02 {
            "counterfactually FAIR"
        } else {
            "NOT counterfactually fair"
        }
    );

    // 2. Contextual disparity: is an extra prior more damaging for one
    //    group? ("high score" is the *bad* outcome here, so high
    //    sufficiency of priors = easily pushed into high risk.)
    println!("\nsufficiency of prior count by race:");
    for (code, label) in [(0u32, "white"), (1u32, "black")] {
        let ctx = Context::of([(CompasDataset::RACE, code)]);
        let c = engine
            .contextual(CompasDataset::PRIORS, &ctx)
            .expect("contextual");
        println!(
            "  race = {label:<6}  SUF(priors) = {:.3}",
            c.scores.sufficiency
        );
    }
    println!("\nsufficiency of juvenile felony count by race:");
    for (code, label) in [(0u32, "white"), (1u32, "black")] {
        let ctx = Context::of([(CompasDataset::RACE, code)]);
        let c = engine
            .contextual(CompasDataset::JUV_FEL, &ctx)
            .expect("contextual");
        println!(
            "  race = {label:<6}  SUF(juv_fel) = {:.3}",
            c.scores.sufficiency
        );
    }
}
