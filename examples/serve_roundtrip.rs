//! Serving in one file: start an explanation server in-process, speak
//! its wire protocol over a real socket, shut it down gracefully.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip
//! ```
//!
//! For the standalone deployment, see the `lewis-serve` and `loadgen`
//! binaries (`cargo run --release -p lewis-serve --bin lewis-serve`).

use lewis_serve::wire::{self, Json};
use lewis_serve::{serve, Client, EngineRegistry, ServerConfig};
use std::sync::Arc;
use tabular::{AttrId, Context};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One process can serve many engines; here, one built-in dataset.
    let mut registry = EngineRegistry::new();
    registry.load_builtin("german_syn", 2000, 42)?;
    let server = serve(
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )?;
    println!("serving on http://{}\n", server.addr());

    let mut client = Client::connect(server.addr())?;

    // What is registered? (names, schemas, feature ids)
    let (_, engines) = client.get("/v1/engines")?;
    let engine = &engines.get("engines").unwrap().as_arr().unwrap()[0];
    println!(
        "engine {:?}: {} rows, features {}",
        engine.get("name").unwrap().as_str().unwrap(),
        engine.get("n_rows").unwrap().as_f64().unwrap(),
        engine.get("features").unwrap().to_json(),
    );

    // A global ranking, requested through the typed codec.
    let request = wire::request_to_json(&lewis_core::ExplainRequest::Global).to_json();
    let (status, answer) = client.post("/v1/engines/german_syn/explain", &request)?;
    println!("\nGET global ranking → {status}");
    for attr in answer.get("attributes").unwrap().as_arr().unwrap() {
        println!(
            "  {:<8} nesuf {:.3}",
            attr.get("name").unwrap().as_str().unwrap(),
            attr.get("scores")
                .unwrap()
                .get("nesuf")
                .unwrap()
                .as_f64()
                .unwrap(),
        );
    }

    // A batched body: two contextual probes answered positionally,
    // sharing counting passes server-side via Engine::run_batch.
    let probe = |sex: u32| {
        wire::request_to_json(&lewis_core::ExplainRequest::Contextual {
            attr: AttrId(2), // status
            k: Context::of([(AttrId(1), sex)]),
        })
    };
    let body = Json::obj([("batch", Json::Arr(vec![probe(0), probe(1)]))]).to_json();
    let (_, answer) = client.post("/v1/engines/german_syn/explain", &body)?;
    println!("\nstatus sufficiency by sex:");
    for (sex, result) in answer
        .get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .enumerate()
    {
        println!(
            "  sex={sex}: {:.3}",
            result
                .get("scores")
                .unwrap()
                .get("sufficiency")
                .unwrap()
                .as_f64()
                .unwrap(),
        );
    }

    // Observability, then a graceful stop.
    let (_, metrics) = client.get("/metrics")?;
    let cache = metrics
        .get("engines")
        .unwrap()
        .get("german_syn")
        .unwrap()
        .get("counting_cache")
        .unwrap();
    println!(
        "\ncounting-cache hit rate so far: {:.1}%",
        cache.get("hit_rate").unwrap().as_f64().unwrap() * 100.0
    );
    client.post("/admin/shutdown", "")?;
    server.join();
    println!("server stopped cleanly");
    Ok(())
}
