//! Working with imperfect causal knowledge: validate a hypothesized
//! diagram against data, or discover one from scratch with the PC
//! algorithm — the §6 workflow for users without a trusted graph.
//!
//! ```sh
//! cargo run --release --example graph_tools
//! ```

use lewis::causal::{pc_algorithm, validate_graph, Dag, PcOptions};
use lewis::datasets::GermanSynDataset;

fn main() {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(20_000, 21);
    let table = &dataset.table;
    let names: Vec<&str> = (0..table.schema().len())
        .map(|i| table.schema().name(lewis::tabular::AttrId(i as u32)))
        .collect();

    // 1. Validate the true graph: every implied conditional independence
    //    should survive a chi-square test.
    let report = validate_graph(table, dataset.scm.graph(), 50).expect("validation runs");
    println!(
        "true graph: {} implications tested, {} rejected (consistency {:.1}%)",
        report.tests.len(),
        report.n_rejected,
        report.consistency() * 100.0
    );

    // 2. Validate a *wrong* graph (age's edges deleted): the data
    //    contradicts it.
    let mut wrong = Dag::new(table.schema().len());
    for (from, to) in dataset.scm.graph().edges() {
        if from != GermanSynDataset::AGE.index() {
            wrong.add_edge(from, to).unwrap();
        }
    }
    let bad_report = validate_graph(table, &wrong, 50).expect("validation runs");
    println!(
        "graph without age edges: {} implications tested, {} rejected",
        bad_report.tests.len(),
        bad_report.n_rejected
    );
    for t in bad_report.tests.iter().filter(|t| t.rejected).take(3) {
        println!(
            "  rejected: {} ⫫ {} | {:?}  (χ² = {:.1}, dof {})",
            names[t.x.index()],
            names[t.y.index()],
            t.z.iter().map(|a| names[a.index()]).collect::<Vec<_>>(),
            t.chi_square,
            t.dof
        );
    }

    // 3. Discover the structure from data alone with the PC algorithm.
    let cpdag =
        pc_algorithm(table, table.schema().len(), &PcOptions::default()).expect("discovery runs");
    println!("\nPC discovery:");
    for (x, y) in cpdag.directed_edges() {
        println!("  {} -> {}", names[x], names[y]);
    }
    for (x, y) in cpdag.undirected_edges() {
        println!(
            "  {} -- {}  (direction not identifiable)",
            names[x], names[y]
        );
    }
}
