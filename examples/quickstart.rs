//! Quickstart: explain a black-box loan-approval model in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline: generate data → train a model → label the data with its
//! predictions → ask LEWIS for necessity/sufficiency explanations.

use lewis::datasets::GermanSynDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::prelude::*;

fn main() {
    // 1. Data: a synthetic credit-scoring world with known causal graph.
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(5_000, 7);
    let mut table = dataset.table;

    // 2. A binary target: score >= 0.5 is a good credit risk.
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&bin| u32::from(bin >= 5))
        .collect();

    // 3. Train a black box (any `ml::Classifier` works).
    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal)
        .expect("encoder builds");
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 40,
            ..ForestParams::default()
        },
        7,
    )
    .expect("forest trains");
    let black_box = ClassifierBox::new(forest, encoder);

    // 4. Label the table with the model's decisions; LEWIS explains the
    //    algorithm, not the world.
    let pred = label_table(&mut table, &black_box, "pred").expect("labelling succeeds");

    // 5. Explain: build the owned engine once, then query it. The
    //    engine is Send + Sync — wrap it in an Arc to serve concurrent
    //    queries — and reuses counting passes across queries.
    let engine = Engine::builder(table)
        .graph(dataset.scm.graph())
        .prediction(pred, 1)
        .features(&dataset.features)
        .alpha(1.0)
        .build()
        .expect("engine builds");
    let global = engine
        .run(&ExplainRequest::Global)
        .expect("global explanation")
        .into_global()
        .expect("global request yields a global response");

    println!("Global explanation (who drives the model's approvals?)\n");
    println!(
        "{:<10}  {:>7}  {:>7}  {:>7}",
        "attribute", "Nec", "Suf", "NeSuf"
    );
    for attr in &global.attributes {
        println!(
            "{:<10}  {:>7.3}  {:>7.3}  {:>7.3}",
            attr.name, attr.scores.necessity, attr.scores.sufficiency, attr.scores.nesuf
        );
    }
    println!(
        "\nNote: age and sex matter even though the model never sees a\n\
         direct effect — LEWIS credits their *indirect* influence through\n\
         status and savings, which purely associational methods miss."
    );
}
