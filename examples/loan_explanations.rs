//! The Figure-1 scenario end to end: local explanations for a rejected
//! and an approved applicant, plus a contextual audit across age groups
//! — on the 20-attribute German credit world.
//!
//! ```sh
//! cargo run --release --example loan_explanations
//! ```

use lewis::datasets::GermanDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::prelude::*;

fn main() {
    let dataset = GermanDataset::generate(4_000, 11);
    let mut table = dataset.table;
    let labels: Vec<u32> = table.column(GermanDataset::OUTCOME).unwrap().to_vec();

    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal)
        .expect("encoder builds");
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 50,
            ..ForestParams::default()
        },
        11,
    )
    .expect("forest trains");
    let black_box = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &black_box, "pred").expect("labelling");

    let engine = Engine::builder(table.clone())
        .graph(dataset.scm.graph())
        .prediction(pred, 1)
        .features(&dataset.features)
        .alpha(1.0)
        .build()
        .expect("engine builds");

    // local explanations: one rejection, one approval
    let preds = table.column(pred).unwrap().to_vec();
    for (wanted, story) in [(0u32, "REJECTED applicant"), (1u32, "APPROVED applicant")] {
        let Some(idx) = preds.iter().position(|&p| p == wanted) else {
            continue;
        };
        let row = table.row(idx).unwrap();
        let local = engine.local(&row).expect("local explanation");
        println!("--- {story} (row {idx}) ---");
        println!("{:<28}  {:>6}  {:>6}", "attribute = value", "-ve", "+ve");
        for c in local.contributions.iter().take(8) {
            println!(
                "{:<28}  {:>6.3}  {:>6.3}",
                format!("{} = {}", c.name, c.label),
                c.negative,
                c.positive
            );
        }
        println!();
    }

    // contextual audit: does raising checking-account status help the
    // young as much as the old?
    println!("--- contextual: sufficiency of status by age group ---");
    for (age, label) in [(0u32, "young"), (1, "adult"), (2, "senior")] {
        let ctx = Context::of([(GermanDataset::AGE, age)]);
        let c = engine
            .contextual(GermanDataset::STATUS, &ctx)
            .expect("contextual");
        println!("age = {label:<7}  SUF = {:.3}", c.scores.sufficiency);
    }
}
