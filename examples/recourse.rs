//! Actionable recourse: for applicants the model rejects, compute the
//! minimal-cost changes to their actionable attributes that would flip
//! the decision with high probability — and verify the recommendation
//! against the ground-truth causal model.
//!
//! ```sh
//! cargo run --release --example recourse
//! ```

use lewis::core::blackbox::label_table;
use lewis::core::groundtruth::GroundTruth;
use lewis::core::recourse::RecourseEngine;
use lewis::core::{ClassifierBox, CostModel, RecourseOptions, ScoreEstimator};
use lewis::datasets::GermanSynDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::tabular::Context;

fn main() {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(8_000, 3);
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&bin| u32::from(bin >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal)
        .expect("encoder builds");
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams { n_trees: 40, ..ForestParams::default() },
        3,
    )
    .expect("forest trains");
    let black_box = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &black_box, "pred").expect("labelling");

    let est = ScoreEstimator::new(&table, Some(dataset.scm.graph()), pred, 1, 0.25)
        .expect("estimator builds");
    let engine =
        RecourseEngine::new(&est, &dataset.actionable).expect("recourse engine builds");
    let gt = GroundTruth::exact(&dataset.scm, &black_box, 1).expect("ground truth engine");

    let opts = RecourseOptions {
        alpha: 0.85,
        cost: CostModel::OrdinalLinear,
        ..RecourseOptions::default()
    };

    let preds = table.column(pred).unwrap().to_vec();
    let mut shown = 0;
    for (idx, &p) in preds.iter().enumerate() {
        if p != 0 || shown >= 5 {
            continue;
        }
        let row = table.row(idx).unwrap();
        match engine.recourse(&row, &opts) {
            Ok(r) if !r.actions.is_empty() => {
                shown += 1;
                println!("--- rejected applicant #{idx} ---");
                for a in &r.actions {
                    println!(
                        "  change {:<8} {:>12} -> {:<12} (cost {:.0})",
                        a.name, a.from_label, a.to_label, a.cost
                    );
                }
                // grade against the true causal model
                let mut evidence = Context::empty();
                for &attr in &dataset.features {
                    evidence.set(attr, row[attr.index()]);
                }
                let actions: Vec<_> = r.actions.iter().map(|a| (a.attr, a.to)).collect();
                let truth = gt
                    .intervention_success(&actions, &evidence)
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|_| "n/a".into());
                println!(
                    "  total cost {:.0}; estimated sufficiency {}; ground-truth success {}\n",
                    r.total_cost,
                    r.verified_sufficiency
                        .map_or("n/a".into(), |s| format!("{s:.2}")),
                    truth
                );
            }
            Ok(_) => {}
            Err(e) => println!("--- applicant #{idx}: no recourse ({e})\n"),
        }
    }
}
