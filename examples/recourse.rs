//! Actionable recourse: for applicants the model rejects, compute the
//! minimal-cost changes to their actionable attributes that would flip
//! the decision with high probability — and verify the recommendation
//! against the ground-truth causal model.
//!
//! ```sh
//! cargo run --release --example recourse
//! ```

use lewis::core::groundtruth::GroundTruth;
use lewis::datasets::GermanSynDataset;
use lewis::ml::encode::{Encoding, TableEncoder};
use lewis::ml::forest::ForestParams;
use lewis::ml::RandomForestClassifier;
use lewis::prelude::*;

fn main() {
    let gen = GermanSynDataset::standard();
    let dataset = gen.generate(8_000, 3);
    let mut table = dataset.table;
    let labels: Vec<u32> = table
        .column(GermanSynDataset::SCORE)
        .unwrap()
        .iter()
        .map(|&bin| u32::from(bin >= 5))
        .collect();
    let encoder = TableEncoder::new(table.schema(), &dataset.features, Encoding::Ordinal)
        .expect("encoder builds");
    let xs = encoder.encode_table(&table);
    let forest = RandomForestClassifier::fit(
        &xs,
        &labels,
        2,
        &ForestParams {
            n_trees: 40,
            ..ForestParams::default()
        },
        3,
    )
    .expect("forest trains");
    let black_box = ClassifierBox::new(forest, encoder);
    let pred = label_table(&mut table, &black_box, "pred").expect("labelling");

    // One engine serves every applicant. Recourse requests that share an
    // actionable set are grouped by `run_batch`, so the logit-linear
    // surrogate is fitted once for the whole batch instead of per row.
    let engine = Engine::builder(table.clone())
        .graph(dataset.scm.graph())
        .prediction(pred, 1)
        .features(&dataset.features)
        .alpha(0.25)
        .build()
        .expect("engine builds");
    let gt = GroundTruth::exact(&dataset.scm, &black_box, 1).expect("ground truth engine");

    let opts = RecourseOptions {
        alpha: 0.85,
        cost: CostModel::OrdinalLinear,
        ..RecourseOptions::default()
    };

    let preds = table.column(pred).unwrap().to_vec();
    let rejected: Vec<usize> = preds
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p == 0)
        .map(|(idx, _)| idx)
        .take(8)
        .collect();
    let requests: Vec<ExplainRequest> = rejected
        .iter()
        .map(|&idx| ExplainRequest::Recourse {
            row: table.row(idx).unwrap(),
            actionable: dataset.actionable.clone(),
            opts: opts.clone(),
        })
        .collect();

    let mut shown = 0;
    for (&idx, result) in rejected.iter().zip(engine.run_batch(&requests)) {
        if shown >= 5 {
            break;
        }
        let row = table.row(idx).unwrap();
        match result.map(|resp| resp.into_recourse().expect("recourse response")) {
            Ok(r) if !r.actions.is_empty() => {
                shown += 1;
                println!("--- rejected applicant #{idx} ---");
                for a in &r.actions {
                    println!(
                        "  change {:<8} {:>12} -> {:<12} (cost {:.0})",
                        a.name, a.from_label, a.to_label, a.cost
                    );
                }
                // grade against the true causal model
                let mut evidence = Context::empty();
                for &attr in &dataset.features {
                    evidence.set(attr, row[attr.index()]);
                }
                let actions: Vec<_> = r.actions.iter().map(|a| (a.attr, a.to)).collect();
                let truth = gt
                    .intervention_success(&actions, &evidence)
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|_| "n/a".into());
                println!(
                    "  total cost {:.0}; estimated sufficiency {}; ground-truth success {}\n",
                    r.total_cost,
                    r.verified_sufficiency
                        .map_or("n/a".into(), |s| format!("{s:.2}")),
                    truth
                );
            }
            Ok(_) => {}
            Err(e) => println!("--- applicant #{idx}: no recourse ({e})\n"),
        }
    }
}
