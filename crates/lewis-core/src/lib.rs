//! # lewis-core — probabilistic contrastive counterfactual explanations
//!
//! The paper's primary contribution (Galhotra, Pradhan, Salimi, SIGMOD
//! 2021): explaining any black-box decision algorithm with three
//! counterfactual scores and generating provably minimal actionable
//! recourse.
//!
//! * [`blackbox`] — the model-agnostic [`BlackBox`] surface LEWIS audits
//!   (predict-only over dictionary-coded rows) and adapters for the `ml`
//!   crate's classifiers/regressors;
//! * [`scores`] — the necessity / sufficiency / necessity-and-sufficiency
//!   estimators of Definition 3.1, identified via Proposition 4.2
//!   (eqs. 19–21), with the Fréchet bounds of Proposition 4.1
//!   (eqs. 9–11) and the no-graph fallback of §6;
//! * [`ordering`] — inference of value orderings from the black box when
//!   domains carry no natural order (§4.1);
//! * [`engine`] — the owned, `Send + Sync` [`Engine`]: the one front
//!   door for global / contextual / local / recourse queries
//!   ([`ExplainRequest`] → [`ExplainResponse`]), built with
//!   [`Engine::builder`], sharing counting passes across queries
//!   through a bounded in-engine cache;
//! * [`explain`] — global, contextual and local explanation result
//!   types (§3.2), plus the deprecated borrowed [`Lewis`] shim;
//! * [`recourse`] — minimal-cost actionable recourse via the integer
//!   program of §4.2 with lazy sufficiency verification;
//! * [`monotonicity`] — the Λ_viol diagnostic of §5.5;
//! * [`groundtruth`] — exact scores from a known SCM (Pearl's three-step
//!   procedure) for correctness evaluation (§5.5, Fig. 11);
//! * [`multiclass`] — the ordinal multi-class / regression outcome
//!   extension (§4.1, "Extensions");
//! * [`report`] — ranking, rank-comparison and pretty-printing helpers
//!   shared by the experiment harness.

pub mod blackbox;
pub(crate) mod cache;
pub mod engine;
pub mod explain;
pub mod fairness;
pub mod groundtruth;
pub mod monotonicity;
pub mod multiclass;
pub mod ordering;
pub mod recourse;
pub mod report;
pub mod scores;
pub mod snapshot;
pub mod statements;
pub(crate) mod surrogates;

pub use blackbox::{BlackBox, ClassifierBox, RegressorThresholdBox};
pub use engine::{CacheStats, Engine, EngineBuilder, ExplainRequest, ExplainResponse};
#[allow(deprecated)]
pub use explain::Lewis;
pub use explain::{ContextualExplanation, GlobalExplanation, LocalExplanation};
pub use ordering::infer_value_order;
pub use recourse::{surrogate_width, Action, CostModel, Recourse, RecourseOptions, SurrogateFit};
pub use scores::{Contrast, ScoreEstimator, ScoreKind, Scores};
pub use snapshot::EngineSnapshot;
pub use statements::{OutcomeWords, Statement};

/// Errors surfaced by LEWIS computations.
#[derive(Debug)]
pub enum LewisError {
    /// Underlying data-engine error.
    Tabular(tabular::TabularError),
    /// Underlying causal-inference error.
    Causal(causal::CausalError),
    /// Underlying model error.
    Ml(ml::MlError),
    /// Recourse optimization failed.
    Optim(optim::IpError),
    /// The request was inconsistent (bad attribute roles, etc.).
    Invalid(String),
    /// The request was well-formed but the data cannot answer it: the
    /// contrast arms or the context have no matching rows. This is an
    /// *expected* outcome when sweeping value pairs or narrow contexts,
    /// not a caller bug — filter it with [`LewisError::is_unsupported`].
    Unsupported(String),
    /// No recourse exists within the given actionable set / threshold.
    NoRecourse(String),
}

impl LewisError {
    /// Whether this is the expected "no data support" outcome (as
    /// opposed to a malformed request or an infrastructure failure).
    pub fn is_unsupported(&self) -> bool {
        matches!(self, LewisError::Unsupported(_))
    }
}

impl std::fmt::Display for LewisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LewisError::Tabular(e) => write!(f, "tabular: {e}"),
            LewisError::Causal(e) => write!(f, "causal: {e}"),
            LewisError::Ml(e) => write!(f, "ml: {e}"),
            LewisError::Optim(e) => write!(f, "optim: {e}"),
            LewisError::Invalid(m) => write!(f, "invalid request: {m}"),
            LewisError::Unsupported(m) => write!(f, "unsupported by the data: {m}"),
            LewisError::NoRecourse(m) => write!(f, "no recourse: {m}"),
        }
    }
}

impl std::error::Error for LewisError {}

impl From<tabular::TabularError> for LewisError {
    fn from(e: tabular::TabularError) -> Self {
        LewisError::Tabular(e)
    }
}

impl From<causal::CausalError> for LewisError {
    fn from(e: causal::CausalError) -> Self {
        LewisError::Causal(e)
    }
}

impl From<ml::MlError> for LewisError {
    fn from(e: ml::MlError) -> Self {
        LewisError::Ml(e)
    }
}

impl From<optim::IpError> for LewisError {
    fn from(e: optim::IpError) -> Self {
        LewisError::Optim(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LewisError>;
