//! Counterfactual-fairness auditing (paper §6, "Algorithmic fairness").
//!
//! The paper observes that Kusner et al.'s counterfactual fairness is
//! expressible in LEWIS's vocabulary: *an algorithm is counterfactually
//! fair w.r.t. a protected attribute iff both the sufficiency score and
//! the necessity score of that attribute are zero*. This module wraps
//! that check and quantifies contextual disparities between protected
//! groups (the Fig. 4c/d analysis).

use crate::engine::Engine;
use crate::ordering::ordered_pairs;
use crate::Result;
use tabular::{AttrId, Context, Value};

/// The verdict of a counterfactual-fairness audit.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// The audited protected attribute.
    pub protected: AttrId,
    /// Maximum necessity score over protected-value contrasts.
    pub max_necessity: f64,
    /// Maximum sufficiency score over protected-value contrasts.
    pub max_sufficiency: f64,
    /// The tolerance used for the verdict.
    pub tolerance: f64,
    /// `true` iff both maxima are below tolerance.
    pub counterfactually_fair: bool,
}

/// Audit `protected` for counterfactual fairness within context `k`,
/// using `engine`'s estimator (and its counting-pass cache).
///
/// The scores capture both the direct and the *proxy* influence of the
/// protected attribute (paper Remark 3.2) — a model that never reads
/// race still fails this audit if race reaches its inputs causally.
pub fn audit(
    engine: &Engine,
    protected: AttrId,
    k: &Context,
    tolerance: f64,
) -> Result<FairnessReport> {
    let scores = engine.attribute_scores(protected, k)?;
    Ok(FairnessReport {
        protected,
        max_necessity: scores.scores.necessity,
        max_sufficiency: scores.scores.sufficiency,
        tolerance,
        counterfactually_fair: scores.scores.necessity < tolerance
            && scores.scores.sufficiency < tolerance,
    })
}

/// Disparity of one attribute's sufficiency across protected groups:
/// for each value `g` of `protected`, the sufficiency of `attr` within
/// the sub-population `protected = g`. Returns `(group value, score)`
/// pairs — the Fig. 4c/d bars.
pub fn group_sufficiency_disparity(
    engine: &Engine,
    attr: AttrId,
    protected: AttrId,
    k: &Context,
) -> Result<Vec<(Value, f64)>> {
    let card = engine.table().schema().cardinality(protected)?;
    let mut out = Vec::with_capacity(card);
    for g in 0..card as Value {
        let ctx = k.with(protected, g);
        let c = engine.contextual(attr, &ctx)?;
        out.push((g, c.scores.sufficiency));
    }
    Ok(out)
}

/// The largest absolute sufficiency gap between any two protected
/// groups — a single-number disparate-impact indicator.
pub fn max_disparity(engine: &Engine, attr: AttrId, protected: AttrId, k: &Context) -> Result<f64> {
    let groups = group_sufficiency_disparity(engine, attr, protected, k)?;
    let mut max_gap = 0.0f64;
    for (i, &(_, a)) in groups.iter().enumerate() {
        for &(_, b) in &groups[i + 1..] {
            max_gap = max_gap.max((a - b).abs());
        }
    }
    Ok(max_gap)
}

/// All ordered contrasts of the protected attribute with their scores —
/// the detailed evidence behind a failed audit.
pub fn contrast_evidence(
    engine: &Engine,
    protected: AttrId,
    k: &Context,
) -> Result<Vec<((Value, Value), crate::Scores)>> {
    let order = engine
        .value_order(protected)
        .ok_or_else(|| crate::LewisError::Invalid(format!("{protected} is not a feature")))?
        .to_vec();
    let mut out = Vec::new();
    for (hi, lo) in ordered_pairs(&order) {
        match engine.estimator().scores(protected, hi, lo, k) {
            Ok(s) => out.push(((hi, lo), s)),
            Err(crate::LewisError::Unsupported(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use causal::{Mechanism, Scm, ScmBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema, Table};

    /// protected `g` (node 0) → qualification `q` (node 1); model either
    /// reads only q (biased via proxy) or a fair coin over q's noise.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("g", Domain::boolean());
        schema.push("q", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        // qualification flows mostly to group 1: q = g unless degraded
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.6, 0.4], |pa, u| pa[0] & (1 - u as Value)),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn setup(f: impl Fn(&[Value]) -> Value + Send + Sync + 'static) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(9);
        let mut t = scm.generate(8000, &mut rng);
        let pred = label_table(&mut t, &f, "pred").unwrap();
        (t, pred)
    }

    fn engine_for(t: Table, scm: &Scm, pred: AttrId) -> Engine {
        Engine::builder(t)
            .graph(scm.graph())
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1)])
            .alpha(0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn proxy_bias_is_caught() {
        // model reads only q, but q is causally downstream of g
        let (t, pred) = setup(|row| row[1]);
        let scm = world();
        let engine = engine_for(t, &scm, pred);
        let report = audit(&engine, AttrId(0), &Context::empty(), 0.05).unwrap();
        assert!(!report.counterfactually_fair, "{report:?}");
        assert!(report.max_sufficiency > 0.1);
        let evidence = contrast_evidence(&engine, AttrId(0), &Context::empty()).unwrap();
        assert!(!evidence.is_empty());
    }

    #[test]
    fn constant_model_is_fair() {
        let (t, pred) = setup(|_| 1);
        let scm = world();
        let engine = engine_for(t, &scm, pred);
        let report = audit(&engine, AttrId(0), &Context::empty(), 0.05).unwrap();
        assert!(report.counterfactually_fair, "{report:?}");
    }

    #[test]
    fn disparity_is_zero_for_symmetric_models_and_positive_for_biased() {
        // biased: q matters only when g = 1
        let (t, pred) = setup(|row| row[0] & row[1]);
        let scm = world();
        let engine = engine_for(t, &scm, pred);
        let gap = max_disparity(&engine, AttrId(1), AttrId(0), &Context::empty()).unwrap();
        assert!(gap > 0.3, "q helps only group 1: gap {gap}");
        let groups =
            group_sufficiency_disparity(&engine, AttrId(1), AttrId(0), &Context::empty()).unwrap();
        assert_eq!(groups.len(), 2);
        assert!(groups[1].1 > groups[0].1);
    }
}
