//! The model-agnostic surface LEWIS audits.
//!
//! LEWIS "makes no assumptions about the internals of an algorithmic
//! system except for the availability of its input-output data" (paper
//! abstract). A [`BlackBox`] therefore exposes exactly one operation:
//! map a full row of attribute codes to an outcome code. Adapters wrap
//! the `ml` crate's classifiers and regressors; any closure works too.

use ml::encode::TableEncoder;
use ml::{Classifier, Regressor};
use tabular::{AttrId, Domain, Table, Value};

/// A decision-making algorithm `f : Dom(I) → Dom(O)` seen purely through
/// its input-output behaviour.
pub trait BlackBox: Send + Sync {
    /// Predict the outcome code for a full schema row.
    fn predict(&self, row: &[Value]) -> Value;

    /// Number of outcome classes.
    fn n_outcomes(&self) -> usize;
}

impl<F> BlackBox for F
where
    F: Fn(&[Value]) -> Value + Send + Sync,
{
    fn predict(&self, row: &[Value]) -> Value {
        self(row)
    }

    fn n_outcomes(&self) -> usize {
        2
    }
}

/// Adapter: an `ml` classifier + its feature encoder.
pub struct ClassifierBox<C: Classifier> {
    classifier: C,
    encoder: TableEncoder,
}

impl<C: Classifier> ClassifierBox<C> {
    /// Wrap `classifier`, encoding rows with `encoder`.
    pub fn new(classifier: C, encoder: TableEncoder) -> Self {
        ClassifierBox {
            classifier,
            encoder,
        }
    }

    /// Access the wrapped classifier.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Probability of a given outcome class for a row (used by baselines
    /// like SHAP that want soft scores, not part of the LEWIS surface).
    pub fn proba_of(&self, row: &[Value], class: u32) -> f64 {
        let x = self.encoder.encode_row(row);
        self.classifier.proba_of(&x, class)
    }
}

impl<C: Classifier> BlackBox for ClassifierBox<C> {
    fn predict(&self, row: &[Value]) -> Value {
        let x = self.encoder.encode_row(row);
        self.classifier.predict(&x)
    }

    fn n_outcomes(&self) -> usize {
        self.classifier.n_classes()
    }
}

/// Adapter: a regressor thresholded into a binary decision
/// (`score ≥ threshold` ⇒ positive). The German-syn experiment (§5.1)
/// uses a random-forest regressor with outcome `o = 0.5` this way.
pub struct RegressorThresholdBox<R: Regressor> {
    regressor: R,
    encoder: TableEncoder,
    threshold: f64,
}

impl<R: Regressor> RegressorThresholdBox<R> {
    /// Wrap `regressor`; predictions `≥ threshold` map to outcome 1.
    pub fn new(regressor: R, encoder: TableEncoder, threshold: f64) -> Self {
        RegressorThresholdBox {
            regressor,
            encoder,
            threshold,
        }
    }

    /// The raw regression score for a row.
    pub fn score(&self, row: &[Value]) -> f64 {
        let x = self.encoder.encode_row(row);
        self.regressor.predict(&x)
    }
}

impl<R: Regressor> BlackBox for RegressorThresholdBox<R> {
    fn predict(&self, row: &[Value]) -> Value {
        u32::from(self.score(row) >= self.threshold)
    }

    fn n_outcomes(&self) -> usize {
        2
    }
}

/// Run the black box over every row and append the predictions as a new
/// `predicted` column, returning its attribute id.
///
/// LEWIS explains the *algorithm*, not the world, so all probability
/// estimation downstream is over this predicted column (paper §5.2).
pub fn label_table(
    table: &mut Table,
    model: &dyn BlackBox,
    column_name: &str,
) -> tabular::Result<AttrId> {
    let preds: Vec<Value> = (0..table.n_rows())
        .map(|r| {
            let row = table.row(r).expect("row in range");
            model.predict(&row)
        })
        .collect();
    let domain = if model.n_outcomes() == 2 {
        Domain::boolean()
    } else {
        Domain::categorical((0..model.n_outcomes()).map(|i| format!("class_{i}")))
    };
    table.add_column(column_name, domain, preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::encode::Encoding;
    use tabular::{Domain, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["lo", "hi"]));
        s.push("b", Domain::categorical(["lo", "mid", "hi"]));
        s
    }

    #[test]
    fn closures_are_black_boxes() {
        let f = |row: &[Value]| u32::from(row[0] + row[1] >= 2);
        assert_eq!(f.predict(&[1, 1]), 1);
        assert_eq!(f.predict(&[0, 1]), 0);
        assert_eq!(f.n_outcomes(), 2);
    }

    #[test]
    fn label_table_appends_predictions() {
        let mut t = Table::new(schema());
        t.push_row(&[0, 0]).unwrap();
        t.push_row(&[1, 2]).unwrap();
        let f = |row: &[Value]| u32::from(row[0] == 1);
        let pred = label_table(&mut t, &f, "pred").unwrap();
        assert_eq!(t.column(pred).unwrap(), &[0, 1]);
        assert_eq!(t.schema().name(pred), "pred");
    }

    #[test]
    fn classifier_box_predicts_via_encoder() {
        let s = schema();
        let enc = TableEncoder::new(&s, &[AttrId(0), AttrId(1)], Encoding::Ordinal).unwrap();
        // trivial "classifier": logistic with positive weight on feature 0
        let clf = ml::LogisticRegression {
            intercept: -0.5,
            coefficients: vec![1.0, 0.0],
        };
        let bb = ClassifierBox::new(clf, enc);
        assert_eq!(bb.n_outcomes(), 2);
        assert_eq!(bb.predict(&[1, 0]), 1); // sigmoid(0.5) > 0.5
        assert_eq!(bb.predict(&[0, 0]), 0);
        assert!(bb.proba_of(&[1, 0], 1) > 0.5);
    }

    #[test]
    fn regressor_threshold_box() {
        let s = schema();
        let enc = TableEncoder::new(&s, &[AttrId(0), AttrId(1)], Encoding::Ordinal).unwrap();
        let reg = ml::LinearRegression {
            intercept: 0.0,
            coefficients: vec![0.25, 0.25],
        };
        let bb = RegressorThresholdBox::new(reg, enc, 0.5);
        assert_eq!(bb.predict(&[1, 2]), 1); // 0.75 >= 0.5
        assert_eq!(bb.predict(&[0, 1]), 0); // 0.25 < 0.5
        assert!((bb.score(&[1, 1]) - 0.5).abs() < 1e-12);
        assert_eq!(bb.predict(&[1, 1]), 1, "threshold is inclusive");
    }

    #[test]
    fn multiclass_label_domain() {
        struct ThreeWay;
        impl BlackBox for ThreeWay {
            fn predict(&self, row: &[Value]) -> Value {
                row[1].min(2)
            }
            fn n_outcomes(&self) -> usize {
                3
            }
        }
        let mut t = Table::new(schema());
        t.push_row(&[0, 2]).unwrap();
        let pred = label_table(&mut t, &ThreeWay, "pred").unwrap();
        assert_eq!(t.schema().cardinality(pred).unwrap(), 3);
        assert_eq!(t.get(0, pred).unwrap(), 2);
    }
}
