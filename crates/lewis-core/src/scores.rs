//! Explanation-score estimation (Definition 3.1, Propositions 4.1–4.2).
//!
//! Given a dataset labelled with the black box's predictions, a causal
//! diagram, and a value contrast `x > x'` for attribute `X` in context
//! `k`, this module estimates
//!
//! * `NEC_x(k)  = Pr(o'_{X←x'} | x, o, k)` — necessity,
//! * `SUF_x(k)  = Pr(o_{X←x}  | x', o', k)` — sufficiency,
//! * `NESUF_x(k) = Pr(o_{X←x}, o'_{X←x'} | k)` — necessity & sufficiency,
//!
//! via the monotone identification formulas (paper eqs. 19–21)
//!
//! ```text
//! NEC   = [ Σ_c Pr(o'|c,x',k) Pr(c|x,k)  −  Pr(o'|x,k) ] / Pr(o|x,k)
//! SUF   = [ Σ_c Pr(o |c,x,k)  Pr(c|x',k) −  Pr(o |x',k)] / Pr(o'|x',k)
//! NESUF =   Σ_c [Pr(o|x,c,k) − Pr(o|x',c,k)] Pr(c|k)
//! ```
//!
//! where `C` is a backdoor adjustment set (defaulting to `parents(X) \ K`,
//! always valid under causal sufficiency) — and the Fréchet bounds of
//! Proposition 4.1 when monotonicity is not assumed. With no causal graph
//! the estimator degrades to the no-confounding fallback of §6
//! (group-level attributable fraction / relative risk).

use crate::cache::CountingCache;
use crate::{LewisError, Result};
use causal::Dag;
use lewis_index::{DeltaBitmaps, TableIndex};
use std::sync::Arc;
use tabular::{AttrId, Context, Counter, ShardedTable, Table, Value};

/// A write-side delta shard overlaid on a frozen estimator: rows
/// appended after the base table (and its shard layout, bitmap index,
/// …) were built. Counting passes scan the base exactly as before and
/// then merge the delta's partial counts **after** the base shards —
/// shard-index order, so the merged integers equal a cold pass over the
/// concatenated table, and every downstream float is bit-identical.
#[derive(Clone)]
pub(crate) struct DeltaOverlay {
    /// The appended rows, dictionary-coded against the base schema.
    table: Arc<Table>,
    /// Append-only per-(attribute, code) bitmaps over the delta rows,
    /// present iff the base estimator carries a [`TableIndex`] — support
    /// probes then stay on the popcount path end to end.
    bitmaps: Option<Arc<DeltaBitmaps>>,
}

impl DeltaOverlay {
    /// `|delta rows matching ctx|` — bitmaps when present, else a scan
    /// of the (small) delta shard. Both count the same integer.
    fn count(&self, ctx: &Context) -> usize {
        if let Some(bitmaps) = &self.bitmaps {
            if let Some(n) = bitmaps.count(ctx) {
                return n as usize;
            }
        }
        self.table.count(ctx)
    }
}

/// Which of the three explanation scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreKind {
    /// `NEC` — attribution of the positive decision to the value.
    Necessity,
    /// `SUF` — tendency of the value to produce the positive decision.
    Sufficiency,
    /// `NESUF` — overall explanatory power.
    NecessityAndSufficiency,
}

/// The three scores for one contrast.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Necessity score in `[0, 1]`.
    pub necessity: f64,
    /// Sufficiency score in `[0, 1]`.
    pub sufficiency: f64,
    /// Necessity-and-sufficiency score in `[0, 1]`.
    pub nesuf: f64,
}

impl Scores {
    /// Retrieve one component by kind.
    pub fn get(&self, kind: ScoreKind) -> f64 {
        match kind {
            ScoreKind::Necessity => self.necessity,
            ScoreKind::Sufficiency => self.sufficiency,
            ScoreKind::NecessityAndSufficiency => self.nesuf,
        }
    }
}

/// A `[lower, upper]` interval from Proposition 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBounds {
    /// Fréchet lower bound.
    pub lower: f64,
    /// Fréchet upper bound.
    pub upper: f64,
}

/// One `X ← hi` vs `X ← lo` value contrast — the unit of batched
/// scoring. `hi` and `lo` must cover the same attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contrast {
    /// Attribute assignments of the factual arm.
    pub hi: Vec<(AttrId, Value)>,
    /// Attribute assignments of the counterfactual arm.
    pub lo: Vec<(AttrId, Value)>,
}

impl Contrast {
    /// A single-attribute contrast `attr: hi > lo`.
    pub fn single(attr: AttrId, hi: Value, lo: Value) -> Self {
        Contrast {
            hi: vec![(attr, hi)],
            lo: vec![(attr, lo)],
        }
    }

    /// A set contrast over several attributes.
    pub fn set(hi: &[(AttrId, Value)], lo: &[(AttrId, Value)]) -> Self {
        Contrast {
            hi: hi.to_vec(),
            lo: lo.to_vec(),
        }
    }
}

/// Per-adjustment-cell counts for every observed assignment of the
/// intervened attributes (the "arms"). One of these is built per
/// counting pass and then shared by every contrast over the same
/// attribute set — the core of [`ScoreEstimator::scores_batch`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct CellArms {
    /// Rows in this adjustment cell (all arms).
    pub(crate) n: u64,
    /// Per `x`-assignment: `(rows, rows with positive outcome)`,
    /// sorted by assignment.
    pub(crate) arms: Vec<(Vec<Value>, (u64, u64))>,
}

/// All adjustment cells from one counting pass over `(C…, X…, pred)`.
/// Immutable once built, so one instance can be shared across threads
/// and across queries (the unit the [`crate::Engine`] cache stores).
///
/// Cells and arms are **sorted vectors**, not hash maps: iteration order
/// (and therefore the floating-point summation order in
/// [`ScoreEstimator::scores_from_arms`]) depends only on the counted
/// data, never on a hasher or insertion history. That determinism is
/// what makes a snapshot-restored pass answer bit-for-bit like its
/// donor (`engine::snapshot` / `engine::restore`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ArmTable {
    /// `(adjustment-cell key, its arms)`, sorted by key.
    pub(crate) cells: Vec<(Vec<Value>, CellArms)>,
    /// Rows matching the build context (all cells, all arms).
    pub(crate) total: u64,
}

/// Estimates explanation scores from a labelled table.
///
/// The table must contain the black box's predictions as a **binary**
/// column `pred` (multi-class outcomes are first reduced with
/// [`crate::multiclass::binarize_outcome`]).
///
/// The estimator *owns* its inputs behind [`Arc`]s, so it is `Send +
/// Sync`, has no borrowed lifetime, and can be shared freely across
/// threads (clone the `Arc`s via [`ScoreEstimator::from_shared`] to
/// avoid copying the data itself).
#[derive(Clone)]
pub struct ScoreEstimator {
    table: Arc<Table>,
    graph: Option<Arc<Dag>>,
    pred: AttrId,
    positive: Value,
    alpha: f64,
    /// Row shards every counting pass fans over (1 = single pass).
    shards: usize,
    /// The precomputed shard layout when `shards > 1` — boundaries are
    /// a pure function of `(n_rows, shards)`, both fixed for the
    /// estimator's lifetime, so they are computed once here instead of
    /// per counting pass (the hottest path in the system).
    sharded: Option<ShardedTable>,
    /// Per-(attribute, code) bitmap index, when enabled. Counting
    /// passes and support probes route through it whenever its cost
    /// model says the popcount walk is cheaper than a scan; both paths
    /// are bit-identical, so the routing never changes a result.
    index: Option<Arc<TableIndex>>,
    /// Rows appended after the base artifacts froze (live tables).
    /// `None` for the ordinary cold-built estimator.
    delta: Option<DeltaOverlay>,
}

impl ScoreEstimator {
    /// Create an estimator from borrowed inputs. `graph` is the causal
    /// diagram over the table's attributes (pass `None` for the
    /// no-confounding fallback of §6); `positive` is the favourable
    /// outcome code `o`; `alpha` is the Laplace pseudo-count used for the
    /// inner conditionals.
    ///
    /// The table (and graph) are **cloned** into shared ownership; use
    /// [`ScoreEstimator::from_shared`] when an `Arc` is already at hand
    /// to avoid the copy.
    pub fn new(
        table: &Table,
        graph: Option<&Dag>,
        pred: AttrId,
        positive: Value,
        alpha: f64,
    ) -> Result<Self> {
        Self::from_shared(
            Arc::new(table.clone()),
            graph.map(|g| Arc::new(g.clone())),
            pred,
            positive,
            alpha,
        )
    }

    /// Create an estimator from already-shared inputs without copying
    /// the table. This is the constructor [`crate::Engine`] uses.
    pub fn from_shared(
        table: Arc<Table>,
        graph: Option<Arc<Dag>>,
        pred: AttrId,
        positive: Value,
        alpha: f64,
    ) -> Result<Self> {
        let card = table.schema().cardinality(pred)?;
        if card != 2 {
            return Err(LewisError::Invalid(format!(
                "prediction column must be binary, has cardinality {card}; \
                 reduce multi-class outcomes with multiclass::binarize_outcome"
            )));
        }
        if positive >= 2 {
            return Err(LewisError::Invalid(
                "positive outcome code must be 0 or 1".into(),
            ));
        }
        if let Some(g) = graph.as_deref() {
            // The graph covers the first `n_nodes` attributes; tables may
            // carry extra *derived* columns after them (binarized
            // outcomes, prediction columns). A graph larger than the
            // schema is a wiring error.
            if g.n_nodes() > table.schema().len() {
                return Err(LewisError::Invalid(format!(
                    "graph has {} nodes but table has only {} attributes",
                    g.n_nodes(),
                    table.schema().len()
                )));
            }
        }
        // is_finite first: NaN fails every comparison, and estimators
        // can now be built from deserialized (untrusted) pack configs
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(LewisError::Invalid(
                "smoothing must be finite and >= 0".into(),
            ));
        }
        Ok(ScoreEstimator {
            table,
            graph,
            pred,
            positive,
            alpha,
            shards: 1,
            sharded: None,
            index: None,
            delta: None,
        })
    }

    /// Fan every counting pass over `shards` fixed-boundary row shards
    /// (clamped into `[1, tabular::MAX_SHARDS]`). Shard results are
    /// merged in shard-index order, and the merged counts are *exactly*
    /// those of a single contiguous pass — scores are bit-identical for
    /// any shard count (see [`tabular::Counter::build_sharded`]); the
    /// fan-out only buys wall-clock on multi-core machines.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, tabular::MAX_SHARDS);
        self.sharded = (self.shards > 1)
            .then(|| ShardedTable::from_shared(Arc::clone(&self.table), self.shards));
        self
    }

    /// Row shards every counting pass fans over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Build (or drop) the per-(attribute, code) bitmap index. The
    /// index is sharded along the same boundaries as the counting
    /// passes, so call this **after** [`ScoreEstimator::with_shards`].
    /// Indexed counting passes and support probes are bit-identical to
    /// their scan equivalents (property-tested in
    /// `tests/index_parity.rs`); the index only changes wall-clock.
    pub fn with_index(mut self, enabled: bool) -> Result<Self> {
        self.index = if enabled {
            Some(Arc::new(
                TableIndex::build(&self.table, self.shards).map_err(LewisError::from)?,
            ))
        } else {
            None
        };
        Ok(self)
    }

    /// Install an already-built index (the snapshot-restore path).
    /// Callers must have validated `index.matches(table)` first.
    pub(crate) fn install_index(&mut self, index: Arc<TableIndex>) {
        self.index = Some(index);
    }

    /// The bitmap index, when one is enabled.
    pub fn index(&self) -> Option<&Arc<TableIndex>> {
        self.index.as_ref()
    }

    /// Overlay a delta shard of appended rows on this estimator. The
    /// delta must be coded against the base schema (same attributes,
    /// same domains). When the base carries a bitmap index, append-only
    /// delta bitmaps are built alongside so support probes stay on the
    /// popcount path; the base index keeps serving the base rows
    /// untouched (it still `matches` the base table).
    ///
    /// Every count the returned estimator produces equals a cold count
    /// over the concatenated table: base shards merge first, the delta's
    /// partial counts merge last — shard-index order, integer addition.
    pub(crate) fn with_delta_overlay(&self, delta: Arc<Table>) -> Result<ScoreEstimator> {
        if delta.schema() != self.table.schema() {
            return Err(LewisError::Invalid(
                "delta shard schema differs from the base table's".into(),
            ));
        }
        let bitmaps = match &self.index {
            Some(_) => Some(Arc::new(
                DeltaBitmaps::from_table(&delta).map_err(LewisError::from)?,
            )),
            None => None,
        };
        let mut est = self.clone();
        est.delta = Some(DeltaOverlay {
            table: delta,
            bitmaps,
        });
        Ok(est)
    }

    /// The overlaid delta shard, when this estimator serves a live table.
    pub(crate) fn delta_table(&self) -> Option<&Arc<Table>> {
        self.delta.as_ref().map(|d| &d.table)
    }

    /// Rows appended on top of the base table (0 for frozen estimators).
    pub fn delta_rows(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.table.n_rows())
    }

    /// Base rows plus delta rows — the logical size of the served table.
    pub fn n_total_rows(&self) -> usize {
        self.table.n_rows() + self.delta_rows()
    }

    /// `|rows matching ctx|`, served from the bitmap index when one is
    /// present (word-level AND + popcount per shard, summed in shard
    /// order) and from a table scan otherwise, plus the delta shard's
    /// matches when one is overlaid. All paths count the same integer —
    /// this is the support probe under every local-context back-off
    /// step and Fréchet bound.
    pub(crate) fn support_count(&self, ctx: &Context) -> usize {
        let base = 'base: {
            if let Some(index) = &self.index {
                if let Some(n) = index.count(ctx) {
                    break 'base n as usize;
                }
            }
            self.table.count(ctx)
        };
        match &self.delta {
            Some(delta) => base + delta.count(ctx),
            None => base,
        }
    }

    /// One counting pass over `attrs` within `k`, honoring the
    /// estimator's shard setting — the single chokepoint every
    /// diagnostic and score in this crate counts through, so "fans over
    /// shards" holds for all of them, not just the arm-table path. With
    /// a delta overlay, the delta's partial counts merge in **after**
    /// the base shards (shard-index order, integer addition), so the
    /// result equals a cold pass over the concatenated table exactly.
    pub(crate) fn counting_pass(&self, attrs: &[AttrId], k: &Context) -> Result<Counter> {
        let mut counter = self.base_counting_pass(attrs, k)?;
        if let Some(delta) = &self.delta {
            if delta.table.n_rows() > 0 {
                // Same attrs over the same domains: grid, strides and
                // storage kind all match the base counter by
                // construction, so the merge cannot fail on shape.
                counter.merge_from(&Counter::build(&delta.table, attrs, k)?)?;
            }
        }
        Ok(counter)
    }

    /// The base-table half of [`ScoreEstimator::counting_pass`].
    fn base_counting_pass(&self, attrs: &[AttrId], k: &Context) -> Result<Counter> {
        // The bitmap index gets first refusal: when its cost model says
        // the popcount walk is cheaper than a row scan it returns the
        // bit-identical counter without touching the rows; otherwise it
        // returns `None` and the pass falls through to the scan below.
        if let Some(index) = &self.index {
            if let Some(counter) = index.counting_pass(&self.table, attrs, k)? {
                return Ok(counter);
            }
        }
        let counter = match &self.sharded {
            Some(sharded) => Counter::build_sharded(sharded, attrs, k)?,
            None => Counter::build(&self.table, attrs, k)?,
        };
        Ok(counter)
    }

    /// Infer the value order of `attr` (ascending positive rate, see
    /// [`crate::ordering::infer_value_order`]) through the counting
    /// chokepoint: one grouped pass over `(attr, pred)` supplies every
    /// per-value count, so the order is index-accelerated when an index
    /// is installed and **delta-aware** when a shard is overlaid —
    /// bit-identical to the table-scan inference over the (concatenated)
    /// table in both cases, because the pass emits the same integers.
    pub(crate) fn infer_order(&self, attr: AttrId) -> Result<Vec<Value>> {
        let card = self
            .table
            .schema()
            .cardinality(attr)
            .map_err(LewisError::from)?;
        let counter = self.counting_pass(&[attr, self.pred], &Context::empty())?;
        let stats = Self::order_stats_from(&counter, card, self.positive);
        Ok(crate::ordering::infer_value_order_from_stats(&stats))
    }

    /// Per-value `(rows, positives)` of `attr` over the **base** table
    /// only (index-accelerated when an index is installed). Base stats
    /// are append-invariant, so a live engine computes them once and
    /// merges each batch's [`ScoreEstimator::delta_order_stats`] on top
    /// — integer addition, identical to re-counting the concatenated
    /// table from scratch.
    pub(crate) fn base_order_stats(&self, attr: AttrId) -> Result<Vec<(u64, u64)>> {
        let card = self
            .table
            .schema()
            .cardinality(attr)
            .map_err(LewisError::from)?;
        let counter = self.base_counting_pass(&[attr, self.pred], &Context::empty())?;
        Ok(Self::order_stats_from(&counter, card, self.positive))
    }

    /// Per-value `(rows, positives)` of `attr` over the delta shard only
    /// (all zeros without one) — one scan of just the appended rows.
    pub(crate) fn delta_order_stats(&self, attr: AttrId) -> Result<Vec<(u64, u64)>> {
        let card = self
            .table
            .schema()
            .cardinality(attr)
            .map_err(LewisError::from)?;
        match self.delta.as_ref().filter(|d| d.table.n_rows() > 0) {
            None => Ok(vec![(0, 0); card]),
            Some(delta) => {
                let counter = Counter::build(&delta.table, &[attr, self.pred], &Context::empty())?;
                Ok(Self::order_stats_from(&counter, card, self.positive))
            }
        }
    }

    /// Collect `(rows, positives)` per value of the first grouped
    /// attribute from an `(attr, pred)` counter.
    fn order_stats_from(counter: &Counter, card: usize, positive: Value) -> Vec<(u64, u64)> {
        (0..card as Value)
            .map(|v| {
                (
                    counter.marginal_count(&[Some(v), None]),
                    counter.count(&[v, positive]),
                )
            })
            .collect()
    }

    /// The labelled table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// A shared handle to the labelled table (no data copy).
    pub fn shared_table(&self) -> Arc<Table> {
        Arc::clone(&self.table)
    }

    /// A shared handle to the causal diagram, if one was supplied.
    pub fn shared_graph(&self) -> Option<Arc<Dag>> {
        self.graph.clone()
    }

    /// The prediction column.
    pub fn pred_attr(&self) -> AttrId {
        self.pred
    }

    /// The positive outcome code.
    pub fn positive(&self) -> Value {
        self.positive
    }

    /// The causal diagram, if one was supplied.
    pub fn graph(&self) -> Option<&Dag> {
        self.graph.as_deref()
    }

    /// The Laplace pseudo-count used for the inner conditionals.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Default backdoor adjustment set for an intervention on `xs`:
    /// the union of parents not already fixed by `k` (and not the
    /// prediction column). Empty without a graph (§6 fallback), and
    /// empty for derived attributes outside the graph.
    pub fn adjustment_set(&self, xs: &[AttrId], k: &Context) -> Vec<AttrId> {
        let Some(g) = self.graph.as_deref() else {
            return Vec::new();
        };
        let mut c: Vec<AttrId> = xs
            .iter()
            .filter(|x| x.index() < g.n_nodes())
            .flat_map(|x| g.parents(x.index()).iter().copied())
            .map(|p| AttrId(p as u32))
            .filter(|p| !xs.contains(p) && !k.constrains(*p) && *p != self.pred)
            .collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// All three scores for the single-attribute contrast `x_hi > x_lo`
    /// in context `k`.
    pub fn scores(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<Scores> {
        self.scores_set(&[(attr, x_hi)], &[(attr, x_lo)], k)
    }

    /// Necessity score for a single-attribute contrast.
    pub fn necessity(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        Ok(self.scores(attr, x_hi, x_lo, k)?.necessity)
    }

    /// Sufficiency score for a single-attribute contrast.
    pub fn sufficiency(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        Ok(self.scores(attr, x_hi, x_lo, k)?.sufficiency)
    }

    /// Necessity-and-sufficiency score for a single-attribute contrast.
    pub fn nesuf(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        Ok(self.scores(attr, x_hi, x_lo, k)?.nesuf)
    }

    /// All three scores for a *set* contrast `X ← hi` vs `X ← lo`
    /// (needed for recourse verification, where actions touch several
    /// attributes at once). `hi` and `lo` must cover the same attributes.
    pub fn scores_set(
        &self,
        hi: &[(AttrId, Value)],
        lo: &[(AttrId, Value)],
        k: &Context,
    ) -> Result<Scores> {
        let (xs, hi_vals, lo_vals) = self.validate_for_scoring(hi, lo, k)?;
        let c_set = self.adjustment_set(&xs, k);
        // A single contrast only ever reads its own two arms, so skip
        // materializing the rest (seed-equivalent memory behavior).
        let arms = self.build_arm_table(&c_set, &xs, k, Some((&hi_vals, &lo_vals)))?;
        self.scores_from_arms(&arms, &hi_vals, &lo_vals)
    }

    /// All three scores for a *batch* of contrasts sharing one context.
    ///
    /// Contrasts over the same attribute set (e.g. every ordered value
    /// pair of one attribute) share a **single** counting pass over the
    /// table instead of re-scanning once per contrast, and independent
    /// attribute-set groups are scored in parallel. Results are
    /// positionally aligned with `contrasts` and each entry is exactly
    /// what the corresponding [`ScoreEstimator::scores_set`] call would
    /// return — bit-for-bit, including per-contrast errors for
    /// unsupported contrasts.
    pub fn scores_batch(&self, contrasts: &[Contrast], k: &Context) -> Vec<Result<Scores>> {
        self.scores_batch_impl(contrasts, k, None)
    }

    /// [`ScoreEstimator::scores_batch`] with an optional counting-pass
    /// cache: when `cache` is given, each attribute-set group first looks
    /// up its [`ArmTable`] under the `(intervened set, context,
    /// adjustment set)` key and only scans the table on a miss. Cached
    /// and uncached results are bit-identical — the [`ArmTable`] is built
    /// by the same deterministic pass either way, and scoring reads it
    /// in the same order.
    pub(crate) fn scores_batch_impl(
        &self,
        contrasts: &[Contrast],
        k: &Context,
        cache: Option<&CountingCache>,
    ) -> Vec<Result<Scores>> {
        use rayon::prelude::*;

        let mut out: Vec<Option<Result<Scores>>> = contrasts.iter().map(|_| None).collect();
        // Group contrasts by intervened attribute set, preserving first-
        // seen order; each group shares one adjustment set and one
        // counting pass.
        let mut group_of: tabular::FxHashMap<Vec<AttrId>, usize> = tabular::FxHashMap::default();
        type Member = (usize, Vec<Value>, Vec<Value>);
        let mut groups: Vec<(Vec<AttrId>, Vec<Member>)> = Vec::new();
        for (i, contrast) in contrasts.iter().enumerate() {
            match self.validate_for_scoring(&contrast.hi, &contrast.lo, k) {
                Err(e) => out[i] = Some(Err(e)),
                Ok((xs, hi_vals, lo_vals)) => {
                    let gi = *group_of.entry(xs.clone()).or_insert_with(|| {
                        groups.push((xs, Vec::new()));
                        groups.len() - 1
                    });
                    groups[gi].1.push((i, hi_vals, lo_vals));
                }
            }
        }
        let scored: Vec<Vec<(usize, Result<Scores>)>> = groups
            .par_iter()
            .map(|(xs, members)| {
                let c_set = self.adjustment_set(xs, k);
                let arms: Result<Arc<ArmTable>> = match cache {
                    Some(cache) => cache
                        .get_or_build(xs, k, &c_set, || self.build_arm_table(&c_set, xs, k, None)),
                    None => self.build_arm_table(&c_set, xs, k, None).map(Arc::new),
                };
                match arms {
                    Ok(arms) => members
                        .iter()
                        .map(|(i, hi_vals, lo_vals)| {
                            (*i, self.scores_from_arms(&arms, hi_vals, lo_vals))
                        })
                        .collect(),
                    // The shared pass itself failed (e.g. empty context):
                    // fall back per contrast so every entry carries the
                    // identical error scores_set would have produced.
                    Err(_) => members
                        .iter()
                        .map(|(i, _, _)| {
                            let c = &contrasts[*i];
                            (*i, self.scores_set(&c.hi, &c.lo, k))
                        })
                        .collect(),
                }
            })
            .collect();
        for (i, result) in scored.into_iter().flatten() {
            out[i] = Some(result);
        }
        out.into_iter()
            .map(|slot| slot.expect("every contrast scored"))
            .collect()
    }

    /// Shared validation for single and batched scoring.
    fn validate_for_scoring(
        &self,
        hi: &[(AttrId, Value)],
        lo: &[(AttrId, Value)],
        k: &Context,
    ) -> Result<(Vec<AttrId>, Vec<Value>, Vec<Value>)> {
        let (xs, hi_vals, lo_vals) = validate_contrast(hi, lo)?;
        for &x in &xs {
            if x == self.pred {
                return Err(LewisError::Invalid(
                    "cannot intervene on the prediction column".into(),
                ));
            }
            if k.constrains(x) {
                return Err(LewisError::Invalid(format!(
                    "context constrains intervened attribute {x}"
                )));
            }
        }
        Ok((xs, hi_vals, lo_vals))
    }

    /// One counting pass over `(C…, X…, pred)` within `k`, aggregated
    /// per adjustment cell and per `x`-arm. When `keep` is given, only
    /// those two arms are materialized (cell totals still count every
    /// arm); missing arms read back as `(0, 0)` either way, so filtered
    /// and unfiltered tables score identically.
    pub(crate) fn build_arm_table(
        &self,
        c_set: &[AttrId],
        xs: &[AttrId],
        k: &Context,
        keep: Option<(&[Value], &[Value])>,
    ) -> Result<ArmTable> {
        let mut attrs: Vec<AttrId> = c_set.to_vec();
        attrs.extend(xs);
        attrs.push(self.pred);
        let counter = self.counting_pass(&attrs, k)?;
        if counter.total() == 0 {
            return Err(LewisError::Unsupported(
                "no rows match the context; relax the context or add data".into(),
            ));
        }
        let nc = c_set.len();
        let nx = xs.len();
        let o = self.positive;
        #[derive(Default)]
        struct CellAcc {
            n: u64,
            arms: tabular::FxHashMap<Vec<Value>, (u64, u64)>,
        }
        let mut acc: tabular::FxHashMap<Vec<Value>, CellAcc> = tabular::FxHashMap::default();
        counter.for_each_nonzero(|values, n| {
            let cell = acc.entry(values[..nc].to_vec()).or_default();
            cell.n += n;
            let x_vals = &values[nc..nc + nx];
            if let Some((hi_vals, lo_vals)) = keep {
                if x_vals != hi_vals && x_vals != lo_vals {
                    return;
                }
            }
            let arm = cell.arms.entry(x_vals.to_vec()).or_insert((0, 0));
            arm.0 += n;
            if values[nc + nx] == o {
                arm.1 += n;
            }
        });
        // Freeze the accumulators into sorted vectors: the hash maps
        // above are only a build-time convenience, the shared (and
        // snapshottable) pass must be hasher-independent.
        let mut cells: Vec<(Vec<Value>, CellArms)> = acc
            // lint:allow(ordered-iteration): the drained cells are sorted
            // by key at the end of this expression (`cells.sort_unstable_by`
            // below), which erases the hash visit order.
            .into_iter()
            .map(|(key, cell)| {
                // lint:allow(ordered-iteration): sorted on the next line.
                let mut arms: Vec<(Vec<Value>, (u64, u64))> = cell.arms.into_iter().collect();
                arms.sort_unstable();
                (key, CellArms { n: cell.n, arms })
            })
            .collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(ArmTable {
            cells,
            total: counter.total(),
        })
    }

    /// The eq. 19–21 estimates for one `hi` vs `lo` contrast, read off a
    /// prebuilt [`ArmTable`].
    pub(crate) fn scores_from_arms(
        &self,
        arms: &ArmTable,
        hi_vals: &[Value],
        lo_vals: &[Value],
    ) -> Result<Scores> {
        let arm_of = |cell: &CellArms, vals: &[Value]| -> (u64, u64) {
            cell.arms
                .binary_search_by(|(a, _)| a.as_slice().cmp(vals))
                .map(|i| cell.arms[i].1)
                .unwrap_or((0, 0))
        };
        let mut n_hi = 0u64;
        let mut n_hi_o = 0u64;
        let mut n_lo = 0u64;
        let mut n_lo_o = 0u64;
        for (_, cell) in &arms.cells {
            let (h, ho) = arm_of(cell, hi_vals);
            let (l, lo_o) = arm_of(cell, lo_vals);
            n_hi += h;
            n_hi_o += ho;
            n_lo += l;
            n_lo_o += lo_o;
        }
        if n_hi == 0 || n_lo == 0 {
            return Err(LewisError::Unsupported(format!(
                "contrast unsupported in context: n(hi)={n_hi}, n(lo)={n_lo}"
            )));
        }
        let a = self.alpha;
        // marginals within k
        let pr_o_hi = (n_hi_o as f64 + a) / (n_hi as f64 + 2.0 * a);
        let pr_o_lo = (n_lo_o as f64 + a) / (n_lo as f64 + 2.0 * a);
        let pr_oneg_hi = 1.0 - pr_o_hi;
        let pr_oneg_lo = 1.0 - pr_o_lo;

        // Adjusted sums, renormalized over *supported* adjustment cells:
        // with α = 0 a cell whose contrast arm is unobserved contributes
        // no estimate (deterministic strata are common in SCM data), so
        // each sum divides by the weight it actually covered and falls
        // back to the marginal contrast when no cell overlaps.
        let cond = |n_o: u64, n: u64| -> Option<f64> {
            if n == 0 && a == 0.0 {
                None
            } else {
                Some((n_o as f64 + a) / (n as f64 + 2.0 * a))
            }
        };
        let mut sum_nec = 0.0f64; // Σ_c Pr(o'|c,lo,k) Pr(c|hi,k)
        let mut w_nec = 0.0f64;
        let mut sum_suf = 0.0f64; // Σ_c Pr(o |c,hi,k) Pr(c|lo,k)
        let mut w_suf = 0.0f64;
        let mut sum_ate = 0.0f64; // Σ_c [Pr(o|hi,c,k) − Pr(o|lo,c,k)] Pr(c|k)
        let mut w_ate = 0.0f64;
        for (_, cell) in &arms.cells {
            let (cell_n_hi, cell_n_hi_o) = arm_of(cell, hi_vals);
            let (cell_n_lo, cell_n_lo_o) = arm_of(cell, lo_vals);
            let p_hi_c = cond(cell_n_hi_o, cell_n_hi);
            let p_lo_c = cond(cell_n_lo_o, cell_n_lo);
            if let Some(p_lo_c) = p_lo_c {
                let w = cell_n_hi as f64 / n_hi as f64;
                sum_nec += (1.0 - p_lo_c) * w;
                w_nec += w;
            }
            if let Some(p_hi_c) = p_hi_c {
                let w = cell_n_lo as f64 / n_lo as f64;
                sum_suf += p_hi_c * w;
                w_suf += w;
            }
            if let (Some(p_hi_c), Some(p_lo_c)) = (p_hi_c, p_lo_c) {
                let w = cell.n as f64 / arms.total as f64;
                sum_ate += (p_hi_c - p_lo_c) * w;
                w_ate += w;
            }
        }
        let adj_nec = if w_nec > 0.0 {
            sum_nec / w_nec
        } else {
            pr_oneg_lo
        };
        let adj_suf = if w_suf > 0.0 {
            sum_suf / w_suf
        } else {
            pr_o_hi
        };
        let adj_ate = if w_ate > 0.0 {
            sum_ate / w_ate
        } else {
            pr_o_hi - pr_o_lo
        };

        let necessity = if pr_o_hi <= 0.0 {
            0.0
        } else {
            ((adj_nec - pr_oneg_hi) / pr_o_hi).clamp(0.0, 1.0)
        };
        let sufficiency = if pr_oneg_lo <= 0.0 {
            0.0
        } else {
            ((adj_suf - pr_o_lo) / pr_oneg_lo).clamp(0.0, 1.0)
        };
        let nesuf = adj_ate.clamp(0.0, 1.0);
        Ok(Scores {
            necessity,
            sufficiency,
            nesuf,
        })
    }

    /// Sufficiency of a *set* intervention — convenience wrapper used by
    /// the recourse verifier.
    pub fn sufficiency_set(
        &self,
        hi: &[(AttrId, Value)],
        lo: &[(AttrId, Value)],
        k: &Context,
    ) -> Result<f64> {
        Ok(self.scores_set(hi, lo, k)?.sufficiency)
    }

    /// Fréchet bounds (Proposition 4.1, eqs. 9–11) for one score — valid
    /// *without* the monotonicity assumption. Interventional terms
    /// `Pr(o | do(x), k)` are estimated by backdoor adjustment over the
    /// default adjustment set.
    ///
    /// Bounds are a diagnostic outside the engine's query surface
    /// (`Engine::run` never reaches here): the adjusted terms read the
    /// **base** table directly, so on a live estimator they describe the
    /// frozen base, not base + delta. Compaction folds the delta in.
    pub fn bounds(
        &self,
        kind: ScoreKind,
        attr: AttrId,
        x_hi: Value,
        x_lo: Value,
        k: &Context,
    ) -> Result<ScoreBounds> {
        let o = self.positive;
        let o_neg = 1 - o;
        let c_set = self.adjustment_set(&[attr], k);

        let do_p = |x_val: Value, out: Value| -> Result<f64> {
            causal::adjustment::estimate_adjusted(
                &self.table,
                attr,
                x_val,
                self.pred,
                out,
                k,
                &c_set,
                self.alpha,
            )
            .map_err(LewisError::from)
        };
        // joint probabilities within k — over the base table only, the
        // same rows the adjusted terms above read, so the bound stays
        // internally consistent on a live estimator
        let base_support = |ctx: &Context| -> usize {
            if let Some(index) = &self.index {
                if let Some(n) = index.count(ctx) {
                    return n as usize;
                }
            }
            self.table.count(ctx)
        };
        let n_k = base_support(k) as f64;
        if n_k == 0.0 {
            return Err(LewisError::Unsupported("no rows match the context".into()));
        }
        let joint = |x_val: Value, out: Value| -> f64 {
            base_support(&k.with(attr, x_val).with(self.pred, out)) as f64 / n_k
        };

        let (lower, upper) = match kind {
            ScoreKind::Necessity => {
                let pr_o_hi = joint(x_hi, o);
                if pr_o_hi == 0.0 {
                    return Err(LewisError::Unsupported("Pr(o, x | k) = 0".into()));
                }
                let lo_b = (joint(x_hi, o) + joint(x_lo, o) - do_p(x_lo, o)?) / pr_o_hi;
                let up_b = (do_p(x_lo, o_neg)? - joint(x_lo, o_neg)) / pr_o_hi;
                (lo_b.max(0.0), up_b.min(1.0))
            }
            ScoreKind::Sufficiency => {
                let pr_oneg_lo = joint(x_lo, o_neg);
                if pr_oneg_lo == 0.0 {
                    return Err(LewisError::Unsupported("Pr(o', x' | k) = 0".into()));
                }
                let lo_b =
                    (joint(x_hi, o_neg) + joint(x_lo, o_neg) - do_p(x_hi, o_neg)?) / pr_oneg_lo;
                let up_b = (do_p(x_hi, o)? - joint(x_hi, o)) / pr_oneg_lo;
                (lo_b.max(0.0), up_b.min(1.0))
            }
            ScoreKind::NecessityAndSufficiency => {
                let lo_b = do_p(x_hi, o)? - do_p(x_lo, o)?;
                let up_b = do_p(x_hi, o)?.min(do_p(x_lo, o_neg)?);
                (lo_b.max(0.0), up_b.min(1.0))
            }
        };
        // Estimation noise can push either raw endpoint outside [0, 1]
        // or invert the interval entirely. Clamp each endpoint into
        // [0, 1] first, then collapse an inverted (empty) interval to
        // its midpoint so callers can always rely on `lower <= upper`.
        let lower = lower.clamp(0.0, 1.0);
        let upper = upper.clamp(0.0, 1.0);
        if lower <= upper {
            Ok(ScoreBounds { lower, upper })
        } else {
            let mid = 0.5 * (lower + upper);
            Ok(ScoreBounds {
                lower: mid,
                upper: mid,
            })
        }
    }

    /// Build the local-explanation context for `row` and intervention
    /// target `x_attr` (paper §3.2, `K = V`): the individual's values on
    /// the **non-descendants** of `x_attr` (descendants must stay free to
    /// respond to the intervention), greedily dropped from the causally
    /// least-proximate end until at least `min_support` rows match.
    pub fn local_context(&self, row: &[Value], x_attr: AttrId, min_support: usize) -> Context {
        let candidates: Vec<AttrId> = match self
            .graph
            .as_deref()
            .filter(|g| x_attr.index() < g.n_nodes())
        {
            Some(g) => {
                let parents: Vec<usize> = g.parents(x_attr.index()).to_vec();
                let ancestors = g.ancestors(x_attr.index());
                let descendants = g.descendants(x_attr.index());
                let mut ordered: Vec<usize> = Vec::new();
                ordered.extend(&parents);
                ordered.extend(ancestors.iter().filter(|a| !parents.contains(a)));
                let rest: Vec<usize> = (0..g.n_nodes())
                    .filter(|n| {
                        *n != x_attr.index() && !descendants.contains(n) && !ordered.contains(n)
                    })
                    .collect();
                ordered.extend(rest);
                ordered
                    .into_iter()
                    .map(|n| AttrId(n as u32))
                    .filter(|a| *a != self.pred && a.index() < row.len())
                    .collect()
            }
            None => self
                .table
                .schema()
                .attr_ids()
                .filter(|a| *a != x_attr && *a != self.pred && a.index() < row.len())
                .collect(),
        };
        // Documented back-off: start from the full non-descendant
        // context and greedily drop attributes from the causally
        // least-proximate end (the tail of `candidates`) until the
        // stratum reaches `min_support`. A more-proximate attribute is
        // therefore never sacrificed to keep a less-proximate one.
        let mut kept = candidates;
        loop {
            let ctx = Context::of(kept.iter().map(|a| (*a, row[a.index()])));
            if kept.is_empty() || self.support_count(&ctx) >= min_support {
                return ctx;
            }
            kept.pop();
        }
    }
}

fn validate_contrast(
    hi: &[(AttrId, Value)],
    lo: &[(AttrId, Value)],
) -> Result<(Vec<AttrId>, Vec<Value>, Vec<Value>)> {
    if hi.is_empty() {
        return Err(LewisError::Invalid("empty contrast".into()));
    }
    let mut hi_sorted = hi.to_vec();
    hi_sorted.sort_by_key(|&(a, _)| a);
    let mut lo_sorted = lo.to_vec();
    lo_sorted.sort_by_key(|&(a, _)| a);
    let xs: Vec<AttrId> = hi_sorted.iter().map(|&(a, _)| a).collect();
    let xs_lo: Vec<AttrId> = lo_sorted.iter().map(|&(a, _)| a).collect();
    if xs != xs_lo {
        return Err(LewisError::Invalid(
            "hi/lo contrasts must cover the same attributes".into(),
        ));
    }
    if xs.windows(2).any(|w| w[0] == w[1]) {
        return Err(LewisError::Invalid(
            "duplicate attribute in contrast".into(),
        ));
    }
    if hi_sorted
        .iter()
        .zip(&lo_sorted)
        .all(|(&(_, h), &(_, l))| h == l)
    {
        return Err(LewisError::Invalid("hi and lo are identical".into()));
    }
    Ok((
        xs,
        hi_sorted.iter().map(|&(_, v)| v).collect(),
        lo_sorted.iter().map(|&(_, v)| v).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal::scm::{Mechanism, ScmBuilder};
    use causal::{CounterfactualEngine, Scm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// Confounded, monotone world:
    /// C → X, C → O-inputs, X → D; f(c, x, d) = 1 iff c + x + d ≥ 2.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("c", Domain::boolean());
        schema.push("x", Domain::boolean());
        schema.push("d", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.edge(1, 2).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        // X = C with flip prob 0.3 (confounded but monotone-friendly)
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.7, 0.3], |pa, u| pa[0] ^ (u as Value)),
        )
        .unwrap();
        // D = X, degraded with prob 0.2 (monotone in X: D = X & ¬u)
        b.mechanism(
            2,
            Mechanism::with_noise(vec![0.8, 0.2], |pa, u| pa[0] & (1 - u as Value)),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn f(row: &[Value]) -> Value {
        u32::from(row[0] + row[1] + row[2] >= 2)
    }

    /// Labelled dataset + estimator inputs.
    fn setup(n: usize) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = scm.generate(n, &mut rng);
        let pred = crate::blackbox::label_table(&mut t, &f, "pred").unwrap();
        (t, pred)
    }

    fn ground_truth_scores(k_c: Option<Value>) -> Scores {
        let scm = world();
        let eng = CounterfactualEngine::exact(&scm).unwrap();
        let x = 1usize;
        let evid_base = move |w: &[Value]| k_c.is_none_or(|c| w[0] == c);
        let nec = eng
            .query(
                |w| evid_base(w) && w[x] == 1 && f(w) == 1,
                &[(x, 0)],
                |w| f(w) == 0,
            )
            .unwrap();
        let suf = eng
            .query(
                |w| evid_base(w) && w[x] == 0 && f(w) == 0,
                &[(x, 1)],
                |w| f(w) == 1,
            )
            .unwrap();
        let nesuf = eng
            .joint_query(
                evid_base,
                &[(x, 1)],
                |w| f(w) == 1,
                &[(x, 0)],
                |w| f(w) == 0,
            )
            .unwrap();
        Scores {
            necessity: nec,
            sufficiency: suf,
            nesuf,
        }
    }

    #[test]
    fn estimates_match_ground_truth_globally() {
        let (t, pred) = setup(60_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.0).unwrap();
        let got = est.scores(AttrId(1), 1, 0, &Context::empty()).unwrap();
        let want = ground_truth_scores(None);
        assert!(
            (got.necessity - want.necessity).abs() < 0.02,
            "NEC {} vs {}",
            got.necessity,
            want.necessity
        );
        assert!(
            (got.sufficiency - want.sufficiency).abs() < 0.02,
            "SUF {} vs {}",
            got.sufficiency,
            want.sufficiency
        );
        assert!(
            (got.nesuf - want.nesuf).abs() < 0.02,
            "NESUF {} vs {}",
            got.nesuf,
            want.nesuf
        );
    }

    #[test]
    fn estimates_match_ground_truth_contextually() {
        let (t, pred) = setup(60_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.0).unwrap();
        for c in [0u32, 1] {
            let k = Context::of([(AttrId(0), c)]);
            let got = est.scores(AttrId(1), 1, 0, &k).unwrap();
            let want = ground_truth_scores(Some(c));
            assert!(
                (got.sufficiency - want.sufficiency).abs() < 0.03,
                "c={c}: SUF {} vs {}",
                got.sufficiency,
                want.sufficiency
            );
            assert!(
                (got.nesuf - want.nesuf).abs() < 0.03,
                "c={c}: NESUF {} vs {}",
                got.nesuf,
                want.nesuf
            );
        }
    }

    #[test]
    fn bounds_contain_point_estimates_and_truth() {
        let (t, pred) = setup(60_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.0).unwrap();
        let truth = ground_truth_scores(None);
        for (kind, want) in [
            (ScoreKind::Necessity, truth.necessity),
            (ScoreKind::Sufficiency, truth.sufficiency),
            (ScoreKind::NecessityAndSufficiency, truth.nesuf),
        ] {
            let b = est
                .bounds(kind, AttrId(1), 1, 0, &Context::empty())
                .unwrap();
            assert!(
                b.lower <= b.upper + 1e-9,
                "{kind:?}: [{}, {}]",
                b.lower,
                b.upper
            );
            assert!(
                b.lower - 0.03 <= want && want <= b.upper + 0.03,
                "{kind:?}: truth {want} outside [{}, {}]",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn proposition_4_3_binary_equality() {
        // For binary X:
        // NESUF = Pr(o,x|k)·NEC + Pr(o',x'|k)·SUF + 1 − Pr(x|k) − Pr(x'|k)
        // and the last term vanishes for binary domains.
        let (t, pred) = setup(60_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.0).unwrap();
        let s = est.scores(AttrId(1), 1, 0, &Context::empty()).unwrap();
        let n = t.n_rows() as f64;
        let pr_o_x = t.count(&Context::of([(AttrId(1), 1), (pred, 1)])) as f64 / n;
        let pr_on_xn = t.count(&Context::of([(AttrId(1), 0), (pred, 0)])) as f64 / n;
        let rhs = pr_o_x * s.necessity + pr_on_xn * s.sufficiency;
        assert!(
            (s.nesuf - rhs).abs() < 0.02,
            "Prop 4.3: NESUF {} vs weighted sum {}",
            s.nesuf,
            rhs
        );
    }

    #[test]
    fn proposition_4_4_non_ancestor_scores_are_zero() {
        // D is a descendant of X but O (= f) is NOT downstream of... use
        // a variable with no causal path to the outcome: add an isolated
        // noise attribute and check its scores vanish.
        let scm = world();
        let mut schema = scm.schema().clone();
        let iso = schema.push("iso", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.edge(1, 2).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.7, 0.3], |pa, u| pa[0] ^ (u as Value)),
        )
        .unwrap();
        b.mechanism(
            2,
            Mechanism::with_noise(vec![0.8, 0.2], |pa, u| pa[0] & (1 - u as Value)),
        )
        .unwrap();
        b.mechanism(iso.index(), Mechanism::root(vec![0.4, 0.6]))
            .unwrap();
        let scm2 = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut t = scm2.generate(40_000, &mut rng);
        let pred = crate::blackbox::label_table(&mut t, &f, "pred").unwrap();
        let est = ScoreEstimator::new(&t, Some(scm2.graph()), pred, 1, 0.0).unwrap();
        let s = est.scores(iso, 1, 0, &Context::empty()).unwrap();
        assert!(s.necessity < 0.03, "NEC {}", s.necessity);
        assert!(s.sufficiency < 0.03, "SUF {}", s.sufficiency);
        assert!(s.nesuf < 0.03, "NESUF {}", s.nesuf);
    }

    #[test]
    fn no_graph_fallback_reduces_to_conditional_contrast() {
        // §6: without a graph, SUF = [Pr(o|x,k) − Pr(o|x',k)] / Pr(o'|x',k)
        let (t, pred) = setup(20_000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let s = est.scores(AttrId(1), 1, 0, &Context::empty()).unwrap();
        let p_hi = t
            .conditional_probability(pred, 1, &Context::of([(AttrId(1), 1)]), 0.0)
            .unwrap();
        let p_lo = t
            .conditional_probability(pred, 1, &Context::of([(AttrId(1), 0)]), 0.0)
            .unwrap();
        let expect_suf = ((p_hi - p_lo) / (1.0 - p_lo)).clamp(0.0, 1.0);
        assert!((s.sufficiency - expect_suf).abs() < 1e-9);
        let expect_nec = (((1.0 - p_lo) - (1.0 - p_hi)) / p_hi).clamp(0.0, 1.0);
        assert!((s.necessity - expect_nec).abs() < 1e-9);
        assert!((s.nesuf - (p_hi - p_lo).clamp(0.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn set_contrasts_validated() {
        let (t, pred) = setup(1000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        // mismatched attr sets
        assert!(est
            .scores_set(&[(AttrId(0), 1)], &[(AttrId(1), 0)], &Context::empty())
            .is_err());
        // identical hi/lo
        assert!(est
            .scores_set(&[(AttrId(0), 1)], &[(AttrId(0), 1)], &Context::empty())
            .is_err());
        // duplicate attr
        assert!(est
            .scores_set(
                &[(AttrId(0), 1), (AttrId(0), 0)],
                &[(AttrId(0), 0), (AttrId(0), 1)],
                &Context::empty()
            )
            .is_err());
        // intervening on the prediction column
        assert!(est.scores(pred, 1, 0, &Context::empty()).is_err());
        // context constrains the intervened attribute
        assert!(est
            .scores(AttrId(1), 1, 0, &Context::of([(AttrId(1), 0)]))
            .is_err());
        // set contrast over two attributes works
        let s = est
            .scores_set(
                &[(AttrId(1), 1), (AttrId(2), 1)],
                &[(AttrId(1), 0), (AttrId(2), 0)],
                &Context::empty(),
            )
            .unwrap();
        assert!(
            s.sufficiency > 0.5,
            "joint intervention strongly sufficient"
        );
    }

    #[test]
    fn constructor_validations() {
        let (t, pred) = setup(100);
        assert!(ScoreEstimator::new(&t, None, pred, 2, 0.0).is_err());
        assert!(ScoreEstimator::new(&t, None, pred, 1, -0.5).is_err());
        // non-binary prediction column
        assert!(ScoreEstimator::new(&t, None, AttrId(0), 1, 0.0).is_ok());
        let mut t2 = t.clone();
        let tri = t2
            .add_column(
                "tri",
                Domain::categorical(["a", "b", "c"]),
                vec![0; t.n_rows()],
            )
            .unwrap();
        assert!(ScoreEstimator::new(&t2, None, tri, 1, 0.0).is_err());
    }

    #[test]
    fn local_context_backs_off_to_keep_support() {
        let (t, pred) = setup(5000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 0.0).unwrap();
        let row = t.row(0).unwrap();
        // generous support: keeps C (the only non-descendant of X)
        let ctx = est.local_context(&row, AttrId(1), 10);
        assert!(ctx.constrains(AttrId(0)));
        assert!(
            !ctx.constrains(AttrId(1)),
            "intervention target must stay free"
        );
        assert!(!ctx.constrains(AttrId(2)), "descendants must stay free");
        assert!(!ctx.constrains(pred));
        // impossible support: context collapses to empty
        let ctx2 = est.local_context(&row, AttrId(1), t.n_rows() + 1);
        assert!(ctx2.is_empty());
    }

    #[test]
    fn bounds_are_ordered_on_randomized_tables() {
        // Regression for the final clamp: on small noisy tables the raw
        // Fréchet endpoints routinely land outside [0, 1] or inverted;
        // the returned interval must still satisfy lower <= upper.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..200 {
            let mut schema = Schema::new();
            schema.push("c", Domain::boolean());
            schema.push("x", Domain::boolean());
            schema.push("pred", Domain::boolean());
            let mut t = Table::new(schema);
            let n = rng.gen_range(4..40);
            for _ in 0..n {
                t.push_row(&[
                    rng.gen_range(0..2),
                    rng.gen_range(0..2),
                    rng.gen_range(0..2),
                ])
                .unwrap();
            }
            let mut g = causal::Dag::new(2);
            g.add_edge(0, 1).unwrap();
            let alpha = rng.gen_range(0.0..2.0);
            let est = ScoreEstimator::new(&t, Some(&g), AttrId(2), 1, alpha).unwrap();
            for kind in [
                ScoreKind::Necessity,
                ScoreKind::Sufficiency,
                ScoreKind::NecessityAndSufficiency,
            ] {
                for k in [Context::empty(), Context::of([(AttrId(0), 0)])] {
                    let Ok(b) = est.bounds(kind, AttrId(1), 1, 0, &k) else {
                        continue; // unsupported contrast on this draw
                    };
                    assert!(
                        b.lower <= b.upper,
                        "round {round} {kind:?}: inverted [{}, {}]",
                        b.lower,
                        b.upper
                    );
                    assert!((0.0..=1.0).contains(&b.lower), "round {round}: {}", b.lower);
                    assert!((0.0..=1.0).contains(&b.upper), "round {round}: {}", b.upper);
                }
            }
        }
    }

    #[test]
    fn local_context_drops_least_proximate_first() {
        // Chain A -> B -> X -> D. For target X the candidate context is
        // [B (parent), A (ancestor)], most causally proximate first. The
        // documented back-off drops from the tail: if even {B} alone
        // lacks support, the context must collapse to empty rather than
        // keep the less-proximate A (which the old greedy-add did when
        // {A} happened to have support).
        let mut schema = Schema::new();
        schema.push("a", Domain::boolean());
        schema.push("b", Domain::boolean());
        schema.push("x", Domain::boolean());
        schema.push("d", Domain::boolean());
        schema.push("pred", Domain::boolean());
        let mut t = Table::new(schema);
        // B = 1 occurs once; A = 1 is common.
        t.push_row(&[1, 1, 1, 1, 1]).unwrap();
        for _ in 0..9 {
            t.push_row(&[1, 0, 0, 0, 0]).unwrap();
        }
        for _ in 0..10 {
            t.push_row(&[0, 0, 0, 0, 0]).unwrap();
        }
        let mut g = causal::Dag::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        let est = ScoreEstimator::new(&t, Some(&g), AttrId(4), 1, 0.0).unwrap();
        let row = t.row(0).unwrap();
        // {B=1, A=1} has 1 row, {B=1} has 1 row, {A=1} has 10: the
        // back-off must end empty, never keeping A without B.
        let ctx = est.local_context(&row, AttrId(2), 3);
        assert!(
            !ctx.constrains(AttrId(0)),
            "less-proximate A kept after more-proximate B was dropped"
        );
        assert!(!ctx.constrains(AttrId(1)));
        assert!(ctx.is_empty());
        // With support available for the full context, everything stays.
        let ctx_full = est.local_context(&row, AttrId(2), 1);
        assert!(ctx_full.constrains(AttrId(0)));
        assert!(ctx_full.constrains(AttrId(1)));
        assert!(!ctx_full.constrains(AttrId(3)), "descendant must stay free");
        // Prefix semantics: a mid support level keeps B (proximate) and
        // drops A (least proximate) — here {B=1,A=1} == {B=1} == 1 row,
        // so asking for 1 keeps both; asking for 2 keeps neither.
        let ctx_mid = est.local_context(&row, AttrId(2), 2);
        assert!(ctx_mid.is_empty());
    }

    #[test]
    fn scores_are_probabilities_under_smoothing() {
        let (t, pred) = setup(2000);
        let scm = world();
        for alpha in [0.0, 0.5, 2.0] {
            let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, alpha).unwrap();
            let s = est.scores(AttrId(1), 1, 0, &Context::empty()).unwrap();
            for v in [s.necessity, s.sufficiency, s.nesuf] {
                assert!((0.0..=1.0).contains(&v), "alpha={alpha}: {v}");
            }
        }
    }
}
