//! Multi-class and regression outcome support (paper §4.1, "Extensions").
//!
//! For an ordinal outcome `Dom(O) = {o₁ > … > o_γ}` the paper partitions
//! the domain at a pivot `o` into `O≥` (favourable) and `O<`
//! (unfavourable) and redefines every score against that binary event,
//! e.g. `NEC(k, o) = Pr(O<_{X←x'} | x, O≥, k)`. Regression outcomes are
//! first binned, then thresholded the same way.

use crate::{LewisError, Result};
use tabular::{AttrId, Domain, Table, Value};

/// Append a derived binary column `name` to `table` that is `1` whenever
/// `outcome ≥ pivot` (favourable), `0` otherwise. Returns the new column's
/// id — feed it to [`crate::ScoreEstimator`] as the prediction column.
///
/// `pivot = 0` would make every row favourable, which breaks the scores'
/// contrasts, so it is rejected.
pub fn binarize_outcome(
    table: &mut Table,
    outcome: AttrId,
    pivot: Value,
    name: &str,
) -> Result<AttrId> {
    let card = table.schema().cardinality(outcome)?;
    if pivot == 0 || pivot as usize >= card {
        return Err(LewisError::Invalid(format!(
            "pivot {pivot} must satisfy 1 <= pivot < {card}"
        )));
    }
    let derived: Vec<Value> = table
        .column(outcome)?
        .iter()
        .map(|&v| u32::from(v >= pivot))
        .collect();
    Ok(table.add_column(name, Domain::boolean(), derived)?)
}

/// The favourable/unfavourable partition induced by a pivot, as value
/// lists — useful for reporting.
pub fn partition(card: usize, pivot: Value) -> (Vec<Value>, Vec<Value>) {
    let below = (0..pivot).collect();
    let at_or_above = (pivot..card as Value).collect();
    (below, at_or_above)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Context, Schema};

    fn table() -> (Table, AttrId) {
        let mut s = Schema::new();
        s.push("x", Domain::boolean());
        let o = s.push(
            "usage",
            Domain::categorical(["never", "decade_ago", "last_decade"]),
        );
        let mut t = Table::new(s);
        for row in [[0, 0], [0, 1], [1, 2], [1, 1], [0, 2]] {
            t.push_row(&row).unwrap();
        }
        (t, o)
    }

    #[test]
    fn binarizes_at_pivot() {
        let (mut t, o) = table();
        let b = binarize_outcome(&mut t, o, 1, "used_ever").unwrap();
        assert_eq!(t.column(b).unwrap(), &[0, 1, 1, 1, 1]);
        let b2 = binarize_outcome(&mut t, o, 2, "used_recently").unwrap();
        assert_eq!(t.column(b2).unwrap(), &[0, 0, 1, 0, 1]);
    }

    #[test]
    fn rejects_degenerate_pivots() {
        let (mut t, o) = table();
        assert!(binarize_outcome(&mut t, o, 0, "bad").is_err());
        assert!(binarize_outcome(&mut t, o, 3, "bad").is_err());
    }

    #[test]
    fn derived_column_is_usable_by_estimator() {
        let (mut t, o) = table();
        let b = binarize_outcome(&mut t, o, 2, "fav").unwrap();
        let est = crate::ScoreEstimator::new(&t, None, b, 1, 1.0).unwrap();
        let s = est.scores(AttrId(0), 1, 0, &Context::empty()).unwrap();
        assert!((0.0..=1.0).contains(&s.sufficiency));
    }

    #[test]
    fn partition_layout() {
        let (below, above) = partition(4, 2);
        assert_eq!(below, vec![0, 1]);
        assert_eq!(above, vec![2, 3]);
    }
}
