//! Counterfactual recourse (paper §3.2 "Counterfactual recourse", §4.2).
//!
//! For an individual with a negative decision, find the minimal-cost
//! intervention on a user-specified set of *actionable* attributes `A`
//! whose sufficiency score clears a threshold `α`:
//!
//! ```text
//!   argmin  Σ_A φ_A(a, â)      s.t.  SUF_â(v) ≥ α          (eq. 8)
//! ```
//!
//! Following §4.2, the sufficiency constraint is linearized through a
//! logit-linear surrogate of `Pr(o | â, k)` (eq. 28):
//!
//! ```text
//!   Pr(o | â, k) ≥ Pr(o | a, k) + α · Pr(o' | a, k)
//! ```
//!
//! which turns into a covering constraint over per-value logit gains,
//! solved exactly by the `optim` crate's branch-and-bound. Because the
//! surrogate is approximate, every candidate solution is **verified**
//! against the counting sufficiency estimator; rejected candidates are
//! excluded and the search continues (a lazy no-good cut), escalating the
//! covering target if the surrogate was too optimistic.

use crate::scores::ScoreEstimator;
use crate::{LewisError, Result};
use causal::Dag;
use ml::linalg::dot;
use ml::linear::{
    logit, sigmoid, LogisticRegression, NewtonOptions, OneHotBlock, OneHotDesign, OrdinalFeature,
};
use optim::{Group, IpError, Item, MckpSolver};
use std::sync::Arc;
use tabular::{AttrId, Context, Table, Value};

/// Cost model `φ_A(a, â)` for changing an actionable attribute.
#[derive(Debug, Clone)]
pub enum CostModel {
    /// Every change costs 1 regardless of distance.
    Unit,
    /// Cost = ordinal rank distance under the inferred value order.
    OrdinalLinear,
    /// Cost = squared ordinal rank distance.
    OrdinalQuadratic,
    /// Per-attribute weights multiplying the ordinal rank distance.
    Weighted(Vec<(AttrId, f64)>),
}

impl CostModel {
    fn cost(&self, attr: AttrId, rank_from: usize, rank_to: usize) -> f64 {
        let dist = rank_from.abs_diff(rank_to) as f64;
        match self {
            CostModel::Unit => 1.0,
            CostModel::OrdinalLinear => dist,
            CostModel::OrdinalQuadratic => dist * dist,
            CostModel::Weighted(ws) => {
                let w = ws
                    .iter()
                    .find(|&&(a, _)| a == attr)
                    .map_or(1.0, |&(_, w)| w);
                w * dist
            }
        }
    }
}

/// Options controlling recourse generation.
#[derive(Debug, Clone)]
pub struct RecourseOptions {
    /// Required sufficiency `α` of the recommended action (eq. 8).
    pub alpha: f64,
    /// The action cost model.
    pub cost: CostModel,
    /// Minimum support for the individual's context back-off.
    pub min_support: usize,
    /// Maximum verification rejections before escalating the target.
    pub max_rejections: usize,
    /// Target scaling factors tried in order. Factors **below 1** relax
    /// the surrogate's covering constraint but make data verification
    /// *mandatory* (the surrogate may be pessimistic about cheap actions
    /// the data proves sufficient); factors **at or above 1** tighten
    /// the constraint and fall back to trusting it when verification has
    /// no support.
    pub escalations: Vec<f64>,
}

impl Default for RecourseOptions {
    fn default() -> Self {
        RecourseOptions {
            alpha: 0.75,
            cost: CostModel::OrdinalLinear,
            min_support: 30,
            max_rejections: 200,
            escalations: vec![0.35, 0.7, 1.0, 1.6, 2.5, 4.0],
        }
    }
}

/// One recommended change.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// The actionable attribute.
    pub attr: AttrId,
    /// Display name.
    pub name: String,
    /// Current value code and label.
    pub from: Value,
    /// Recommended value code.
    pub to: Value,
    /// Display labels for `from` / `to`.
    pub from_label: String,
    /// Display label for the recommended value.
    pub to_label: String,
    /// This action's cost under the configured model.
    pub cost: f64,
}

/// A complete recourse recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recourse {
    /// The recommended actions (possibly empty when the individual is
    /// already positively classified).
    pub actions: Vec<Action>,
    /// Total cost.
    pub total_cost: f64,
    /// The *verified* sufficiency of the action set (counting estimator),
    /// `None` when the context had too little support to verify and the
    /// surrogate constraint was trusted instead.
    pub verified_sufficiency: Option<f64>,
    /// The surrogate model's predicted positive probability after acting.
    pub surrogate_probability: f64,
    /// Number of IP constraints in the solved program (reported in the
    /// scalability experiment, §5.5).
    pub n_constraints: usize,
}

/// A fitted recourse surrogate for one *ordered* actionable set: the
/// logit-linear coefficients over the `[one-hot per actionable attr
/// ...][ordinal context]` layout (the order of `actionable` fixes the
/// layout, so the fit is only valid for that exact order), plus the
/// inferred value orders the cost model ranks against. Plain data —
/// cacheable on the engine, exportable through snapshots and `.lewis`
/// packs, so a restored server answers recourse from warm coefficients
/// without refitting.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateFit {
    /// Surrogate intercept.
    pub intercept: f64,
    /// Coefficients over the one-hot + ordinal-context layout.
    pub coefficients: Vec<f64>,
    /// Inferred value order per actionable attribute.
    pub orders: Vec<Vec<Value>>,
}

/// The surrogate's feature layout for one actionable set — derivable
/// from schema + graph alone, no table scan.
pub(crate) struct SurrogatePlan {
    /// One-hot start slot per actionable attribute.
    offsets: Vec<usize>,
    /// Ordinal context attributes appended after the one-hot block.
    context_attrs: Vec<AttrId>,
    /// First ordinal slot.
    ctx_base: usize,
    /// Total feature width.
    width: usize,
}

/// Derive the surrogate feature layout: one-hot slots for each
/// actionable attribute, then one ordinal slot per context attribute
/// (`K` = the non-descendants of `A` per §4.2; with no graph, every
/// non-prediction non-actionable attribute).
pub(crate) fn surrogate_plan(
    table: &Table,
    graph: Option<&Dag>,
    pred: AttrId,
    actionable: &[AttrId],
) -> Result<SurrogatePlan> {
    // K = non-descendants of every actionable attribute (derived
    // columns outside the graph are excluded — they may leak the
    // outcome).
    let context_attrs: Vec<AttrId> = match graph {
        Some(g) => table
            .schema()
            .attr_ids()
            .filter(|&a| {
                a != pred
                    && a.index() < g.n_nodes()
                    && !actionable.contains(&a)
                    && !actionable
                        .iter()
                        .any(|&x| g.is_strict_descendant(a.index(), x.index()))
            })
            .collect(),
        None => table
            .schema()
            .attr_ids()
            .filter(|&a| a != pred && !actionable.contains(&a))
            .collect(),
    };
    let mut offsets = Vec::with_capacity(actionable.len());
    let mut width = 0usize;
    for &a in actionable {
        offsets.push(width);
        width += table.schema().cardinality(a)?;
    }
    let ctx_base = width;
    width += context_attrs.len();
    Ok(SurrogatePlan {
        offsets,
        context_attrs,
        ctx_base,
        width,
    })
}

/// The surrogate's feature width for `actionable` on this table/graph —
/// what `coefficients.len()` of a valid [`SurrogateFit`] must equal.
/// The pack reader uses this to reject foreign-engine surrogate
/// sections (typed `Mismatch`) before anything is restored.
pub fn surrogate_width(
    table: &Table,
    graph: Option<&Dag>,
    pred: AttrId,
    actionable: &[AttrId],
) -> Result<usize> {
    validate_parts(table, graph, pred, actionable)?;
    Ok(surrogate_plan(table, graph, pred, actionable)?.width)
}

/// The configuration checks shared by [`RecourseEngine::new`] and the
/// pack/snapshot validators.
fn validate_parts(
    table: &Table,
    graph: Option<&Dag>,
    pred: AttrId,
    actionable: &[AttrId],
) -> Result<()> {
    if actionable.is_empty() {
        return Err(LewisError::Invalid("no actionable attributes".into()));
    }
    for &a in actionable {
        if a == pred {
            return Err(LewisError::Invalid(
                "prediction column is not actionable".into(),
            ));
        }
        if a.index() >= table.schema().len() {
            return Err(LewisError::Invalid(format!(
                "actionable attribute {a} is not in the schema"
            )));
        }
    }
    if let Some(g) = graph {
        for &a in actionable {
            if a.index() >= g.n_nodes() {
                return Err(LewisError::Invalid(format!(
                    "actionable attribute {a} is not a causal-graph node"
                )));
            }
        }
    }
    Ok(())
}

/// Fit the logit-linear surrogate `Pr(o | a, k)` (eq. 28) for one
/// actionable set: a sparse one-hot + ordinal design borrowed straight
/// from the table's columns (no dense matrix), labels taken from the
/// prediction attribute's bitmap when an index is installed (a word
/// walk instead of a column compare), and a Newton/IRLS fit whose
/// gradient/Hessian sums fan over the engine's shard count — the
/// coefficients are bit-identical for any shard count.
///
/// On a **live** estimator (a delta shard of appended rows overlaid on
/// the frozen base), the design covers base rows first and delta rows
/// after — exactly the concatenated table's row order — so the fit is
/// bit-identical to a cold fit over the concatenated table: same 0/1
/// labels, same column values, same row chunking (a pure function of
/// the total row count and shard count).
pub(crate) fn fit_surrogate(est: &ScoreEstimator, actionable: &[AttrId]) -> Result<SurrogateFit> {
    RecourseEngine::validate(est, actionable)?;
    let table = est.table();
    let pred = est.pred_attr();
    let plan = surrogate_plan(table, est.graph(), pred, actionable)?;
    let delta = est.delta_table().filter(|d| d.n_rows() > 0);
    let mut ys: Vec<u32> = match est.index().and_then(|ix| ix.labels(pred, est.positive())) {
        Some(labels) => labels,
        None => table
            .column(pred)?
            .iter()
            .map(|&v| u32::from(v == est.positive()))
            .collect(),
    };
    let n_rows = table.n_rows() + delta.map_or(0, |d| d.n_rows());
    // The design borrows column slices; with a delta overlaid, the
    // needed attributes ([actionable…, context…]) are materialized as
    // owned base+delta concatenations instead.
    let needed: Vec<AttrId> = actionable
        .iter()
        .chain(plan.context_attrs.iter())
        .copied()
        .collect();
    let owned: Option<Vec<Vec<Value>>> = match delta {
        Some(d) => {
            ys.extend(
                d.column(pred)?
                    .iter()
                    .map(|&v| u32::from(v == est.positive())),
            );
            let mut cols = Vec::with_capacity(needed.len());
            for &a in &needed {
                let mut col = Vec::with_capacity(n_rows);
                col.extend_from_slice(table.column(a)?);
                col.extend_from_slice(d.column(a)?);
                cols.push(col);
            }
            Some(cols)
        }
        None => None,
    };
    let col_of = |slot: usize, a: AttrId| -> Result<&[Value]> {
        match &owned {
            Some(cols) => Ok(cols[slot].as_slice()),
            None => Ok(table.column(a)?),
        }
    };
    let mut blocks = Vec::with_capacity(actionable.len());
    for (i, &a) in actionable.iter().enumerate() {
        blocks.push(OneHotBlock {
            offset: plan.offsets[i],
            cardinality: table.schema().cardinality(a)?,
            codes: col_of(i, a)?,
        });
    }
    let mut ordinals = Vec::with_capacity(plan.context_attrs.len());
    for (j, &a) in plan.context_attrs.iter().enumerate() {
        ordinals.push(OrdinalFeature {
            slot: plan.ctx_base + j,
            values: col_of(actionable.len() + j, a)?,
        });
    }
    let design = OneHotDesign {
        width: plan.width,
        n_rows,
        blocks,
        ordinals,
    };
    let model = LogisticRegression::fit_onehot_newton(
        &design,
        &ys,
        &NewtonOptions::default(),
        est.shards(),
    )?;
    let mut orders = Vec::with_capacity(actionable.len());
    for &a in actionable {
        // Through the counting chokepoint: index-accelerated and
        // delta-aware, bit-identical to the table-scan inference.
        orders.push(est.infer_order(a)?);
    }
    Ok(SurrogateFit {
        intercept: model.intercept,
        coefficients: model.coefficients,
        orders,
    })
}

/// The recourse generator.
pub struct RecourseEngine<'a> {
    est: &'a ScoreEstimator,
    actionable: Vec<AttrId>,
    fit: Arc<SurrogateFit>,
    /// one-hot feature offsets: per actionable attr, start index
    offsets: Vec<usize>,
    /// context attributes appended after the one-hot block
    context_attrs: Vec<AttrId>,
}

impl<'a> RecourseEngine<'a> {
    /// Build an engine for a fixed set of actionable attributes,
    /// fitting the surrogate fresh (see the private `fit_surrogate`'s
    /// docs for the sharded-fit determinism guarantee). Engines with a
    /// surrogate cache go through [`RecourseEngine::with_fit`] instead.
    pub fn new(est: &'a ScoreEstimator, actionable: &[AttrId]) -> Result<Self> {
        let fit = Arc::new(fit_surrogate(est, actionable)?);
        Self::with_fit(est, actionable, fit)
    }

    /// Assemble the generator from an already-fitted surrogate (the
    /// engine's surrogate cache, or coefficients restored from a
    /// `.lewis` pack). Validates the fit's shape against this
    /// estimator's layout, so a foreign engine's fit is rejected as
    /// `Invalid` rather than silently mis-indexed.
    pub fn with_fit(
        est: &'a ScoreEstimator,
        actionable: &[AttrId],
        fit: Arc<SurrogateFit>,
    ) -> Result<Self> {
        Self::validate(est, actionable)?;
        let table = est.table();
        let plan = surrogate_plan(table, est.graph(), est.pred_attr(), actionable)?;
        if fit.coefficients.len() != plan.width {
            return Err(LewisError::Invalid(format!(
                "surrogate has {} coefficients, layout needs {}",
                fit.coefficients.len(),
                plan.width
            )));
        }
        if fit.orders.len() != actionable.len() {
            return Err(LewisError::Invalid(format!(
                "surrogate has {} value orders for {} actionable attributes",
                fit.orders.len(),
                actionable.len()
            )));
        }
        for (&a, order) in actionable.iter().zip(&fit.orders) {
            let card = table.schema().cardinality(a)?;
            if order.len() != card || (0..card as Value).any(|v| !order.contains(&v)) {
                return Err(LewisError::Invalid(format!(
                    "surrogate value order for attribute {a} is not a permutation of its domain"
                )));
            }
        }
        Ok(RecourseEngine {
            est,
            actionable: actionable.to_vec(),
            fit,
            offsets: plan.offsets,
            context_attrs: plan.context_attrs,
        })
    }

    /// The cheap configuration checks [`RecourseEngine::new`] performs
    /// before paying for the surrogate fit. `Engine::run_batch` uses
    /// this to re-derive a failed group's build error per request
    /// without repeating the expensive work.
    pub(crate) fn validate(est: &ScoreEstimator, actionable: &[AttrId]) -> Result<()> {
        validate_parts(est.table(), est.graph(), est.pred_attr(), actionable)
    }

    /// The actionable attributes.
    pub fn actionable(&self) -> &[AttrId] {
        &self.actionable
    }

    /// Number of IP constraints the solver will see (one per actionable
    /// attribute plus the covering constraint).
    pub fn n_constraints(&self) -> usize {
        self.actionable.len() + 1
    }

    /// The surrogate's positive probability for a feature vector.
    fn predict(&self, feat: &[f64]) -> f64 {
        sigmoid(self.fit.intercept + dot(&self.fit.coefficients, feat))
    }

    fn features_for(&self, row: &[Value], overrides: &[(AttrId, Value)]) -> Vec<f64> {
        let width = self.fit.coefficients.len();
        let mut feat = vec![0.0f64; width];
        let value_of = |a: AttrId| -> Value {
            overrides
                .iter()
                .find(|&&(oa, _)| oa == a)
                .map_or(row[a.index()], |&(_, v)| v)
        };
        for (i, &a) in self.actionable.iter().enumerate() {
            feat[self.offsets[i] + value_of(a) as usize] = 1.0;
        }
        let ctx_base = width - self.context_attrs.len();
        for (j, &a) in self.context_attrs.iter().enumerate() {
            feat[ctx_base + j] = f64::from(row[a.index()]);
        }
        feat
    }

    /// Compute recourse for `row` (a full schema row of the labelled
    /// table — including the prediction cell, which identifies
    /// already-positive individuals).
    pub fn recourse(&self, row: &[Value], opts: &RecourseOptions) -> Result<Recourse> {
        if !(0.0..1.0).contains(&opts.alpha) {
            return Err(LewisError::Invalid("alpha must be in [0, 1)".into()));
        }
        let table = self.est.table();
        if row.len() < table.schema().len() {
            return Err(LewisError::Invalid("row too short for schema".into()));
        }
        // Recourse targets negative decisions (§3.2); a positive
        // individual needs no action — constraint (25) holds with δ = 0.
        if row[self.est.pred_attr().index()] == self.est.positive() {
            let p = self.predict(&self.features_for(row, &[]));
            return Ok(Recourse {
                actions: Vec::new(),
                total_cost: 0.0,
                verified_sufficiency: None,
                surrogate_probability: p,
                n_constraints: self.n_constraints(),
            });
        }

        // Individual context: values on the non-descendant attributes,
        // backed off to keep support.
        let k = self.context_with_support(row, opts.min_support);

        // Current surrogate probability and required target (eq. 28).
        let base_feat = self.features_for(row, &[]);
        let p_cur = self.predict(&base_feat);
        let target_p = (p_cur + opts.alpha * (1.0 - p_cur)).min(1.0 - 1e-6);
        let required_gain = logit(target_p) - logit(p_cur);
        if required_gain <= 0.0 {
            return Ok(Recourse {
                actions: Vec::new(),
                total_cost: 0.0,
                verified_sufficiency: None,
                surrogate_probability: p_cur,
                n_constraints: self.n_constraints(),
            });
        }

        // Build IP groups: per actionable attr, one item per alternative
        // value with its logit gain and cost.
        let mut groups = Vec::with_capacity(self.actionable.len());
        for (i, &a) in self.actionable.iter().enumerate() {
            let card = table.schema().cardinality(a)?;
            let current = row[a.index()];
            let beta_cur = self.fit.coefficients[self.offsets[i] + current as usize];
            let order = &self.fit.orders[i];
            let rank_of = |v: Value| order.iter().position(|&o| o == v).unwrap_or(0);
            let cur_rank = rank_of(current);
            let mut items = Vec::with_capacity(card.saturating_sub(1));
            for v in 0..card as Value {
                if v == current {
                    continue;
                }
                let gain = self.fit.coefficients[self.offsets[i] + v as usize] - beta_cur;
                let cost = opts.cost.cost(a, cur_rank, rank_of(v));
                items.push(Item {
                    id: v as usize,
                    cost,
                    gain,
                });
            }
            groups.push(Group {
                id: a.0 as usize,
                items,
            });
        }

        // Solve with lazy verification across the target ladder: relaxed
        // targets (< 1) require data verification to pass; tightened
        // targets (≥ 1) trust the surrogate when the data cannot verify.
        //
        // Relaxed-strict rungs are only tractable when the IP is small:
        // with the covering constraint loosened, cost pruning is the only
        // thing bounding the branch-and-bound, and an all-rejecting
        // validator (exhausted budget) would make the search enumerate an
        // exponential space on large instances.
        let n_items: usize = groups.iter().map(|g| g.items.len()).sum();
        let relaxed_ok = n_items <= 64;
        let mut last_err: LewisError = LewisError::NoRecourse("no feasible action set".into());
        for &esc in &opts.escalations {
            let strict = esc < 1.0;
            if strict && !relaxed_ok {
                continue;
            }
            let solver =
                MckpSolver::new(groups.clone(), required_gain * esc).map_err(LewisError::Optim)?;
            let mut rejections = 0usize;
            let mut verified: Option<f64> = None;
            let result = solver.solve_with(|cand| {
                if cand.chosen.is_empty() {
                    return false; // the individual is negative: act
                }
                if rejections >= opts.max_rejections {
                    // Budget exhausted: accept so the solver terminates
                    // (an incumbent enables cost pruning). In strict mode
                    // the unverified result is discarded below.
                    verified = None;
                    return true;
                }
                match self.verify(row, &cand.chosen, &k, opts.alpha) {
                    Verification::Passed(s) => {
                        verified = Some(s);
                        true
                    }
                    Verification::Failed => {
                        rejections += 1;
                        false
                    }
                    Verification::NoSupport => {
                        rejections += 1;
                        verified = None;
                        !strict
                    }
                }
            });
            if strict && verified.is_none() && result.is_ok() {
                // exhausted the verification budget on a relaxed rung
                // without a data-verified solution: move on
                last_err = LewisError::NoRecourse(format!(
                    "verification budget exhausted at relaxed target ×{esc}"
                ));
                continue;
            }
            match result {
                Ok(solution) => {
                    let actions: Vec<Action> = solution
                        .chosen
                        .iter()
                        .map(|&(gid, vid)| {
                            let attr = AttrId(gid as u32);
                            let from = row[attr.index()];
                            let to = vid as Value;
                            let dom = table.schema().attr(attr).expect("valid").domain.clone();
                            let i = self.actionable.iter().position(|&a| a == attr).unwrap();
                            let order = &self.fit.orders[i];
                            let rank_of =
                                |v: Value| order.iter().position(|&o| o == v).unwrap_or(0);
                            Action {
                                attr,
                                name: table.schema().name(attr).to_string(),
                                from,
                                to,
                                from_label: dom.label(from),
                                to_label: dom.label(to),
                                cost: opts.cost.cost(attr, rank_of(from), rank_of(to)),
                            }
                        })
                        .collect();
                    let overrides: Vec<(AttrId, Value)> =
                        actions.iter().map(|a| (a.attr, a.to)).collect();
                    let p_new = self.predict(&self.features_for(row, &overrides));
                    return Ok(Recourse {
                        actions,
                        total_cost: solution.total_cost,
                        verified_sufficiency: verified,
                        surrogate_probability: p_new,
                        n_constraints: self.n_constraints(),
                    });
                }
                Err(IpError::Infeasible) => {
                    last_err = LewisError::NoRecourse(format!(
                        "no action set reaches sufficiency {} (escalation {esc})",
                        opts.alpha
                    ));
                    continue;
                }
                Err(e) => return Err(LewisError::Optim(e)),
            }
        }
        Err(last_err)
    }

    /// Verify a candidate action set with the counting sufficiency
    /// estimator. The evidence context is the individual's backed-off
    /// non-descendant context *plus* the current values of actionable
    /// attributes that are not being changed (they are part of the
    /// individual `v` in `SUF_â(v)`, and they are non-descendants of the
    /// changed set whenever the graph says so).
    fn verify(
        &self,
        row: &[Value],
        chosen: &[(usize, usize)],
        k: &Context,
        alpha: f64,
    ) -> Verification {
        let hi: Vec<(AttrId, Value)> = chosen
            .iter()
            .map(|&(gid, vid)| (AttrId(gid as u32), vid as Value))
            .collect();
        let lo: Vec<(AttrId, Value)> = hi.iter().map(|&(a, _)| (a, row[a.index()])).collect();
        // context must not constrain the intervened attributes
        let mut k2 = k.clone();
        for &(a, _) in &hi {
            k2.unset(a);
        }
        // condition on unchanged actionable attributes (when they are not
        // downstream of the changed ones)
        for &a in &self.actionable {
            if hi.iter().any(|&(c, _)| c == a) {
                continue;
            }
            let is_descendant = self.est.graph().is_some_and(|g| {
                hi.iter()
                    .any(|&(c, _)| g.is_strict_descendant(a.index(), c.index()))
            });
            if !is_descendant {
                k2.set(a, row[a.index()]);
            }
        }
        match self.est.sufficiency_set(&hi, &lo, &k2) {
            Ok(s) => {
                if s >= alpha {
                    Verification::Passed(s)
                } else {
                    Verification::Failed
                }
            }
            Err(_) => Verification::NoSupport,
        }
    }

    /// The individual's context on non-descendants of the actionable set,
    /// greedily backed off to keep at least `min_support` matching rows.
    /// Support probes go through the estimator's chokepoint — the
    /// per-(feature, code) bitmap index when one is installed, a table
    /// scan otherwise, plus the delta shard on live tables — so the
    /// back-off sees the same integers a scan of the (concatenated)
    /// table would.
    fn context_with_support(&self, row: &[Value], min_support: usize) -> Context {
        let mut ctx = Context::empty();
        for &a in &self.context_attrs {
            let trial = ctx.with(a, row[a.index()]);
            if self.est.support_count(&trial) >= min_support {
                ctx = trial;
            }
        }
        ctx
    }
}

enum Verification {
    Passed(f64),
    Failed,
    NoSupport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use crate::scores::ScoreEstimator;
    use causal::scm::{Mechanism, ScmBuilder};
    use causal::Scm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema, Table};

    /// age (non-actionable root), savings (actionable, 3 levels),
    /// duration (actionable, 2 levels); approval = savings >= 1 && dur == 1,
    /// with age opening an extra path: age=1 && savings >= 2 also approves.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("age", Domain::boolean());
        schema.push("savings", Domain::categorical(["none", "some", "lots"]));
        schema.push("duration", Domain::categorical(["short", "long"]));
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.4, 0.35, 0.25], move |pa, u| {
                // older people save a bit more
                ((u as Value) + pa[0]).min(2)
            }),
        )
        .unwrap();
        b.mechanism(2, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.build().unwrap()
    }

    fn approve(row: &[Value]) -> Value {
        u32::from((row[1] >= 1 && row[2] == 1) || (row[0] == 1 && row[1] >= 2))
    }

    fn setup(n: usize) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(21);
        let mut t = scm.generate(n, &mut rng);
        let pred = label_table(&mut t, &approve, "pred").unwrap();
        (t, pred)
    }

    #[test]
    fn recourse_flips_the_decision() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 1.0).unwrap();
        let engine = RecourseEngine::new(&est, &[AttrId(1), AttrId(2)]).unwrap();
        // a young individual with no savings, short duration: rejected
        let row = [0u32, 0, 0, 0];
        assert_eq!(approve(&row), 0);
        let opts = RecourseOptions {
            alpha: 0.8,
            ..RecourseOptions::default()
        };
        let r = engine.recourse(&row, &opts).unwrap();
        assert!(!r.actions.is_empty(), "rejected individual needs action");
        // applying the actions must actually flip the black box
        let mut new_row = row;
        for a in &r.actions {
            new_row[a.attr.index()] = a.to;
        }
        assert_eq!(
            approve(&new_row),
            1,
            "recourse {:?} must flip decision",
            r.actions
        );
        // verified sufficiency clears the threshold
        if let Some(s) = r.verified_sufficiency {
            assert!(s >= 0.8, "verified sufficiency {s}");
        }
        assert_eq!(r.n_constraints, 3);
    }

    #[test]
    fn already_positive_needs_no_action() {
        let (t, pred) = setup(10_000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 1.0).unwrap();
        let engine = RecourseEngine::new(&est, &[AttrId(1), AttrId(2)]).unwrap();
        // savings=lots, duration=long, prediction cell = 1: approved
        let row = [1u32, 2, 1, 1];
        assert_eq!(approve(&row), 1);
        let opts = RecourseOptions {
            alpha: 0.5,
            ..RecourseOptions::default()
        };
        let r = engine.recourse(&row, &opts).unwrap();
        assert!(r.actions.is_empty(), "positive individual needs no action");
        assert_eq!(r.total_cost, 0.0);
        assert!(r.surrogate_probability > 0.8);
    }

    #[test]
    fn minimal_cost_action_is_chosen() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let est = ScoreEstimator::new(&t, Some(scm.graph()), pred, 1, 1.0).unwrap();
        let engine = RecourseEngine::new(&est, &[AttrId(1), AttrId(2)]).unwrap();
        // savings=some already; only duration needs fixing. The minimal
        // unit-cost action is {duration -> long}.
        let row = [0u32, 1, 0, 0];
        assert_eq!(approve(&row), 0);
        let opts = RecourseOptions {
            alpha: 0.7,
            cost: CostModel::Unit,
            ..RecourseOptions::default()
        };
        let r = engine.recourse(&row, &opts).unwrap();
        assert_eq!(r.actions.len(), 1, "one action suffices: {:?}", r.actions);
        assert_eq!(r.actions[0].attr, AttrId(2));
        assert_eq!(r.actions[0].to, 1);
        assert!((r.total_cost - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_no_action_helps() {
        // actionable attribute that the model ignores
        let (t, pred) = setup(5_000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 1.0).unwrap();
        // age is causal for savings but with savings/duration fixed it
        // cannot flip the model output for this individual... instead use
        // the truly ignored scenario: only `age` actionable, and request
        // very high alpha.
        let engine = RecourseEngine::new(&est, &[AttrId(0)]).unwrap();
        let row = [0u32, 0, 0, 0];
        let opts = RecourseOptions {
            alpha: 0.95,
            ..RecourseOptions::default()
        };
        let r = engine.recourse(&row, &opts);
        assert!(
            matches!(
                r,
                Err(LewisError::NoRecourse(_)) | Err(LewisError::Optim(_))
            ),
            "age alone cannot guarantee approval: {r:?}"
        );
    }

    #[test]
    fn cost_models_change_selection() {
        let (t, pred) = setup(20_000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 1.0).unwrap();
        let engine = RecourseEngine::new(&est, &[AttrId(1), AttrId(2)]).unwrap();
        let row = [0u32, 0, 0, 0];
        // make changing duration prohibitively expensive: savings path wins
        let opts = RecourseOptions {
            alpha: 0.5,
            cost: CostModel::Weighted(vec![(AttrId(1), 1.0), (AttrId(2), 100.0)]),
            ..RecourseOptions::default()
        };
        match engine.recourse(&row, &opts) {
            Ok(r) => {
                // whatever is chosen, it should avoid the expensive attr
                // unless strictly necessary; verify cost sanity
                assert!(r.total_cost < 200.0);
            }
            Err(LewisError::NoRecourse(_)) => {} // acceptable: savings alone may not verify
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn input_validation() {
        let (t, pred) = setup(1_000);
        let est = ScoreEstimator::new(&t, None, pred, 1, 1.0).unwrap();
        assert!(RecourseEngine::new(&est, &[]).is_err());
        assert!(RecourseEngine::new(&est, &[pred]).is_err());
        let engine = RecourseEngine::new(&est, &[AttrId(1)]).unwrap();
        let opts = RecourseOptions {
            alpha: 1.5,
            ..RecourseOptions::default()
        };
        assert!(engine.recourse(&[0, 0, 0, 0], &opts).is_err());
        assert!(engine
            .recourse(&[0, 0], &RecourseOptions::default())
            .is_err());
    }
}
