//! Global, contextual and local explanations (paper §3.2).
//!
//! * **Global** (`K = ∅`): for every attribute, the maximum of each score
//!   over all ordered value pairs — Figure 3's rankings.
//! * **Contextual** (user-defined `K = k`): the same scores inside a
//!   sub-population — Figure 4's group comparisons.
//! * **Local** (`K = V`): per-attribute positive/negative contributions
//!   for one individual — Figures 5–7's bar charts. The context is the
//!   individual's values on the non-descendants of the probed attribute
//!   (descendants must stay free to respond to the intervention), with a
//!   support-driven back-off.

use crate::ordering::{infer_value_order, ordered_pairs};
use crate::scores::{Contrast, ScoreEstimator, Scores};
use crate::{LewisError, Result};
use causal::Dag;
use rayon::prelude::*;
use tabular::{AttrId, Context, Table, Value};

/// Scores for one attribute, maximized over value contrasts.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeScores {
    /// The attribute.
    pub attr: AttrId,
    /// Its display name.
    pub name: String,
    /// Component-wise maximum scores over all ordered value pairs.
    pub scores: Scores,
    /// The contrast `(hi, lo)` achieving the maximum NESUF.
    pub best_pair: (Value, Value),
}

/// A full global explanation: every feature, ranked by NESUF.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalExplanation {
    /// Per-attribute maxima, sorted by descending NESUF.
    pub attributes: Vec<AttributeScores>,
}

impl GlobalExplanation {
    /// 1-based rank of an attribute under a score component extractor.
    pub fn rank_by(&self, attr: AttrId, component: impl Fn(&Scores) -> f64) -> Option<usize> {
        let mut scored: Vec<(f64, AttrId)> = self
            .attributes
            .iter()
            .map(|a| (component(&a.scores), a.attr))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        scored.iter().position(|&(_, a)| a == attr).map(|i| i + 1)
    }
}

/// Scores for one attribute inside one sub-population.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextualExplanation {
    /// The probed attribute.
    pub attr: AttrId,
    /// The sub-population.
    pub context: Context,
    /// Maximum scores over value pairs within the context.
    pub scores: Scores,
}

/// One attribute's contribution to an individual's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalContribution {
    /// The attribute.
    pub attr: AttrId,
    /// Display name.
    pub name: String,
    /// The individual's value of the attribute.
    pub value: Value,
    /// Display label of the value.
    pub label: String,
    /// Positive contribution in `[0, 1]` — how much holding this value
    /// (rather than a worse one) supports the current outcome direction.
    pub positive: f64,
    /// Negative contribution in `[0, 1]` — how much a better value would
    /// change the outcome.
    pub negative: f64,
}

/// A local explanation for one individual.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExplanation {
    /// The algorithm's decision for this individual.
    pub outcome: Value,
    /// Per-attribute contributions, sorted by descending
    /// `max(positive, negative)`.
    pub contributions: Vec<LocalContribution>,
}

/// The LEWIS explanation generator: wraps a [`ScoreEstimator`] with value
/// orderings and the §3.2 explanation recipes.
pub struct Lewis<'a> {
    est: ScoreEstimator<'a>,
    features: Vec<AttrId>,
    orders: Vec<Option<Vec<Value>>>,
    /// Minimum matching rows for local contexts before back-off.
    pub min_support: usize,
}

impl<'a> Lewis<'a> {
    /// Build an explainer over a labelled `table`.
    ///
    /// * `graph` — causal diagram (or `None` for the §6 fallback);
    /// * `pred` — the black box's prediction column (binary);
    /// * `positive` — the favourable outcome code;
    /// * `features` — the attributes to explain (exclude the prediction
    ///   column and any raw outcome columns).
    pub fn new(
        table: &'a Table,
        graph: Option<&'a Dag>,
        pred: AttrId,
        positive: Value,
        features: &[AttrId],
        alpha: f64,
    ) -> Result<Self> {
        if features.contains(&pred) {
            return Err(LewisError::Invalid("features must not include the prediction".into()));
        }
        let est = ScoreEstimator::new(table, graph, pred, positive, alpha)?;
        let mut orders = vec![None; table.schema().len()];
        for &a in features {
            let order = infer_value_order(table, a, pred, positive)?;
            orders[a.index()] = Some(order);
        }
        Ok(Lewis { est, features: features.to_vec(), orders, min_support: 30 })
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &ScoreEstimator<'a> {
        &self.est
    }

    /// The explained features.
    pub fn features(&self) -> &[AttrId] {
        &self.features
    }

    /// The inferred (ascending) value order of a feature.
    pub fn value_order(&self, attr: AttrId) -> Option<&[Value]> {
        self.orders.get(attr.index()).and_then(|o| o.as_deref())
    }

    /// Maximum scores over all ordered value pairs of `attr` within `k`.
    /// Pairs without data support are skipped; if no pair has support the
    /// scores are zero.
    ///
    /// All pairs of one attribute intervene on the same attribute set,
    /// so they are scored as one [`ScoreEstimator::scores_batch`] call
    /// sharing a single counting pass over the table.
    pub fn attribute_scores(&self, attr: AttrId, k: &Context) -> Result<AttributeScores> {
        let order = self
            .value_order(attr)
            .ok_or_else(|| LewisError::Invalid(format!("{attr} is not an explained feature")))?;
        let pairs = ordered_pairs(order);
        let contrasts: Vec<Contrast> = pairs
            .iter()
            .map(|&(hi, lo)| Contrast::single(attr, hi, lo))
            .collect();
        let mut best = Scores::default();
        let mut best_pair = (0, 0);
        for (&(hi, lo), result) in pairs.iter().zip(self.est.scores_batch(&contrasts, k)) {
            match result {
                Ok(s) => {
                    if s.nesuf > best.nesuf {
                        best.nesuf = s.nesuf;
                        best_pair = (hi, lo);
                    }
                    best.necessity = best.necessity.max(s.necessity);
                    best.sufficiency = best.sufficiency.max(s.sufficiency);
                }
                Err(LewisError::Invalid(_)) => continue, // unsupported pair
                Err(e) => return Err(e),
            }
        }
        Ok(AttributeScores {
            attr,
            name: self.est.table().schema().name(attr).to_string(),
            scores: best,
            best_pair,
        })
    }

    /// Global explanation (`K = ∅`, Figure 3).
    pub fn global(&self) -> Result<GlobalExplanation> {
        self.contextual_global(&Context::empty())
    }

    /// Global-shaped explanation within a context (used for Figure 4 and
    /// the sub-population audits).
    ///
    /// Per-attribute scoring fans out across threads; results are
    /// gathered in feature order and sorted with a total tie-break, so
    /// the explanation is identical for every thread count.
    pub fn contextual_global(&self, k: &Context) -> Result<GlobalExplanation> {
        let free: Vec<AttrId> = self
            .features
            .iter()
            .copied()
            .filter(|a| !k.constrains(*a))
            .collect();
        let scored: Vec<Result<AttributeScores>> = free
            .par_iter()
            .map(|&a| self.attribute_scores(a, k))
            .collect();
        let mut attributes = Vec::with_capacity(scored.len());
        for result in scored {
            attributes.push(result?);
        }
        attributes.sort_by(|x, y| {
            y.scores
                .nesuf
                .partial_cmp(&x.scores.nesuf)
                .expect("finite")
                .then_with(|| x.attr.cmp(&y.attr))
        });
        Ok(GlobalExplanation { attributes })
    }

    /// Contextual explanation of one attribute in one sub-population
    /// (Figure 4's bars).
    pub fn contextual(&self, attr: AttrId, k: &Context) -> Result<ContextualExplanation> {
        let scores = self.attribute_scores(attr, k)?.scores;
        Ok(ContextualExplanation { attr, context: k.clone(), scores })
    }

    /// Local explanation for one individual (Figures 5–7).
    ///
    /// For a **negative** outcome, an attribute's *negative* contribution
    /// is `max_{x > x'} SUF` (a better value would likely flip the
    /// decision) and its *positive* contribution is `max_{x'' < x'} SUF`
    /// (the current value already helps relative to worse ones). For a
    /// **positive** outcome the same roles are played by the necessity
    /// score (§3.2).
    pub fn local(&self, row: &[Value]) -> Result<LocalExplanation> {
        let pred = self.est.pred_attr();
        if row.len() < self.est.table().schema().len() {
            return Err(LewisError::Invalid(format!(
                "row has {} values, schema needs {}",
                row.len(),
                self.est.table().schema().len()
            )));
        }
        let outcome = row[pred.index()];
        let favourable = outcome == self.est.positive();
        // Per-attribute contributions are independent: fan out across
        // threads, and within one attribute score every value contrast
        // off a single shared counting pass.
        let scored: Vec<Result<LocalContribution>> = self
            .features
            .par_iter()
            .map(|&a| self.local_contribution(a, row, favourable))
            .collect();
        let mut contributions = Vec::with_capacity(scored.len());
        for result in scored {
            contributions.push(result?);
        }
        contributions.sort_by(|x, y| {
            let mx = x.positive.max(x.negative);
            let my = y.positive.max(y.negative);
            my.partial_cmp(&mx).expect("finite").then_with(|| x.attr.cmp(&y.attr))
        });
        Ok(LocalExplanation { outcome, contributions })
    }

    /// One attribute's local contribution (the §3.2 rules; see
    /// [`Lewis::local`] for the positive/negative semantics).
    fn local_contribution(
        &self,
        a: AttrId,
        row: &[Value],
        favourable: bool,
    ) -> Result<LocalContribution> {
        let order = self.value_order(a).expect("feature orders precomputed");
        let current = row[a.index()];
        let pos_rank = order
            .iter()
            .position(|&v| v == current)
            .expect("current value in domain");
        let k = self.est.local_context(row, a, self.min_support);
        // values worse / better than current, per the inferred order;
        // every contrast shares the same attribute and context, so the
        // whole attribute costs one counting pass.
        let mut directions: Vec<bool> = Vec::with_capacity(order.len().saturating_sub(1));
        let mut contrasts: Vec<Contrast> = Vec::with_capacity(order.len().saturating_sub(1));
        for (rank, &v) in order.iter().enumerate() {
            if rank == pos_rank {
                continue;
            }
            let is_positive = rank < pos_rank;
            let (hi, lo) = if is_positive { (current, v) } else { (v, current) };
            directions.push(is_positive);
            contrasts.push(Contrast::single(a, hi, lo));
        }
        let mut positive = 0.0f64;
        let mut negative = 0.0f64;
        for (is_positive, result) in
            directions.iter().zip(self.est.scores_batch(&contrasts, &k))
        {
            match result {
                Ok(s) => {
                    // positive outcome: NEC quantifies both directions;
                    // negative outcome: SUF does (§3.2)
                    let score = if favourable { s.necessity } else { s.sufficiency };
                    if *is_positive {
                        positive = positive.max(score);
                    } else {
                        negative = negative.max(score);
                    }
                }
                Err(LewisError::Invalid(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        let label = self
            .est
            .table()
            .schema()
            .attr(a)
            .map(|at| at.domain.label(current))
            .unwrap_or_default();
        Ok(LocalContribution {
            attr: a,
            name: self.est.table().schema().name(a).to_string(),
            value: current,
            label,
            positive,
            negative,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use causal::scm::{Mechanism, ScmBuilder};
    use causal::Scm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// Loan world: status (3 levels) and savings (2) cause approval;
    /// noise attribute `hair` does not. savings depends on status.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("status", Domain::categorical(["bad", "ok", "good"]));
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("hair", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.3, 0.4, 0.3])).unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.7, 0.3], |pa, u| {
                u32::from(pa[0] == 2) | (u as Value & u32::from(pa[0] == 1))
            }),
        )
        .unwrap();
        b.mechanism(2, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.build().unwrap()
    }

    fn approve(row: &[Value]) -> Value {
        u32::from(row[0] + row[1] >= 2)
    }

    fn setup(n: usize) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(13);
        let mut t = scm.generate(n, &mut rng);
        let pred = label_table(&mut t, &approve, "pred").unwrap();
        (t, pred)
    }

    #[test]
    fn global_ranks_causal_attributes_above_noise() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let lewis = Lewis::new(
            &t,
            Some(scm.graph()),
            pred,
            1,
            &[AttrId(0), AttrId(1), AttrId(2)],
            0.0,
        )
        .unwrap();
        let g = lewis.global().unwrap();
        assert_eq!(g.attributes.len(), 3);
        // hair must rank last with ~zero scores
        let last = g.attributes.last().unwrap();
        assert_eq!(last.attr, AttrId(2));
        assert!(last.scores.nesuf < 0.05);
        // status (root cause, also reaches approval through savings)
        // should dominate
        assert_eq!(g.attributes[0].attr, AttrId(0));
        assert!(g.attributes[0].scores.sufficiency > 0.3);
        // rank_by agrees
        assert_eq!(g.rank_by(AttrId(0), |s| s.nesuf), Some(1));
        assert_eq!(g.rank_by(AttrId(2), |s| s.nesuf), Some(3));
    }

    #[test]
    fn contextual_scores_differ_across_groups() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let lewis = Lewis::new(
            &t,
            Some(scm.graph()),
            pred,
            1,
            &[AttrId(0), AttrId(1)],
            0.0,
        )
        .unwrap();
        // savings' effect inside status groups: with status=good the loan
        // is often approved regardless, so sufficiency of savings is
        // higher for ok-status than bad-status individuals
        let bad = lewis
            .contextual(AttrId(1), &Context::of([(AttrId(0), 0)]))
            .unwrap();
        let ok = lewis
            .contextual(AttrId(1), &Context::of([(AttrId(0), 1)]))
            .unwrap();
        assert!(
            ok.scores.sufficiency > bad.scores.sufficiency + 0.5,
            "ok {} vs bad {}",
            ok.scores.sufficiency,
            bad.scores.sufficiency
        );
    }

    #[test]
    fn contextual_global_skips_constrained_attribute() {
        let (t, pred) = setup(5000);
        let lewis =
            Lewis::new(&t, None, pred, 1, &[AttrId(0), AttrId(1), AttrId(2)], 0.0).unwrap();
        let g = lewis
            .contextual_global(&Context::of([(AttrId(0), 2)]))
            .unwrap();
        assert!(g.attributes.iter().all(|a| a.attr != AttrId(0)));
    }

    #[test]
    fn local_explanations_flag_improvable_attributes() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let lewis = Lewis::new(
            &t,
            Some(scm.graph()),
            pred,
            1,
            &[AttrId(0), AttrId(1), AttrId(2)],
            0.0,
        )
        .unwrap();
        // a rejected individual: bad status, low savings
        let rejected = lewis.local(&[0, 0, 0, 0]).unwrap();
        assert_eq!(rejected.outcome, 0);
        let status = rejected
            .contributions
            .iter()
            .find(|c| c.attr == AttrId(0))
            .unwrap();
        assert!(
            status.negative > 0.5,
            "raising bad status should be highly sufficient, got {}",
            status.negative
        );
        assert!(status.positive < 0.1, "bad status cannot contribute positively");
        let hair = rejected
            .contributions
            .iter()
            .find(|c| c.attr == AttrId(2))
            .unwrap();
        assert!(hair.negative < 0.1 && hair.positive < 0.1);
        // an approved individual: good status, high savings
        let approved = lewis.local(&[2, 1, 0, 1]).unwrap();
        assert_eq!(approved.outcome, 1);
        let status_a = approved
            .contributions
            .iter()
            .find(|c| c.attr == AttrId(0))
            .unwrap();
        assert!(
            status_a.positive > 0.5,
            "good status is necessary for approval, got {}",
            status_a.positive
        );
    }

    #[test]
    fn local_validates_row_shape() {
        let (t, pred) = setup(500);
        let lewis = Lewis::new(&t, None, pred, 1, &[AttrId(0)], 0.0).unwrap();
        assert!(lewis.local(&[0, 0]).is_err());
    }

    #[test]
    fn features_must_exclude_prediction() {
        let (t, pred) = setup(500);
        assert!(Lewis::new(&t, None, pred, 1, &[pred], 0.0).is_err());
    }

    #[test]
    fn value_orders_are_exposed() {
        let (t, pred) = setup(5000);
        let lewis = Lewis::new(&t, None, pred, 1, &[AttrId(0)], 0.0).unwrap();
        let order = lewis.value_order(AttrId(0)).unwrap();
        // approval rate rises with status level
        assert_eq!(order, &[0, 1, 2]);
        assert!(lewis.value_order(AttrId(1)).is_none());
    }
}
