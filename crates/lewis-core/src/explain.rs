//! Global, contextual and local explanation *result* types (paper §3.2),
//! plus the deprecated borrowed [`Lewis`] facade.
//!
//! * **Global** (`K = ∅`): for every attribute, the maximum of each score
//!   over all ordered value pairs — Figure 3's rankings.
//! * **Contextual** (user-defined `K = k`): the same scores inside a
//!   sub-population — Figure 4's group comparisons.
//! * **Local** (`K = V`): per-attribute positive/negative contributions
//!   for one individual — Figures 5–7's bar charts.
//!
//! The queries themselves are answered by [`crate::Engine`] — the owned,
//! `Send + Sync` entry point built with [`crate::Engine::builder`].
//! [`Lewis`] remains for one release as a thin shim over `Engine` for
//! code still written against the borrowed API.

use crate::engine::Engine;
use crate::scores::{ScoreEstimator, Scores};
use crate::Result;
use causal::Dag;
use std::marker::PhantomData;
use tabular::{AttrId, Context, Table, Value};

/// Scores for one attribute, maximized over value contrasts.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeScores {
    /// The attribute.
    pub attr: AttrId,
    /// Its display name.
    pub name: String,
    /// Component-wise maximum scores over all ordered value pairs.
    pub scores: Scores,
    /// The contrast `(hi, lo)` achieving the maximum NESUF, or `None`
    /// when no ordered pair of this attribute had data support (in which
    /// case every score is zero).
    pub best_pair: Option<(Value, Value)>,
}

/// A full global explanation: every feature, ranked by NESUF.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalExplanation {
    /// Per-attribute maxima, sorted by descending NESUF.
    pub attributes: Vec<AttributeScores>,
}

impl GlobalExplanation {
    /// 1-based rank of an attribute under a score component extractor.
    pub fn rank_by(&self, attr: AttrId, component: impl Fn(&Scores) -> f64) -> Option<usize> {
        let mut scored: Vec<(f64, AttrId)> = self
            .attributes
            .iter()
            .map(|a| (component(&a.scores), a.attr))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.iter().position(|&(_, a)| a == attr).map(|i| i + 1)
    }
}

/// Scores for one attribute inside one sub-population.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextualExplanation {
    /// The probed attribute.
    pub attr: AttrId,
    /// The sub-population.
    pub context: Context,
    /// Maximum scores over value pairs within the context.
    pub scores: Scores,
}

/// One attribute's contribution to an individual's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalContribution {
    /// The attribute.
    pub attr: AttrId,
    /// Display name.
    pub name: String,
    /// The individual's value of the attribute.
    pub value: Value,
    /// Display label of the value.
    pub label: String,
    /// Positive contribution in `[0, 1]` — how much holding this value
    /// (rather than a worse one) supports the current outcome direction.
    pub positive: f64,
    /// Negative contribution in `[0, 1]` — how much a better value would
    /// change the outcome.
    pub negative: f64,
}

/// A local explanation for one individual.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExplanation {
    /// The algorithm's decision for this individual.
    pub outcome: Value,
    /// Per-attribute contributions, sorted by descending
    /// `max(positive, negative)`.
    pub contributions: Vec<LocalContribution>,
}

/// Deprecated borrowed facade over [`Engine`].
///
/// `Lewis` predates the owned engine: it borrowed its table, could not
/// cross threads, and was built from six positional arguments. It now
/// wraps an [`Engine`] (cloning the table and graph on construction —
/// prefer [`Engine::builder`], which can share them without copying) and
/// will be removed after one release.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::builder(table).prediction(..).features(..).build()` — \
            the owned engine is Send + Sync, shares counting passes across \
            queries, and does not clone the table"
)]
pub struct Lewis<'a> {
    engine: Engine,
    /// Minimum matching rows for local contexts before back-off.
    pub min_support: usize,
    /// The historical API borrowed the table; the shim keeps the
    /// lifetime so downstream signatures stay valid.
    _borrow: PhantomData<&'a Table>,
}

#[allow(deprecated)]
impl<'a> Lewis<'a> {
    /// Build an explainer over a labelled `table` (cloned into the
    /// underlying engine).
    ///
    /// * `graph` — causal diagram (or `None` for the §6 fallback);
    /// * `pred` — the black box's prediction column (binary);
    /// * `positive` — the favourable outcome code;
    /// * `features` — the attributes to explain (exclude the prediction
    ///   column and any raw outcome columns).
    pub fn new(
        table: &'a Table,
        graph: Option<&'a Dag>,
        pred: AttrId,
        positive: Value,
        features: &[AttrId],
        alpha: f64,
    ) -> Result<Self> {
        let mut builder = Engine::builder(table.clone())
            .prediction(pred, positive)
            .features(features)
            .alpha(alpha);
        if let Some(g) = graph {
            builder = builder.graph(g);
        }
        let engine = builder.build()?;
        let min_support = engine.min_support();
        Ok(Lewis {
            engine,
            min_support,
            _borrow: PhantomData,
        })
    }

    /// The wrapped engine (migration escape hatch).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &ScoreEstimator {
        self.engine.estimator()
    }

    /// The explained features.
    pub fn features(&self) -> &[AttrId] {
        self.engine.features()
    }

    /// The inferred (ascending) value order of a feature.
    pub fn value_order(&self, attr: AttrId) -> Option<&[Value]> {
        self.engine.value_order(attr)
    }

    /// See [`Engine::attribute_scores`].
    pub fn attribute_scores(&self, attr: AttrId, k: &Context) -> Result<AttributeScores> {
        self.engine.attribute_scores(attr, k)
    }

    /// See [`Engine::global`].
    pub fn global(&self) -> Result<GlobalExplanation> {
        self.engine.global()
    }

    /// See [`Engine::contextual_global`].
    pub fn contextual_global(&self, k: &Context) -> Result<GlobalExplanation> {
        self.engine.contextual_global(k)
    }

    /// See [`Engine::contextual`].
    pub fn contextual(&self, attr: AttrId, k: &Context) -> Result<ContextualExplanation> {
        self.engine.contextual(attr, k)
    }

    /// See [`Engine::local`] (honouring the shim's mutable
    /// `min_support` field).
    pub fn local(&self, row: &[Value]) -> Result<LocalExplanation> {
        self.engine.local_with_support(row, self.min_support)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use crate::engine::Engine;
    use causal::scm::{Mechanism, ScmBuilder};
    use causal::Scm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// Loan world: status (3 levels) and savings (2) cause approval;
    /// noise attribute `hair` does not. savings depends on status.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("status", Domain::categorical(["bad", "ok", "good"]));
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("hair", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.3, 0.4, 0.3]))
            .unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.7, 0.3], |pa, u| {
                u32::from(pa[0] == 2) | (u as Value & u32::from(pa[0] == 1))
            }),
        )
        .unwrap();
        b.mechanism(2, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.build().unwrap()
    }

    fn approve(row: &[Value]) -> Value {
        u32::from(row[0] + row[1] >= 2)
    }

    fn setup(n: usize) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(13);
        let mut t = scm.generate(n, &mut rng);
        let pred = label_table(&mut t, &approve, "pred").unwrap();
        (t, pred)
    }

    #[test]
    fn shim_matches_engine_everywhere() {
        let (t, pred) = setup(8000);
        let scm = world();
        let features = [AttrId(0), AttrId(1), AttrId(2)];
        let lewis = Lewis::new(&t, Some(scm.graph()), pred, 1, &features, 0.5).unwrap();
        let engine = Engine::builder(t.clone())
            .graph(scm.graph())
            .prediction(pred, 1)
            .features(&features)
            .alpha(0.5)
            .build()
            .unwrap();
        assert_eq!(lewis.global().unwrap(), engine.global().unwrap());
        let k = Context::of([(AttrId(0), 1)]);
        assert_eq!(
            lewis.contextual_global(&k).unwrap(),
            engine.contextual_global(&k).unwrap()
        );
        assert_eq!(
            lewis.contextual(AttrId(1), &k).unwrap(),
            engine.contextual(AttrId(1), &k).unwrap()
        );
        let row = t.row(3).unwrap();
        assert_eq!(lewis.local(&row).unwrap(), engine.local(&row).unwrap());
        assert_eq!(lewis.features(), engine.features());
        assert_eq!(lewis.value_order(AttrId(0)), engine.value_order(AttrId(0)));
    }

    #[test]
    fn shim_min_support_field_still_steers_local_contexts() {
        let (t, pred) = setup(3000);
        let mut lewis = Lewis::new(&t, None, pred, 1, &[AttrId(0), AttrId(1)], 0.5).unwrap();
        let row = t.row(0).unwrap();
        let default_support = lewis.local(&row).unwrap();
        // an impossible support floor forces every local context to
        // back off to empty — same scores for all rows sharing a value
        lewis.min_support = t.n_rows() + 1;
        let no_support = lewis.local(&row).unwrap();
        assert_eq!(default_support.outcome, no_support.outcome);
        assert_eq!(
            no_support.contributions.len(),
            default_support.contributions.len()
        );
    }

    #[test]
    fn features_must_exclude_prediction() {
        let (t, pred) = setup(500);
        assert!(Lewis::new(&t, None, pred, 1, &[pred], 0.0).is_err());
    }

    #[test]
    fn value_orders_are_exposed() {
        let (t, pred) = setup(5000);
        let lewis = Lewis::new(&t, None, pred, 1, &[AttrId(0)], 0.0).unwrap();
        let order = lewis.value_order(AttrId(0)).unwrap();
        // approval rate rises with status level
        assert_eq!(order, &[0, 1, 2]);
        assert!(lewis.value_order(AttrId(1)).is_none());
    }

    #[test]
    fn contextual_scores_differ_across_groups() {
        let (t, pred) = setup(20_000);
        let scm = world();
        let lewis =
            Lewis::new(&t, Some(scm.graph()), pred, 1, &[AttrId(0), AttrId(1)], 0.0).unwrap();
        // savings' effect inside status groups: with status=good the loan
        // is often approved regardless, so sufficiency of savings is
        // higher for ok-status than bad-status individuals
        let bad = lewis
            .contextual(AttrId(1), &Context::of([(AttrId(0), 0)]))
            .unwrap();
        let ok = lewis
            .contextual(AttrId(1), &Context::of([(AttrId(0), 1)]))
            .unwrap();
        assert!(
            ok.scores.sufficiency > bad.scores.sufficiency + 0.5,
            "ok {} vs bad {}",
            ok.scores.sufficiency,
            bad.scores.sufficiency
        );
    }

    #[test]
    fn contextual_global_skips_constrained_attribute() {
        let (t, pred) = setup(5000);
        let lewis = Lewis::new(&t, None, pred, 1, &[AttrId(0), AttrId(1), AttrId(2)], 0.0).unwrap();
        let g = lewis
            .contextual_global(&Context::of([(AttrId(0), 2)]))
            .unwrap();
        assert!(g.attributes.iter().all(|a| a.attr != AttrId(0)));
    }

    #[test]
    fn rank_by_survives_nan_components() {
        // total_cmp ordering: a NaN-producing extractor must not panic
        let g = GlobalExplanation {
            attributes: vec![
                AttributeScores {
                    attr: AttrId(0),
                    name: "a".into(),
                    scores: Scores {
                        necessity: 0.2,
                        sufficiency: 0.1,
                        nesuf: 0.5,
                    },
                    best_pair: Some((1, 0)),
                },
                AttributeScores {
                    attr: AttrId(1),
                    name: "b".into(),
                    scores: Scores {
                        necessity: 0.0,
                        sufficiency: 0.0,
                        nesuf: 0.1,
                    },
                    best_pair: None,
                },
            ],
        };
        // extractor yields 2.0 for `a` and NaN (0/0) for `b`: the old
        // partial_cmp comparator panicked here; total_cmp ranks the NaN
        // deterministically (at whichever extreme its sign bit puts it)
        let rank_a = g.rank_by(AttrId(0), |s| s.necessity / s.sufficiency);
        let rank_b = g.rank_by(AttrId(1), |s| s.necessity / s.sufficiency);
        let mut ranks = [rank_a.unwrap(), rank_b.unwrap()];
        ranks.sort_unstable();
        assert_eq!(ranks, [1, 2], "both attributes ranked, no panic");
        assert_eq!(g.rank_by(AttrId(7), |s| s.nesuf), None);
    }
}
