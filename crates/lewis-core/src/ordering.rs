//! Inferring value orderings from the black box.
//!
//! LEWIS "relies on the ordinal importance of attribute values. … In case
//! the attribute values do not possess a natural ordering or the ordering
//! is not known apriori, LEWIS infers it from the output of the black-box
//! algorithm" (§1, §4.1): values are ranked by the algorithm's positive
//! rate among rows holding that value.

use tabular::{AttrId, Context, Table, Value};

/// Order the domain values of `attr` ascending by
/// `Pr(pred = positive | attr = v)` computed over `table`.
///
/// Ties break toward the natural code order, and unobserved values sort
/// first (lowest evidence of helping). The returned vector is a
/// permutation of the domain codes: `result[0]` is the "worst" value,
/// `result.last()` the "best".
pub fn infer_value_order(
    table: &Table,
    attr: AttrId,
    pred: AttrId,
    positive: Value,
) -> tabular::Result<Vec<Value>> {
    let card = table.schema().cardinality(attr)?;
    let mut stats: Vec<(u64, u64)> = Vec::with_capacity(card);
    for v in 0..card as Value {
        let ctx = Context::of([(attr, v)]);
        let n = table.count(&ctx);
        let pos = table.count(&ctx.with(pred, positive));
        stats.push((n as u64, pos as u64));
    }
    Ok(infer_value_order_from_stats(&stats))
}

/// [`infer_value_order`] from pre-counted per-value statistics:
/// `stats[v] = (rows with attr = v, of those, rows predicted positive)`.
///
/// The score of an observed value is `positives / rows` — exactly the
/// unsmoothed `Pr(pred = positive | attr = v)` the table-scan path
/// computes (`(pos + 0.0) / (n + 0.0)` with `α = 0` is bit-identical to
/// `pos / n`), so any caller that supplies the same integers gets the
/// same order. This is the live-table entry point: an engine carrying a
/// delta shard merges base and delta counts (integer addition, in shard
/// order) and ranks here, matching a cold build over the concatenated
/// table bit for bit.
pub fn infer_value_order_from_stats(stats: &[(u64, u64)]) -> Vec<Value> {
    let scored = stats
        .iter()
        .enumerate()
        .map(|(v, &(n, pos))| {
            let score = if n == 0 {
                -1.0 // unobserved: no evidence it helps
            } else {
                pos as f64 / n as f64
            };
            (score, v as Value)
        })
        .collect();
    rank(scored)
}

/// Sort `(score, value)` pairs ascending by score (ties by code) and
/// strip the scores. `total_cmp` gives a total, panic-free order even
/// if a black box ever leaks a NaN score: NaN ranks above +inf, so a
/// poisoned value lands at the "best" end instead of aborting the
/// explanation pipeline.
fn rank(mut scored: Vec<(f64, Value)>) -> Vec<Value> {
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, v)| v).collect()
}

/// All ordered pairs `(hi, lo)` with `hi` ranked strictly above `lo` in
/// `order` — the candidate `(x, x')` contrasts for explanation scores.
pub fn ordered_pairs(order: &[Value]) -> Vec<(Value, Value)> {
    let mut out = Vec::with_capacity(order.len() * (order.len() - 1) / 2);
    for (i, &lo) in order.iter().enumerate() {
        for &hi in &order[i + 1..] {
            out.push((hi, lo));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Domain, Schema};

    fn labelled_table() -> (Table, AttrId, AttrId) {
        let mut s = Schema::new();
        let x = s.push("x", Domain::categorical(["a", "b", "c"]));
        let p = s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        // positive rates: a -> 0/2, b -> 2/2, c -> 1/2
        for row in [[0, 0], [0, 0], [1, 1], [1, 1], [2, 0], [2, 1]] {
            t.push_row(&row).unwrap();
        }
        (t, x, p)
    }

    #[test]
    fn orders_by_positive_rate() {
        let (t, x, p) = labelled_table();
        let order = infer_value_order(&t, x, p, 1).unwrap();
        assert_eq!(order, vec![0, 2, 1]); // a < c < b
    }

    #[test]
    fn unobserved_values_sort_first() {
        let mut s = Schema::new();
        let x = s.push("x", Domain::categorical(["a", "b", "c"]));
        let p = s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        t.push_row(&[1, 1]).unwrap();
        t.push_row(&[2, 0]).unwrap();
        let order = infer_value_order(&t, x, p, 1).unwrap();
        assert_eq!(order[0], 0, "never-seen value ranks lowest");
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn ties_break_by_code() {
        let mut s = Schema::new();
        let x = s.push("x", Domain::categorical(["a", "b"]));
        let p = s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        t.push_row(&[0, 1]).unwrap();
        t.push_row(&[1, 1]).unwrap();
        let order = infer_value_order(&t, x, p, 1).unwrap();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn nan_scores_rank_highest_without_panicking() {
        // A NaN score must not abort ranking (the old comparator used
        // partial_cmp + expect). Under total_cmp, NaN > +inf, so the
        // poisoned value pins to the very top; everything else keeps
        // its ascending-score order and ties still break by code.
        let order = rank(vec![
            (0.5, 0),
            (f64::NAN, 1),
            (f64::INFINITY, 2),
            (-1.0, 3),
            (0.5, 4),
        ]);
        assert_eq!(order, vec![3, 0, 4, 2, 1]);
    }

    #[test]
    fn pairs_enumerate_upper_triangle() {
        let pairs = ordered_pairs(&[0, 2, 1]);
        assert_eq!(pairs, vec![(2, 0), (1, 0), (1, 2)]);
        assert!(ordered_pairs(&[7]).is_empty());
    }
}
