//! The owned, shareable explanation engine — LEWIS as a *system*.
//!
//! The paper frames LEWIS as one trained estimator answering many
//! global / contextual / local / recourse queries over the same labelled
//! table (§3.2–§4.2). This module is that front door:
//!
//! * [`Engine`] owns its inputs behind `Arc`s, is `Send + Sync`, and can
//!   be shared across threads (`Arc<Engine>`) or cloned handles without
//!   copying the table;
//! * [`EngineBuilder`] replaces the six-positional-argument constructor
//!   with named, defaulted settings:
//!
//!   ```no_run
//!   # use lewis_core::Engine;
//!   # use tabular::{AttrId, Table, Schema};
//!   # let table: Table = Table::new(Schema::new());
//!   # let dag = causal::Dag::new(0);
//!   let engine = Engine::builder(table)
//!       .graph(&dag)
//!       .prediction(AttrId(3), 1)
//!       .features(&[AttrId(0), AttrId(1), AttrId(2)])
//!       .alpha(1.0)
//!       .min_support(30)
//!       .build()?;
//!   # Ok::<(), lewis_core::LewisError>(())
//!   ```
//!
//! * [`ExplainRequest`] / [`ExplainResponse`] make every query kind one
//!   uniform `run` call, and [`Engine::run_batch`] answers many requests
//!   while sharing work between them (one fitted recourse surrogate per
//!   actionable set, one counting pass per `(intervened set, context)`);
//! * a bounded, thread-safe **counting-pass cache** inside the engine
//!   reuses [`ArmTable`](crate::scores) scans across repeated and
//!   batched queries — results are bit-identical to cold evaluation
//!   (property-tested), just without the redundant table scans.

use crate::cache::{CountingCache, PassKey};
use crate::explain::{
    AttributeScores, ContextualExplanation, GlobalExplanation, LocalContribution, LocalExplanation,
};
use crate::ordering::{infer_value_order_from_stats, ordered_pairs};
use crate::recourse::{fit_surrogate, Recourse, RecourseEngine, RecourseOptions, SurrogateFit};
use crate::scores::{ArmTable, CellArms, Contrast, ScoreEstimator, Scores};
use crate::snapshot::{
    ArmSnapshot, CacheSnapshot, CellSnapshot, EngineSnapshot, PassSnapshot, SurrogateCacheSnapshot,
    SurrogateSnapshot,
};
use crate::surrogates::SurrogateCache;
use crate::{LewisError, Result};
use causal::Dag;
use rayon::prelude::*;
use std::sync::Arc;
use tabular::{AttrId, Context, Table, Value};

pub use crate::cache::CacheStats;

/// Default minimum matching rows for local-context back-off.
const DEFAULT_MIN_SUPPORT: usize = 30;
/// Default Laplace pseudo-count.
const DEFAULT_ALPHA: f64 = 1.0;
/// Default bound on resident counting passes.
const DEFAULT_CACHE_CAPACITY: usize = 256;
/// Default bound on resident fitted recourse surrogates. Real traffic
/// repeats a handful of actionable sets, so a small bound captures the
/// working set while capping memory for adversarial mixes. Public so
/// pack readers can apply the same default to pre-v4 packs, which
/// predate the surrogate cache.
pub const DEFAULT_SURROGATE_CAPACITY: usize = 32;

/// The default shard count for new engines: 1 (a single contiguous
/// counting pass), unless the `LEWIS_TEST_SHARDS` environment variable
/// overrides it. The override exists so CI can run the *entire* test
/// suite under a non-trivial shard count — sharded and unsharded
/// engines are bit-identical by construction, so every test must pass
/// under any value. [`EngineBuilder::shards`] always wins over the env.
fn default_shards() -> usize {
    std::env::var("LEWIS_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Whether new engines build a bitmap index by default: no, unless the
/// `LEWIS_TEST_INDEX` environment variable is set to `1`. Like
/// [`default_shards`], the override exists so CI can run the entire
/// test suite with indexed counting — indexed and scanned passes are
/// bit-identical by construction, so every test must pass either way.
/// [`EngineBuilder::index`] always wins over the env.
fn default_index() -> bool {
    std::env::var("LEWIS_TEST_INDEX").is_ok_and(|v| v == "1")
}

/// One explanation query, ready to be answered by [`Engine::run`].
///
/// The variants mirror the paper's query taxonomy (§3.2): the context
/// `K` ranges from empty (global) over a sub-population (contextual) to
/// a full individual (local), plus actionable recourse (§4.2).
#[derive(Debug, Clone)]
pub enum ExplainRequest {
    /// Every feature ranked over the whole population (`K = ∅`).
    Global,
    /// A global-shaped ranking inside the sub-population `k`.
    ContextualGlobal {
        /// The sub-population.
        k: Context,
    },
    /// One attribute's scores inside the sub-population `k`.
    Contextual {
        /// The probed attribute.
        attr: AttrId,
        /// The sub-population.
        k: Context,
    },
    /// Per-attribute contributions for one individual (`K = V`).
    Local {
        /// A full schema row, including the prediction cell.
        row: Vec<Value>,
    },
    /// Minimal-cost actionable recourse for one individual.
    Recourse {
        /// A full schema row, including the prediction cell.
        row: Vec<Value>,
        /// The attributes the individual can act on.
        actionable: Vec<AttrId>,
        /// Cost model, sufficiency threshold, etc.
        opts: RecourseOptions,
    },
}

/// The answer to one [`ExplainRequest`], same variant order.
#[derive(Debug, Clone)]
pub enum ExplainResponse {
    /// Answer to [`ExplainRequest::Global`] / [`ExplainRequest::ContextualGlobal`].
    Global(GlobalExplanation),
    /// Answer to [`ExplainRequest::Contextual`].
    Contextual(ContextualExplanation),
    /// Answer to [`ExplainRequest::Local`].
    Local(LocalExplanation),
    /// Answer to [`ExplainRequest::Recourse`].
    Recourse(Recourse),
}

impl ExplainResponse {
    /// The global explanation, if this response carries one.
    pub fn into_global(self) -> Option<GlobalExplanation> {
        match self {
            ExplainResponse::Global(g) => Some(g),
            _ => None,
        }
    }

    /// The contextual explanation, if this response carries one.
    pub fn into_contextual(self) -> Option<ContextualExplanation> {
        match self {
            ExplainResponse::Contextual(c) => Some(c),
            _ => None,
        }
    }

    /// The local explanation, if this response carries one.
    pub fn into_local(self) -> Option<LocalExplanation> {
        match self {
            ExplainResponse::Local(l) => Some(l),
            _ => None,
        }
    }

    /// The recourse recommendation, if this response carries one.
    pub fn into_recourse(self) -> Option<Recourse> {
        match self {
            ExplainResponse::Recourse(r) => Some(r),
            _ => None,
        }
    }
}

/// Typed, defaulted construction of an [`Engine`] — see
/// [`Engine::builder`].
pub struct EngineBuilder {
    table: Arc<Table>,
    graph: Option<Arc<Dag>>,
    pred: Option<AttrId>,
    positive: Value,
    features: Option<Vec<AttrId>>,
    alpha: f64,
    min_support: usize,
    cache_capacity: usize,
    surrogate_capacity: usize,
    shards: usize,
    index: bool,
}

impl EngineBuilder {
    fn new(table: Arc<Table>) -> Self {
        EngineBuilder {
            table,
            graph: None,
            pred: None,
            positive: 1,
            features: None,
            alpha: DEFAULT_ALPHA,
            min_support: DEFAULT_MIN_SUPPORT,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            surrogate_capacity: DEFAULT_SURROGATE_CAPACITY,
            shards: default_shards(),
            index: default_index(),
        }
    }

    /// Use `graph` as the causal diagram (cloned into shared ownership;
    /// see [`EngineBuilder::graph_shared`] for the zero-copy variant).
    /// Without a graph the engine uses the §6 no-confounding fallback.
    #[must_use]
    pub fn graph(mut self, graph: &Dag) -> Self {
        self.graph = Some(Arc::new(graph.clone()));
        self
    }

    /// Use an already-shared causal diagram without copying it.
    #[must_use]
    pub fn graph_shared(mut self, graph: Arc<Dag>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The black box's binary prediction column and the favourable
    /// outcome code. **Required.**
    #[must_use]
    pub fn prediction(mut self, pred: AttrId, positive: Value) -> Self {
        self.pred = Some(pred);
        self.positive = positive;
        self
    }

    /// The attributes to explain (exclude the prediction column and any
    /// raw outcome columns). **Required.**
    #[must_use]
    pub fn features(mut self, features: &[AttrId]) -> Self {
        self.features = Some(features.to_vec());
        self
    }

    /// Laplace pseudo-count for the inner conditionals (default 1.0).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Minimum matching rows for local-context back-off (default 30).
    #[must_use]
    pub fn min_support(mut self, min_support: usize) -> Self {
        self.min_support = min_support;
        self
    }

    /// Maximum counting passes kept resident in the engine's cache
    /// (default 256; clamped to at least 1).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Maximum fitted recourse surrogates kept resident (default 32;
    /// clamped to at least 1). Each entry is one actionable set's
    /// logit-linear surrogate — the expensive full-table fit recourse
    /// queries would otherwise repeat.
    #[must_use]
    pub fn surrogate_capacity(mut self, capacity: usize) -> Self {
        self.surrogate_capacity = capacity;
        self
    }

    /// Fan every counting pass over `shards` fixed-boundary row shards
    /// (default 1, or `LEWIS_TEST_SHARDS` when set; clamped to at
    /// least 1). Results are **bit-identical** for every shard count —
    /// per-shard counts are integers merged in shard-index order, so
    /// the merged pass equals a single contiguous scan exactly
    /// (property-tested in `tests/shard_parity.rs`). Sharding only
    /// changes wall-clock: on multi-core machines the shards count in
    /// parallel via the rayon shim.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Build a per-(feature, code) bitmap index at construction time
    /// (default off, or on when `LEWIS_TEST_INDEX=1` is set). With an
    /// index, counting passes and support probes become word-level
    /// `AND` + popcount intersections whenever the index's cost model
    /// says that is cheaper than a row scan. Results are
    /// **bit-identical** with and without the index (property-tested in
    /// `tests/index_parity.rs`); only cold-query wall-clock changes.
    #[must_use]
    pub fn index(mut self, enabled: bool) -> Self {
        self.index = enabled;
        self
    }

    /// Validate the configuration and build the engine (infers the
    /// per-feature value orderings up front, like the paper's offline
    /// phase).
    pub fn build(self) -> Result<Engine> {
        let pred = self.pred.ok_or_else(|| {
            LewisError::Invalid("EngineBuilder: prediction(pred, positive) is required".into())
        })?;
        let features = self.features.ok_or_else(|| {
            LewisError::Invalid("EngineBuilder: features(&[...]) is required".into())
        })?;
        if features.is_empty() {
            return Err(LewisError::Invalid("features must not be empty".into()));
        }
        if features.contains(&pred) {
            return Err(LewisError::Invalid(
                "features must not include the prediction".into(),
            ));
        }
        let est =
            ScoreEstimator::from_shared(self.table, self.graph, pred, self.positive, self.alpha)?
                .with_shards(self.shards)
                .with_index(self.index)?;
        let mut orders = vec![None; est.table().schema().len()];
        let mut base_stats = Vec::with_capacity(features.len());
        for &a in &features {
            let stats = est.base_order_stats(a)?;
            orders[a.index()] = Some(infer_value_order_from_stats(&stats));
            base_stats.push(stats);
        }
        Ok(Engine {
            est,
            features,
            orders,
            min_support: self.min_support,
            cache: CountingCache::new(self.cache_capacity),
            surrogates: SurrogateCache::new(self.surrogate_capacity),
            base_order_stats: Some(base_stats),
        })
    }
}

/// The LEWIS explanation engine: one owned, thread-shareable object
/// answering every query kind of §3.2/§4.2 over one labelled table,
/// with counting passes shared across queries.
pub struct Engine {
    est: ScoreEstimator,
    features: Vec<AttrId>,
    orders: Vec<Option<Vec<Value>>>,
    min_support: usize,
    cache: CountingCache,
    surrogates: SurrogateCache,
    /// Per-feature `(rows, positives)`-per-value stats over the **base**
    /// table (`base_order_stats[i]` aligned with `features[i]`). Base
    /// stats are append-invariant, so [`Engine::with_delta`] merges each
    /// delta's cheap scan on top of them instead of re-counting the base
    /// per batch. `None` until the first append needs them — restored
    /// and freshly compacted engines start lazy.
    base_order_stats: Option<Vec<Vec<(u64, u64)>>>,
}

impl Engine {
    /// Start building an engine over `table` (pass a `Table` to hand
    /// over ownership, or an `Arc<Table>` to share without copying).
    pub fn builder(table: impl Into<Arc<Table>>) -> EngineBuilder {
        EngineBuilder::new(table.into())
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &ScoreEstimator {
        &self.est
    }

    /// The labelled table.
    pub fn table(&self) -> &Table {
        self.est.table()
    }

    /// The causal diagram, if one was supplied.
    pub fn graph(&self) -> Option<&Dag> {
        self.est.graph()
    }

    /// The explained features.
    pub fn features(&self) -> &[AttrId] {
        &self.features
    }

    /// Minimum matching rows for local-context back-off.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Row shards every counting pass fans over (1 = single pass).
    pub fn shards(&self) -> usize {
        self.est.shards()
    }

    /// Whether a per-(feature, code) bitmap index is installed.
    pub fn index_enabled(&self) -> bool {
        self.est.index().is_some()
    }

    /// Rows in the write-side delta shard (0 for frozen engines).
    pub fn delta_rows(&self) -> usize {
        self.est.delta_rows()
    }

    /// The write-side delta shard itself, when one is overlaid. A live
    /// ingestion layer restoring a mid-stream engine reads this to pick
    /// up appending exactly where the pack's watermark left off.
    pub fn delta_table(&self) -> Option<&Arc<Table>> {
        self.est.delta_table()
    }

    /// Base rows plus delta rows — the logical size of the served table.
    pub fn total_rows(&self) -> usize {
        self.est.n_total_rows()
    }

    /// Heap bytes held by the bitmap index (0 without one).
    pub fn index_memory_bytes(&self) -> u64 {
        self.est.index().map_or(0, |i| i.memory_bytes())
    }

    /// The inferred (ascending) value order of a feature.
    pub fn value_order(&self, attr: AttrId) -> Option<&[Value]> {
        self.orders.get(attr.index()).and_then(|o| o.as_deref())
    }

    /// Counting-pass cache counters (hits / misses / residency).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Recourse-surrogate cache counters (hits / misses / residency).
    pub fn surrogate_stats(&self) -> CacheStats {
        self.surrogates.stats()
    }

    /// Fit (or reuse) the recourse surrogate for `actionable` so later
    /// recourse queries over the same set answer from warm
    /// coefficients. Pack compilation uses this to pre-warm the cache
    /// the snapshot will carry.
    pub fn prepare_surrogate(&self, actionable: &[AttrId]) -> Result<()> {
        self.surrogate_for(actionable).map(|_| ())
    }

    /// The cached (or freshly fitted) surrogate for one actionable set.
    fn surrogate_for(&self, actionable: &[AttrId]) -> Result<Arc<SurrogateFit>> {
        self.surrogates
            .get_or_build(actionable, || fit_surrogate(&self.est, actionable))
    }

    /// Drop all cached counting passes (results are unaffected — the
    /// next queries just pay their scans again).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Capture everything needed to rebuild this engine exactly —
    /// configuration, inferred value orders, and the warm counting-pass
    /// cache. The table and graph are shared into the snapshot, not
    /// copied. See [`crate::snapshot`] for the fidelity guarantees and
    /// [`Engine::restore`] for the inverse.
    pub fn snapshot(&self) -> EngineSnapshot {
        let (s_hits, s_misses, s_entries) = self.surrogates.export();
        let fits = s_entries
            .into_iter()
            .map(|(actionable, fit)| SurrogateSnapshot {
                actionable,
                intercept: fit.intercept,
                coefficients: fit.coefficients.clone(),
                orders: fit.orders.clone(),
            })
            .collect();
        let (hits, misses, entries) = self.cache.export();
        let passes = entries
            .into_iter()
            .map(|(key, arms)| PassSnapshot {
                xs: key.xs,
                context: key.k,
                c_set: key.c_set,
                total: arms.total,
                cells: arms
                    .cells
                    .iter()
                    .map(|(cell_key, cell)| CellSnapshot {
                        key: cell_key.clone(),
                        rows: cell.n,
                        arms: cell
                            .arms
                            .iter()
                            .map(|(assignment, (rows, positives))| ArmSnapshot {
                                assignment: assignment.clone(),
                                rows: *rows,
                                positives: *positives,
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        EngineSnapshot {
            table: self.est.shared_table(),
            graph: self.est.shared_graph(),
            pred: self.est.pred_attr(),
            positive: self.est.positive(),
            alpha: self.est.alpha(),
            min_support: self.min_support,
            cache_capacity: self.cache.stats().capacity,
            shards: self.est.shards(),
            features: self.features.clone(),
            orders: self.orders.clone(),
            cache: CacheSnapshot {
                hits,
                misses,
                passes,
            },
            surrogate_capacity: self.surrogates.stats().capacity,
            surrogates: SurrogateCacheSnapshot {
                hits: s_hits,
                misses: s_misses,
                fits,
            },
            index: self.est.index().map(Arc::clone),
            delta: self.est.delta_table().cloned(),
        }
    }

    /// Rebuild an engine from a snapshot, **without** re-inferring value
    /// orders or re-running counting passes: the restored engine answers
    /// every query byte-for-byte like the donor (property-tested in
    /// `tests/pack_engine.rs`).
    ///
    /// The snapshot is validated structurally before anything is trusted
    /// — feature/order/cache inconsistencies against the table's schema
    /// are reported as [`LewisError::Invalid`], never absorbed, so a
    /// mismatched table + snapshot pairing cannot produce a garbage
    /// engine.
    pub fn restore(snapshot: EngineSnapshot) -> Result<Engine> {
        let EngineSnapshot {
            table,
            graph,
            pred,
            positive,
            alpha,
            min_support,
            cache_capacity,
            shards,
            features,
            orders,
            cache,
            surrogate_capacity,
            surrogates,
            index,
            delta,
        } = snapshot;
        // An out-of-range shard count can only come from a hand-crafted
        // (or corrupted) snapshot: reject it rather than silently
        // clamping — a crafted count must never size an allocation.
        if shards == 0 || shards > tabular::MAX_SHARDS {
            return Err(LewisError::Invalid(format!(
                "snapshot: shard count {shards} outside [1, {}]",
                tabular::MAX_SHARDS
            )));
        }
        let mut est =
            ScoreEstimator::from_shared(table, graph, pred, positive, alpha)?.with_shards(shards);
        // An index that disagrees with the table (row count or
        // per-attribute cardinalities) can only come from a mismatched
        // pairing: reject it rather than serve wrong counts.
        if let Some(index) = index {
            if !index.matches(est.table()) {
                return Err(LewisError::Invalid(
                    "snapshot: bitmap index does not match the table".into(),
                ));
            }
            est.install_index(index);
        }
        // Overlay a live donor's delta shard before anything downstream
        // validates row counts: its passes may legitimately count more
        // rows than the base table alone holds. The overlay re-checks
        // the schema pairing and rebuilds the delta bitmaps.
        if let Some(delta) = delta {
            est = est.with_delta_overlay(delta)?;
        }
        let schema = est.table().schema();
        if features.is_empty() {
            return Err(LewisError::Invalid(
                "snapshot: features must not be empty".into(),
            ));
        }
        if features.contains(&pred) {
            return Err(LewisError::Invalid(
                "snapshot: features must not include the prediction".into(),
            ));
        }
        for (i, &a) in features.iter().enumerate() {
            schema.attr(a)?;
            // any *order* is legitimate (builders take features in user
            // order), but a duplicate would score and report the same
            // attribute twice
            if features[..i].contains(&a) {
                return Err(LewisError::Invalid(format!(
                    "snapshot: feature {a} appears more than once"
                )));
            }
        }
        if orders.len() != schema.len() {
            return Err(LewisError::Invalid(format!(
                "snapshot: {} value orders for a schema of {} attributes",
                orders.len(),
                schema.len()
            )));
        }
        for (i, order) in orders.iter().enumerate() {
            let a = AttrId(i as u32);
            let is_feature = features.contains(&a);
            match order {
                None if is_feature => {
                    return Err(LewisError::Invalid(format!(
                        "snapshot: feature {a} has no value order"
                    )))
                }
                Some(_) if !is_feature => {
                    return Err(LewisError::Invalid(format!(
                        "snapshot: non-feature {a} carries a value order"
                    )))
                }
                Some(order) => {
                    let card = schema.cardinality(a)?;
                    let mut sorted = order.clone();
                    sorted.sort_unstable();
                    if sorted != (0..card as Value).collect::<Vec<_>>() {
                        return Err(LewisError::Invalid(format!(
                            "snapshot: value order of {a} is not a permutation of its domain"
                        )));
                    }
                }
                None => {}
            }
        }
        let entries = cache
            .passes
            .into_iter()
            .map(|pass| restore_pass(&est, pass))
            .collect::<Result<Vec<_>>>()?;
        // Each surrogate must fit this engine's layout exactly — the
        // same shape checks a warm lookup would apply. A fit from a
        // foreign engine (different schema, graph or actionable set)
        // is rejected typed, never served.
        let fits = surrogates
            .fits
            .into_iter()
            .map(|s| {
                let fit = Arc::new(SurrogateFit {
                    intercept: s.intercept,
                    coefficients: s.coefficients,
                    orders: s.orders,
                });
                RecourseEngine::with_fit(&est, &s.actionable, Arc::clone(&fit))
                    .map_err(|e| LewisError::Invalid(format!("snapshot surrogate: {e}")))?;
                Ok((s.actionable, fit))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Engine {
            est,
            features,
            orders,
            min_support,
            cache: CountingCache::restore(cache_capacity, cache.hits, cache.misses, entries),
            surrogates: SurrogateCache::restore(
                surrogate_capacity,
                surrogates.hits,
                surrogates.misses,
                fits,
            ),
            base_order_stats: None,
        })
    }

    /// A new engine over the same base artifacts with `delta` overlaid
    /// as the write-side shard — the live-table append path.
    ///
    /// `delta` carries **all** rows appended since the base table froze
    /// (a live table keeps one growing shard); `appended` is just the
    /// batch appended by *this* call, used for precise cache
    /// invalidation. Everything the returned engine answers is
    /// bit-identical to a cold build over the concatenated table:
    ///
    /// * counting passes and support probes merge the delta's partial
    ///   counts after the base shards (integer addition, shard-index
    ///   order — see [`crate::scores`]);
    /// * value orders re-rank from merged per-value integer stats; the
    ///   base half is append-invariant and computed at most once per
    ///   engine lineage, so a batch costs one scan of the delta only;
    /// * the counting-pass cache keeps exactly the entries whose context
    ///   matches **no** appended row — such passes never read the new
    ///   rows, so their arms already equal the concatenated table's;
    ///   every other entry is dropped, and lifetime hit/miss counters
    ///   carry on;
    /// * resident surrogate fits are marked stale per actionable set
    ///   (every fit reads every row) instead of being flushed: the keys
    ///   stay resident and refit lazily, over base + delta, on their
    ///   next lookup.
    pub fn with_delta(&self, delta: Arc<Table>, appended: &[Vec<Value>]) -> Result<Engine> {
        let est = self.est.with_delta_overlay(delta)?;
        let base_stats = match &self.base_order_stats {
            Some(stats) => stats.clone(),
            None => self
                .features
                .iter()
                .map(|&a| self.est.base_order_stats(a))
                .collect::<Result<Vec<_>>>()?,
        };
        let mut orders = vec![None; est.table().schema().len()];
        for (stats, &a) in base_stats.iter().zip(&self.features) {
            let merged: Vec<(u64, u64)> = stats
                .iter()
                .zip(est.delta_order_stats(a)?)
                .map(|(&(n, pos), (dn, dpos))| (n + dn, pos + dpos))
                .collect();
            orders[a.index()] = Some(infer_value_order_from_stats(&merged));
        }
        let (hits, misses, entries) = self.cache.export();
        let retained: Vec<_> = entries
            .into_iter()
            .filter(|(key, _)| !appended.iter().any(|row| key.k.matches_row(row)))
            .collect();
        let (s_hits, s_misses, fits) = self.surrogates.export_full();
        let fits = if appended.is_empty() {
            fits
        } else {
            fits.into_iter().map(|(k, _, fit)| (k, true, fit)).collect()
        };
        Ok(Engine {
            est,
            features: self.features.clone(),
            orders,
            min_support: self.min_support,
            cache: CountingCache::restore(self.cache.stats().capacity, hits, misses, retained),
            surrogates: SurrogateCache::restore_full(
                self.surrogates.stats().capacity,
                s_hits,
                s_misses,
                fits,
            ),
            base_order_stats: Some(base_stats),
        })
    }

    /// Fold the delta shard into the base: a new engine over the
    /// concatenated table with the shard layout and bitmap index
    /// rebuilt, and everything else — value orders, warm counting
    /// passes, surrogate fits *and their staleness*, lifetime counters —
    /// carried verbatim. The concatenated table holds exactly the rows
    /// this engine was already answering over, so every carried artifact
    /// stays exact; only the physical layout changes. Compaction
    /// therefore never changes an answer (property-tested in
    /// `tests/live_parity.rs`). Without a delta this just re-materializes
    /// the engine over its existing base.
    pub fn compacted(&self) -> Result<Engine> {
        let folded = match self.est.delta_table().filter(|d| d.n_rows() > 0) {
            None => self.est.shared_table(),
            Some(delta) => {
                let base = self.est.table();
                let schema = base.schema();
                let mut cols = Vec::with_capacity(schema.len());
                for i in 0..schema.len() {
                    let a = AttrId(i as u32);
                    let mut col = base.column(a)?.to_vec();
                    col.extend_from_slice(delta.column(a)?);
                    cols.push(col);
                }
                Arc::new(Table::from_columns(schema.clone(), cols)?)
            }
        };
        let mut est = ScoreEstimator::from_shared(
            folded,
            self.est.shared_graph(),
            self.est.pred_attr(),
            self.est.positive(),
            self.est.alpha(),
        )?
        .with_shards(self.est.shards());
        if self.est.index().is_some() {
            est = est.with_index(true)?;
        }
        let (hits, misses, entries) = self.cache.export();
        let (s_hits, s_misses, fits) = self.surrogates.export_full();
        Ok(Engine {
            est,
            features: self.features.clone(),
            orders: self.orders.clone(),
            min_support: self.min_support,
            cache: CountingCache::restore(self.cache.stats().capacity, hits, misses, entries),
            surrogates: SurrogateCache::restore_full(
                self.surrogates.stats().capacity,
                s_hits,
                s_misses,
                fits,
            ),
            base_order_stats: None,
        })
    }

    /// Answer one request.
    pub fn run(&self, request: &ExplainRequest) -> Result<ExplainResponse> {
        match request {
            ExplainRequest::Global => self.global().map(ExplainResponse::Global),
            ExplainRequest::ContextualGlobal { k } => {
                self.contextual_global(k).map(ExplainResponse::Global)
            }
            ExplainRequest::Contextual { attr, k } => {
                self.contextual(*attr, k).map(ExplainResponse::Contextual)
            }
            ExplainRequest::Local { row } => self.local(row).map(ExplainResponse::Local),
            ExplainRequest::Recourse {
                row,
                actionable,
                opts,
            } => self
                .recourse(row, actionable, opts)
                .map(ExplainResponse::Recourse),
        }
    }

    /// Answer many requests, sharing work between compatible ones.
    ///
    /// Results are positionally aligned with `requests` and identical to
    /// running each request alone. Two kinds of sharing happen:
    ///
    /// * scoring requests reuse counting passes through the engine cache
    ///   (repeated or overlapping `(attribute, context)` pairs scan the
    ///   table once);
    /// * recourse requests are grouped by actionable set, so each group
    ///   fits its logit-linear surrogate once instead of per request.
    pub fn run_batch(&self, requests: &[ExplainRequest]) -> Vec<Result<ExplainResponse>> {
        let mut out: Vec<Option<Result<ExplainResponse>>> = requests.iter().map(|_| None).collect();
        // Group recourse requests by actionable set, preserving first-
        // seen order for determinism.
        let mut recourse_groups: Vec<(Vec<AttrId>, Vec<usize>)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match request {
                ExplainRequest::Recourse { actionable, .. } => {
                    match recourse_groups.iter_mut().find(|(a, _)| a == actionable) {
                        Some((_, idxs)) => idxs.push(i),
                        None => recourse_groups.push((actionable.clone(), vec![i])),
                    }
                }
                other => out[i] = Some(self.run(other)),
            }
        }
        for (actionable, idxs) in recourse_groups {
            let build = self
                .surrogate_for(&actionable)
                .and_then(|fit| RecourseEngine::with_fit(&self.est, &actionable, fit));
            match build {
                Ok(engine) => {
                    for i in idxs {
                        let ExplainRequest::Recourse { row, opts, .. } = &requests[i] else {
                            unreachable!("grouped index always points at a recourse request");
                        };
                        out[i] = Some(engine.recourse(row, opts).map(ExplainResponse::Recourse));
                    }
                }
                Err(first) => {
                    // LewisError is not Clone: the first failing request
                    // gets the original error; the rest re-derive it from
                    // the *cheap* validation checks (never repeating the
                    // feature-matrix build or surrogate fit), falling
                    // back to the formatted message when the failure came
                    // from the fit itself.
                    let msg = format!("{first}");
                    let mut first = Some(first);
                    for i in idxs {
                        let err = match first.take() {
                            Some(e) => e,
                            None => RecourseEngine::validate(&self.est, &actionable)
                                .err()
                                .unwrap_or_else(|| {
                                    LewisError::Invalid(format!(
                                        "recourse engine build failed: {msg}"
                                    ))
                                }),
                        };
                        out[i] = Some(Err(err));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every request answered"))
            .collect()
    }

    /// Maximum scores over all ordered value pairs of `attr` within `k`.
    /// Pairs without data support are skipped; when **no** pair has
    /// support the scores are zero and `best_pair` is `None`.
    ///
    /// All pairs of one attribute intervene on the same attribute set,
    /// so they are scored off a single counting pass — served from the
    /// engine cache when a previous query already paid for it.
    pub fn attribute_scores(&self, attr: AttrId, k: &Context) -> Result<AttributeScores> {
        let order = self
            .value_order(attr)
            .ok_or_else(|| LewisError::Invalid(format!("{attr} is not an explained feature")))?;
        let pairs = ordered_pairs(order);
        let contrasts: Vec<Contrast> = pairs
            .iter()
            .map(|&(hi, lo)| Contrast::single(attr, hi, lo))
            .collect();
        let mut best = Scores::default();
        let mut best_pair: Option<(Value, Value)> = None;
        for (&(hi, lo), result) in
            pairs
                .iter()
                .zip(self.est.scores_batch_impl(&contrasts, k, Some(&self.cache)))
        {
            match result {
                Ok(s) => {
                    if best_pair.is_none() || s.nesuf > best.nesuf {
                        best.nesuf = s.nesuf;
                        best_pair = Some((hi, lo));
                    }
                    best.necessity = best.necessity.max(s.necessity);
                    best.sufficiency = best.sufficiency.max(s.sufficiency);
                }
                Err(LewisError::Unsupported(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(AttributeScores {
            attr,
            name: self.est.table().schema().name(attr).to_string(),
            scores: best,
            best_pair,
        })
    }

    /// Global explanation (`K = ∅`, Figure 3).
    pub fn global(&self) -> Result<GlobalExplanation> {
        self.contextual_global(&Context::empty())
    }

    /// Global-shaped explanation within a context (used for Figure 4 and
    /// the sub-population audits).
    ///
    /// Per-attribute scoring fans out across threads; results are
    /// gathered in feature order and sorted with a total tie-break, so
    /// the explanation is identical for every thread count.
    pub fn contextual_global(&self, k: &Context) -> Result<GlobalExplanation> {
        let free: Vec<AttrId> = self
            .features
            .iter()
            .copied()
            .filter(|a| !k.constrains(*a))
            .collect();
        let scored: Vec<Result<AttributeScores>> = free
            .par_iter()
            .map(|&a| self.attribute_scores(a, k))
            .collect();
        let mut attributes = Vec::with_capacity(scored.len());
        for result in scored {
            attributes.push(result?);
        }
        attributes.sort_by(|x, y| {
            y.scores
                .nesuf
                .total_cmp(&x.scores.nesuf)
                .then_with(|| x.attr.cmp(&y.attr))
        });
        Ok(GlobalExplanation { attributes })
    }

    /// Contextual explanation of one attribute in one sub-population
    /// (Figure 4's bars).
    pub fn contextual(&self, attr: AttrId, k: &Context) -> Result<ContextualExplanation> {
        let scores = self.attribute_scores(attr, k)?.scores;
        Ok(ContextualExplanation {
            attr,
            context: k.clone(),
            scores,
        })
    }

    /// Local explanation for one individual (Figures 5–7), using the
    /// engine's configured `min_support` for the context back-off.
    ///
    /// For a **negative** outcome, an attribute's *negative* contribution
    /// is `max_{x > x'} SUF` (a better value would likely flip the
    /// decision) and its *positive* contribution is `max_{x'' < x'} SUF`
    /// (the current value already helps relative to worse ones). For a
    /// **positive** outcome the same roles are played by the necessity
    /// score (§3.2).
    pub fn local(&self, row: &[Value]) -> Result<LocalExplanation> {
        self.local_with_support(row, self.min_support)
    }

    /// [`Engine::local`] with an explicit back-off support floor.
    pub fn local_with_support(
        &self,
        row: &[Value],
        min_support: usize,
    ) -> Result<LocalExplanation> {
        let pred = self.est.pred_attr();
        if row.len() < self.est.table().schema().len() {
            return Err(LewisError::Invalid(format!(
                "row has {} values, schema needs {}",
                row.len(),
                self.est.table().schema().len()
            )));
        }
        let outcome = row[pred.index()];
        let favourable = outcome == self.est.positive();
        // Per-attribute contributions are independent: fan out across
        // threads, and within one attribute score every value contrast
        // off a single shared counting pass.
        let scored: Vec<Result<LocalContribution>> = self
            .features
            .par_iter()
            .map(|&a| self.local_contribution(a, row, favourable, min_support))
            .collect();
        let mut contributions = Vec::with_capacity(scored.len());
        for result in scored {
            contributions.push(result?);
        }
        contributions.sort_by(|x, y| {
            let mx = x.positive.max(x.negative);
            let my = y.positive.max(y.negative);
            my.total_cmp(&mx).then_with(|| x.attr.cmp(&y.attr))
        });
        Ok(LocalExplanation {
            outcome,
            contributions,
        })
    }

    /// Minimal-cost actionable recourse for `row` (§4.2). The
    /// logit-linear surrogate for `actionable` is served from the
    /// engine's surrogate cache — only the first query over a set pays
    /// the full-table fit; repeats (and pack-restored warm sets) reuse
    /// the coefficients bit-identically.
    pub fn recourse(
        &self,
        row: &[Value],
        actionable: &[AttrId],
        opts: &RecourseOptions,
    ) -> Result<Recourse> {
        let fit = self.surrogate_for(actionable)?;
        RecourseEngine::with_fit(&self.est, actionable, fit)?.recourse(row, opts)
    }

    /// One attribute's local contribution (the §3.2 rules; see
    /// [`Engine::local`] for the positive/negative semantics).
    fn local_contribution(
        &self,
        a: AttrId,
        row: &[Value],
        favourable: bool,
        min_support: usize,
    ) -> Result<LocalContribution> {
        let order = self.value_order(a).expect("feature orders precomputed");
        let current = row[a.index()];
        let pos_rank = order.iter().position(|&v| v == current).ok_or_else(|| {
            LewisError::Invalid(format!(
                "row value {current} of attribute {a} is outside its domain"
            ))
        })?;
        let k = self.est.local_context(row, a, min_support);
        // values worse / better than current, per the inferred order;
        // every contrast shares the same attribute and context, so the
        // whole attribute costs one counting pass.
        let mut directions: Vec<bool> = Vec::with_capacity(order.len().saturating_sub(1));
        let mut contrasts: Vec<Contrast> = Vec::with_capacity(order.len().saturating_sub(1));
        for (rank, &v) in order.iter().enumerate() {
            if rank == pos_rank {
                continue;
            }
            let is_positive = rank < pos_rank;
            let (hi, lo) = if is_positive {
                (current, v)
            } else {
                (v, current)
            };
            directions.push(is_positive);
            contrasts.push(Contrast::single(a, hi, lo));
        }
        let mut positive = 0.0f64;
        let mut negative = 0.0f64;
        for (is_positive, result) in directions.iter().zip(self.est.scores_batch_impl(
            &contrasts,
            &k,
            Some(&self.cache),
        )) {
            match result {
                Ok(s) => {
                    // positive outcome: NEC quantifies both directions;
                    // negative outcome: SUF does (§3.2)
                    let score = if favourable {
                        s.necessity
                    } else {
                        s.sufficiency
                    };
                    if *is_positive {
                        positive = positive.max(score);
                    } else {
                        negative = negative.max(score);
                    }
                }
                Err(LewisError::Unsupported(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        // A missing attribute is a caller error, not a silent blank.
        let label = self.est.table().schema().attr(a)?.domain.label(current);
        Ok(LocalContribution {
            attr: a,
            name: self.est.table().schema().name(a).to_string(),
            value: current,
            label,
            positive,
            negative,
        })
    }
}

/// Validate one snapshotted counting pass against the engine's schema
/// and freeze it back into the cache's internal representation. Every
/// structural invariant the scorer relies on (sortedness, arity,
/// domain-valid codes, consistent counts) is checked here, so a
/// snapshot that disagrees with its table can never be served from.
fn restore_pass(est: &ScoreEstimator, pass: PassSnapshot) -> Result<(PassKey, Arc<ArmTable>)> {
    let schema = est.table().schema();
    let invalid = |msg: String| LewisError::Invalid(format!("snapshot cache: {msg}"));
    let check_attr_set = |attrs: &[AttrId], what: &str| -> Result<()> {
        if attrs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(invalid(format!("{what} is not strictly ascending")));
        }
        for &a in attrs {
            schema.attr(a)?;
        }
        Ok(())
    };
    if pass.xs.is_empty() {
        return Err(invalid("pass intervenes on no attributes".into()));
    }
    check_attr_set(&pass.xs, "intervened set")?;
    check_attr_set(&pass.c_set, "adjustment set")?;
    for &x in &pass.xs {
        if x == est.pred_attr() {
            return Err(invalid(format!("pass intervenes on the prediction {x}")));
        }
        if pass.context.constrains(x) {
            return Err(invalid(format!("context constrains intervened {x}")));
        }
    }
    for (a, v) in pass.context.iter() {
        schema.check_value(a, v)?;
    }
    let mut cells = Vec::with_capacity(pass.cells.len());
    let mut total = 0u64;
    let mut prev_key: Option<&[Value]> = None;
    for cell in &pass.cells {
        if cell.key.len() != pass.c_set.len() {
            return Err(invalid(format!(
                "cell key has {} values for an adjustment set of {}",
                cell.key.len(),
                pass.c_set.len()
            )));
        }
        if prev_key.is_some_and(|p| p >= cell.key.as_slice()) {
            return Err(invalid("cells are not strictly sorted".into()));
        }
        prev_key = Some(&cell.key);
        for (&a, &v) in pass.c_set.iter().zip(&cell.key) {
            schema.check_value(a, v)?;
        }
        let mut arms = Vec::with_capacity(cell.arms.len());
        let mut arm_rows = 0u64;
        let mut prev_arm: Option<&[Value]> = None;
        for arm in &cell.arms {
            if arm.assignment.len() != pass.xs.len() {
                return Err(invalid(format!(
                    "arm has {} values for an intervened set of {}",
                    arm.assignment.len(),
                    pass.xs.len()
                )));
            }
            if prev_arm.is_some_and(|p| p >= arm.assignment.as_slice()) {
                return Err(invalid("arms are not strictly sorted".into()));
            }
            prev_arm = Some(&arm.assignment);
            for (&a, &v) in pass.xs.iter().zip(&arm.assignment) {
                schema.check_value(a, v)?;
            }
            if arm.positives > arm.rows {
                return Err(invalid(format!(
                    "arm counts {} positives out of {} rows",
                    arm.positives, arm.rows
                )));
            }
            // checked: crafted u64 counts must fail typed, not wrap
            // (release) or panic (debug) past the consistency checks
            arm_rows = arm_rows
                .checked_add(arm.rows)
                .ok_or_else(|| invalid("arm row counts overflow".into()))?;
            arms.push((arm.assignment.clone(), (arm.rows, arm.positives)));
        }
        if arm_rows != cell.rows {
            return Err(invalid(format!(
                "cell rows {} disagree with its arms' total {arm_rows}",
                cell.rows
            )));
        }
        total = total
            .checked_add(cell.rows)
            .ok_or_else(|| invalid("cell row counts overflow".into()))?;
        cells.push((cell.key.clone(), CellArms { n: cell.rows, arms }));
    }
    if total != pass.total {
        return Err(invalid(format!(
            "pass total {} disagrees with its cells' total {total}",
            pass.total
        )));
    }
    if total > est.n_total_rows() as u64 {
        return Err(invalid(format!(
            "pass counts {total} rows but the table has only {}",
            est.n_total_rows()
        )));
    }
    Ok((
        PassKey {
            xs: pass.xs,
            k: pass.context,
            c_set: pass.c_set,
        },
        Arc::new(ArmTable {
            cells,
            total: pass.total,
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use causal::scm::{Mechanism, ScmBuilder};
    use causal::Scm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// Loan world shared with the explain-module tests: status (3
    /// levels) and savings (2) cause approval; `hair` does not.
    fn world() -> Scm {
        let mut schema = Schema::new();
        schema.push("status", Domain::categorical(["bad", "ok", "good"]));
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("hair", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.3, 0.4, 0.3]))
            .unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.7, 0.3], |pa, u| {
                u32::from(pa[0] == 2) | (u as Value & u32::from(pa[0] == 1))
            }),
        )
        .unwrap();
        b.mechanism(2, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.build().unwrap()
    }

    fn approve(row: &[Value]) -> Value {
        u32::from(row[0] + row[1] >= 2)
    }

    fn setup(n: usize) -> (Table, AttrId) {
        let scm = world();
        let mut rng = StdRng::seed_from_u64(13);
        let mut t = scm.generate(n, &mut rng);
        let pred = label_table(&mut t, &approve, "pred").unwrap();
        (t, pred)
    }

    fn engine(n: usize) -> Engine {
        let (t, pred) = setup(n);
        let scm = world();
        Engine::builder(t)
            .graph(scm.graph())
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1), AttrId(2)])
            .alpha(0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_is_send_sync_and_unlifetimed() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<ScoreEstimator>();
    }

    #[test]
    fn builder_validates_configuration() {
        let (t, pred) = setup(200);
        let t = Arc::new(t);
        // missing prediction
        assert!(Engine::builder(Arc::clone(&t))
            .features(&[AttrId(0)])
            .build()
            .is_err());
        // missing features
        assert!(Engine::builder(Arc::clone(&t))
            .prediction(pred, 1)
            .build()
            .is_err());
        // empty features
        assert!(Engine::builder(Arc::clone(&t))
            .prediction(pred, 1)
            .features(&[])
            .build()
            .is_err());
        // features include the prediction
        assert!(Engine::builder(Arc::clone(&t))
            .prediction(pred, 1)
            .features(&[pred])
            .build()
            .is_err());
        // bad positive code / alpha delegate to the estimator checks
        assert!(Engine::builder(Arc::clone(&t))
            .prediction(pred, 2)
            .features(&[AttrId(0)])
            .build()
            .is_err());
        assert!(Engine::builder(Arc::clone(&t))
            .prediction(pred, 1)
            .features(&[AttrId(0)])
            .alpha(-1.0)
            .build()
            .is_err());
        // a valid configuration builds and shares the table (no copy)
        let e = Engine::builder(Arc::clone(&t))
            .prediction(pred, 1)
            .features(&[AttrId(0)])
            .build()
            .unwrap();
        assert_eq!(e.table().n_rows(), t.n_rows());
        // the estimator holds one handle, plus one inside its cached
        // shard layout when sharding is on — all shallow Arc clones,
        // never a copy of the column data
        let expected = if e.shards() > 1 { 3 } else { 2 };
        assert_eq!(
            Arc::strong_count(&t),
            expected,
            "builder must not deep-copy the Arc'd table"
        );
    }

    #[test]
    fn shard_setting_threads_through_build_snapshot_restore() {
        let (t, pred) = setup(500);
        let e = Engine::builder(t)
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1)])
            .shards(4)
            .build()
            .unwrap();
        assert_eq!(e.shards(), 4);
        let snap = e.snapshot();
        assert_eq!(snap.shards, 4);
        let restored = Engine::restore(snap).unwrap();
        assert_eq!(restored.shards(), 4);
        // zero clamps to one at the builder (a layout setting, not an
        // untrusted input)
        let (t, pred) = setup(100);
        let e1 = Engine::builder(t)
            .prediction(pred, 1)
            .features(&[AttrId(0)])
            .shards(0)
            .build()
            .unwrap();
        assert_eq!(e1.shards(), 1);
    }

    #[test]
    fn index_setting_threads_through_build_snapshot_restore() {
        let (t, pred) = setup(500);
        let e = Engine::builder(t)
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1)])
            .index(true)
            .build()
            .unwrap();
        assert!(e.index_enabled());
        assert!(e.index_memory_bytes() > 0);
        let snap = e.snapshot();
        assert!(snap.index.is_some());
        let restored = Engine::restore(snap).unwrap();
        assert!(restored.index_enabled());
        assert_eq!(e.global().unwrap(), restored.global().unwrap());
        // an index paired with the wrong table is rejected, not served
        let mut bad = e.snapshot();
        let (other, _) = setup(123);
        bad.table = Arc::new(other);
        assert!(Engine::restore(bad).is_err());
    }

    #[test]
    fn indexed_engines_answer_bit_identically() {
        let (t, pred) = setup(3000);
        let t = Arc::new(t);
        let build = |indexed: bool| {
            Engine::builder(Arc::clone(&t))
                .prediction(pred, 1)
                .features(&[AttrId(0), AttrId(1), AttrId(2)])
                .index(indexed)
                .build()
                .unwrap()
        };
        let plain = build(false);
        let indexed = build(true);
        // the builder setting wins over any LEWIS_TEST_INDEX env value
        assert!(!plain.index_enabled());
        assert!(indexed.index_enabled());
        assert_eq!(plain.global().unwrap(), indexed.global().unwrap());
        let row = t.row(0).unwrap();
        assert_eq!(plain.local(&row).unwrap(), indexed.local(&row).unwrap());
        let k = Context::of([(AttrId(0), 1)]);
        assert_eq!(
            plain.contextual(AttrId(1), &k).unwrap(),
            indexed.contextual(AttrId(1), &k).unwrap()
        );
    }

    #[test]
    fn run_matches_direct_methods() {
        let e = engine(5000);
        let k = Context::of([(AttrId(0), 1)]);
        let row = e.table().row(0).unwrap();

        let g = e
            .run(&ExplainRequest::Global)
            .unwrap()
            .into_global()
            .unwrap();
        assert_eq!(g, e.global().unwrap());
        let cg = e
            .run(&ExplainRequest::ContextualGlobal { k: k.clone() })
            .unwrap()
            .into_global()
            .unwrap();
        assert_eq!(cg, e.contextual_global(&k).unwrap());
        let c = e
            .run(&ExplainRequest::Contextual {
                attr: AttrId(1),
                k: k.clone(),
            })
            .unwrap()
            .into_contextual()
            .unwrap();
        assert_eq!(c, e.contextual(AttrId(1), &k).unwrap());
        let l = e
            .run(&ExplainRequest::Local { row: row.clone() })
            .unwrap()
            .into_local()
            .unwrap();
        assert_eq!(l, e.local(&row).unwrap());
    }

    #[test]
    fn run_batch_is_positional_and_reuses_passes() {
        let e = engine(5000);
        let k = Context::of([(AttrId(0), 1)]);
        let mut requests = Vec::new();
        for _ in 0..10 {
            requests.push(ExplainRequest::Contextual {
                attr: AttrId(1),
                k: k.clone(),
            });
            requests.push(ExplainRequest::Contextual {
                attr: AttrId(2),
                k: k.clone(),
            });
        }
        let responses = e.run_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        let first = responses[0]
            .as_ref()
            .unwrap()
            .clone()
            .into_contextual()
            .unwrap();
        for r in responses.iter().step_by(2) {
            assert_eq!(
                first,
                r.as_ref().unwrap().clone().into_contextual().unwrap(),
                "repeated requests must agree"
            );
        }
        let stats = e.cache_stats();
        assert!(
            stats.hits >= 18,
            "20 repeated queries over 2 keys must mostly hit, got {stats:?}"
        );
        assert_eq!(stats.misses, 2, "one pass per distinct (attr, context)");
    }

    #[test]
    fn cached_scores_equal_cold_scores_bitwise() {
        let cold = engine(5000);
        let warm = engine(5000);
        let contexts = [
            Context::empty(),
            Context::of([(AttrId(0), 0)]),
            Context::of([(AttrId(0), 2)]),
        ];
        // warm the second engine with one full sweep, then compare a
        // second sweep (all hits) against the first engine's cold run
        for k in &contexts {
            for a in [AttrId(1), AttrId(2)] {
                if k.constrains(a) {
                    continue;
                }
                let _ = warm.attribute_scores(a, k).unwrap();
            }
        }
        for k in &contexts {
            for a in [AttrId(1), AttrId(2)] {
                if k.constrains(a) {
                    continue;
                }
                let c = cold.attribute_scores(a, k).unwrap();
                let w = warm.attribute_scores(a, k).unwrap();
                assert_eq!(c, w, "warm result must be bit-identical for {a} in {k:?}");
                assert_eq!(c.scores.nesuf.to_bits(), w.scores.nesuf.to_bits());
                assert_eq!(c.scores.necessity.to_bits(), w.scores.necessity.to_bits());
                assert_eq!(
                    c.scores.sufficiency.to_bits(),
                    w.scores.sufficiency.to_bits()
                );
            }
        }
        assert!(warm.cache_stats().hits > 0);
    }

    #[test]
    fn clear_cache_keeps_results_stable() {
        let e = engine(3000);
        let a = e.attribute_scores(AttrId(1), &Context::empty()).unwrap();
        e.clear_cache();
        assert_eq!(e.cache_stats().entries, 0);
        let b = e.attribute_scores(AttrId(1), &Context::empty()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn global_ranks_causal_attributes_above_noise() {
        let e = engine(20_000);
        let g = e.global().unwrap();
        assert_eq!(g.attributes.len(), 3);
        let last = g.attributes.last().unwrap();
        assert_eq!(last.attr, AttrId(2));
        assert!(last.scores.nesuf < 0.05);
        assert_eq!(g.attributes[0].attr, AttrId(0));
        assert!(g.attributes[0].scores.sufficiency > 0.3);
        assert_eq!(g.rank_by(AttrId(0), |s| s.nesuf), Some(1));
        assert_eq!(g.rank_by(AttrId(2), |s| s.nesuf), Some(3));
        // every scored attribute carries its maximizing contrast
        for a in &g.attributes {
            assert!(a.best_pair.is_some(), "{} has support", a.name);
        }
    }

    #[test]
    fn local_explanations_flag_improvable_attributes() {
        let e = engine(20_000);
        let rejected = e.local(&[0, 0, 0, 0]).unwrap();
        assert_eq!(rejected.outcome, 0);
        let status = rejected
            .contributions
            .iter()
            .find(|c| c.attr == AttrId(0))
            .unwrap();
        assert!(
            status.negative > 0.5,
            "raising bad status is sufficient: {}",
            status.negative
        );
        assert!(status.positive < 0.1);
        let approved = e.local(&[2, 1, 0, 1]).unwrap();
        assert_eq!(approved.outcome, 1);
        let status_a = approved
            .contributions
            .iter()
            .find(|c| c.attr == AttrId(0))
            .unwrap();
        assert!(
            status_a.positive > 0.5,
            "good status is necessary: {}",
            status_a.positive
        );
    }

    #[test]
    fn local_validates_row_shape_and_domain() {
        let e = engine(500);
        assert!(e.local(&[0, 0]).is_err(), "short row");
        assert!(e.local(&[9, 0, 0, 0]).is_err(), "out-of-domain value");
    }

    #[test]
    fn recourse_request_round_trips() {
        let e = engine(20_000);
        let opts = RecourseOptions {
            alpha: 0.6,
            ..RecourseOptions::default()
        };
        let direct = e.recourse(&[0, 0, 0, 0], &[AttrId(0), AttrId(1)], &opts);
        let via_batch = e
            .run_batch(&[ExplainRequest::Recourse {
                row: vec![0, 0, 0, 0],
                actionable: vec![AttrId(0), AttrId(1)],
                opts,
            }])
            .remove(0);
        match (direct, via_batch) {
            (Ok(d), Ok(r)) => assert_eq!(Some(d), r.into_recourse()),
            (Err(d), Err(r)) => assert_eq!(format!("{d}"), format!("{r}")),
            (d, r) => panic!("direct {d:?} vs batch {r:?}"),
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical_and_keeps_the_cache_warm() {
        let donor = engine(5000);
        // warm the donor with a realistic mix
        let k = Context::of([(AttrId(0), 1)]);
        let _ = donor.global().unwrap();
        let _ = donor.contextual_global(&k).unwrap();
        let row = donor.table().row(0).unwrap();
        let _ = donor.local(&row).unwrap();
        let donor_stats = donor.cache_stats();
        assert!(donor_stats.entries > 0, "warm-up must populate the cache");

        let restored = Engine::restore(donor.snapshot()).unwrap();
        // cache state carried over: entries resident, counters continue
        let restored_stats = restored.cache_stats();
        assert_eq!(restored_stats.entries, donor_stats.entries);
        assert_eq!(restored_stats.hits, donor_stats.hits);
        assert_eq!(restored_stats.misses, donor_stats.misses);
        assert_eq!(restored_stats.capacity, donor_stats.capacity);

        // every query kind answers identically, to the bit
        let g_d = donor.global().unwrap();
        let g_r = restored.global().unwrap();
        assert_eq!(g_d, g_r);
        for (d, r) in g_d.attributes.iter().zip(&g_r.attributes) {
            assert_eq!(d.scores.nesuf.to_bits(), r.scores.nesuf.to_bits());
            assert_eq!(d.scores.necessity.to_bits(), r.scores.necessity.to_bits());
            assert_eq!(
                d.scores.sufficiency.to_bits(),
                r.scores.sufficiency.to_bits()
            );
        }
        assert_eq!(
            donor.contextual(AttrId(1), &k).unwrap(),
            restored.contextual(AttrId(1), &k).unwrap()
        );
        assert_eq!(donor.local(&row).unwrap(), restored.local(&row).unwrap());
        // the restored cache *hits* on the donor's warm keys
        let before = restored.cache_stats().hits;
        let _ = restored.contextual_global(&k).unwrap();
        assert!(
            restored.cache_stats().hits > before,
            "restored cache must serve warm keys without re-scanning"
        );
        // and a snapshot of the restored engine round-trips the cache
        let again = donor.snapshot();
        let re_snap = restored.snapshot();
        assert_eq!(again.cache.passes.len(), donor_stats.entries);
        assert_eq!(re_snap.orders, again.orders);
        assert_eq!(re_snap.features, again.features);
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let donor = engine(500);
        let _ = donor.global().unwrap();
        let base = donor.snapshot();

        // empty features
        let mut s = base.clone();
        s.features.clear();
        s.orders = vec![None; s.orders.len()];
        assert!(Engine::restore(s).is_err());

        // order missing for a feature
        let mut s = base.clone();
        s.orders[0] = None;
        assert!(Engine::restore(s).is_err());

        // order that is not a permutation of the domain
        let mut s = base.clone();
        s.orders[0] = Some(vec![0, 0, 1]);
        assert!(Engine::restore(s).is_err());

        // order arity mismatching the schema
        let mut s = base.clone();
        s.orders.pop();
        assert!(Engine::restore(s).is_err());

        // a cache pass with out-of-domain codes
        let mut s = base.clone();
        if let Some(pass) = s.cache.passes.first_mut() {
            if let Some(cell) = pass.cells.first_mut() {
                if let Some(arm) = cell.arms.first_mut() {
                    arm.assignment[0] = 99;
                }
            }
            assert!(Engine::restore(s).is_err());
        }

        // a duplicated feature (would score the same attribute twice)
        let mut s = base.clone();
        s.features.push(s.features[0]);
        assert!(Engine::restore(s).is_err());

        // an out-of-range shard count (only reachable from a crafted
        // snapshot — with_shards clamps; restore must reject, not size
        // allocations from it)
        let mut s = base.clone();
        s.shards = 0;
        assert!(Engine::restore(s).is_err());
        let mut s = base.clone();
        s.shards = tabular::MAX_SHARDS + 1;
        assert!(Engine::restore(s).is_err());

        // a non-finite smoothing constant from an untrusted config
        let mut s = base.clone();
        s.alpha = f64::NAN;
        assert!(Engine::restore(s).is_err());
        let mut s = base.clone();
        s.alpha = f64::INFINITY;
        assert!(Engine::restore(s).is_err());

        // a cache pass with inconsistent counts
        let mut s = base.clone();
        if let Some(pass) = s.cache.passes.first_mut() {
            pass.total += 1;
            assert!(Engine::restore(s).is_err());
        }

        // the untouched snapshot still restores fine
        assert!(Engine::restore(base).is_ok());
    }

    /// Split a labelled table into a frozen base and a delta of appended
    /// rows (same schema), returning the appended rows as batch input.
    fn split(full: &Table, n_base: usize) -> (Table, Table, Vec<Vec<Value>>) {
        let mut base = Table::new(full.schema().clone());
        let mut delta = Table::new(full.schema().clone());
        let mut appended = Vec::new();
        for r in 0..full.n_rows() {
            let row = full.row(r).unwrap();
            if r < n_base {
                base.push_row(&row).unwrap();
            } else {
                delta.push_row(&row).unwrap();
                appended.push(row);
            }
        }
        (base, delta, appended)
    }

    #[test]
    fn with_delta_answers_like_a_cold_build_over_the_concatenated_table() {
        let (full, pred) = setup(3000);
        let (base, delta, appended) = split(&full, 2500);
        let scm = world();
        for (shards, index) in [(1, false), (4, true)] {
            let build = |t: Table| {
                Engine::builder(t)
                    .graph(scm.graph())
                    .prediction(pred, 1)
                    .features(&[AttrId(0), AttrId(1), AttrId(2)])
                    .alpha(0.0)
                    .shards(shards)
                    .index(index)
                    .build()
                    .unwrap()
            };
            let cold = build(full.clone());
            let live = build(base.clone())
                .with_delta(Arc::new(delta.clone()), &appended)
                .unwrap();
            assert_eq!(live.total_rows(), cold.table().n_rows());
            assert_eq!(live.delta_rows(), appended.len());
            for &a in cold.features() {
                assert_eq!(live.value_order(a), cold.value_order(a), "order of {a}");
            }
            // every query kind, bit for bit
            assert_eq!(live.global().unwrap(), cold.global().unwrap());
            let k = Context::of([(AttrId(0), 1)]);
            assert_eq!(
                live.contextual_global(&k).unwrap(),
                cold.contextual_global(&k).unwrap()
            );
            assert_eq!(
                live.contextual(AttrId(1), &k).unwrap(),
                cold.contextual(AttrId(1), &k).unwrap()
            );
            let row = full.row(7).unwrap();
            assert_eq!(live.local(&row).unwrap(), cold.local(&row).unwrap());
            let opts = RecourseOptions::default();
            assert_eq!(
                live.recourse(&row, &[AttrId(0), AttrId(1)], &opts).unwrap(),
                cold.recourse(&row, &[AttrId(0), AttrId(1)], &opts).unwrap()
            );
        }
    }

    #[test]
    fn with_delta_invalidates_cache_precisely_and_keeps_surrogates_resident() {
        let e = engine(1000);
        // Appended rows all hold status = 0, so passes under status = 2
        // never read them and must stay resident; passes under status = 0
        // (and the context-free global pass) must be dropped.
        let k_miss = Context::of([(AttrId(0), 2)]);
        let k_hit = Context::of([(AttrId(0), 0)]);
        let _ = e.global().unwrap();
        let _ = e.contextual_global(&k_miss).unwrap();
        let _ = e.contextual_global(&k_hit).unwrap();
        e.prepare_surrogate(&[AttrId(0)]).unwrap();
        let warm = e.cache_stats();
        let s_warm = e.surrogate_stats();

        let mut delta = Table::new(e.table().schema().clone());
        let mut appended = Vec::new();
        for row in [[0, 0, 1, 0], [0, 1, 0, 0]] {
            delta.push_row(&row).unwrap();
            appended.push(row.to_vec());
        }
        let live = e.with_delta(Arc::new(delta), &appended).unwrap();

        // lifetime counters carry; only the unaffected entry survives
        let stats = live.cache_stats();
        assert_eq!(stats.hits, warm.hits);
        assert_eq!(stats.misses, warm.misses);
        assert!(stats.entries < warm.entries, "matching passes must drop");
        let before = live.cache_stats();
        let _ = live.contextual_global(&k_miss).unwrap();
        assert!(
            live.cache_stats().hits > before.hits,
            "passes no appended row matches must still answer warm"
        );
        assert_eq!(
            live.cache_stats().misses,
            before.misses,
            "passes no appended row matches must not re-count"
        );
        let before = live.cache_stats();
        let _ = live.contextual_global(&k_hit).unwrap();
        assert!(
            live.cache_stats().misses > before.misses,
            "passes an appended row matches must re-count"
        );

        // the surrogate key stayed resident but stale: next lookup refits
        assert_eq!(live.surrogate_stats().entries, s_warm.entries);
        let before = live.surrogate_stats();
        live.prepare_surrogate(&[AttrId(0)]).unwrap();
        assert_eq!(
            live.surrogate_stats().misses,
            before.misses + 1,
            "stale surrogate must refit over base + delta"
        );
        let after = live.surrogate_stats();
        live.prepare_surrogate(&[AttrId(0)]).unwrap();
        assert_eq!(
            live.surrogate_stats().hits,
            after.hits + 1,
            "refitted surrogate is fresh again"
        );
    }

    #[test]
    fn compaction_folds_the_delta_without_changing_answers() {
        let (full, pred) = setup(1500);
        let (base, delta, appended) = split(&full, 1200);
        let scm = world();
        let live = Engine::builder(base)
            .graph(scm.graph())
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1), AttrId(2)])
            .alpha(0.0)
            .index(true)
            .build()
            .unwrap()
            .with_delta(Arc::new(delta), &appended)
            .unwrap();
        let k = Context::of([(AttrId(0), 1)]);
        let g = live.global().unwrap();
        let c = live.contextual_global(&k).unwrap();
        let warm = live.cache_stats();

        let folded = live.compacted().unwrap();
        assert_eq!(folded.delta_rows(), 0);
        assert_eq!(folded.total_rows(), live.total_rows());
        assert_eq!(folded.table().n_rows(), full.n_rows());
        assert!(folded.index_enabled(), "compaction rebuilds the index");
        // warm artifacts carried verbatim, and they still answer warm
        assert_eq!(folded.cache_stats().entries, warm.entries);
        assert_eq!(folded.cache_stats().hits, warm.hits);
        let before = folded.cache_stats();
        assert_eq!(folded.global().unwrap(), g);
        assert_eq!(folded.contextual_global(&k).unwrap(), c);
        assert!(
            folded.cache_stats().hits > before.hits,
            "compaction must not cool the cache"
        );
        assert_eq!(
            folded.cache_stats().misses,
            before.misses,
            "warm passes must not re-count after compaction"
        );
    }

    #[test]
    fn snapshot_restore_round_trips_a_live_engine_mid_stream() {
        let (full, pred) = setup(1500);
        let (base, delta, appended) = split(&full, 1200);
        let scm = world();
        let live = Engine::builder(base)
            .graph(scm.graph())
            .prediction(pred, 1)
            .features(&[AttrId(0), AttrId(1), AttrId(2)])
            .alpha(0.0)
            .index(true)
            .build()
            .unwrap()
            .with_delta(Arc::new(delta), &appended)
            .unwrap();
        let k = Context::of([(AttrId(0), 1)]);
        let _ = live.global().unwrap();
        let _ = live.contextual_global(&k).unwrap();

        let snap = live.snapshot();
        assert!(snap.delta.is_some(), "snapshot must carry the delta shard");
        let restored = Engine::restore(snap).unwrap();
        assert_eq!(restored.delta_rows(), live.delta_rows());
        assert_eq!(restored.total_rows(), live.total_rows());
        assert_eq!(restored.cache_stats().entries, live.cache_stats().entries);
        assert_eq!(restored.global().unwrap(), live.global().unwrap());
        assert_eq!(
            restored.contextual_global(&k).unwrap(),
            live.contextual_global(&k).unwrap()
        );
        let row = full.row(3).unwrap();
        assert_eq!(restored.local(&row).unwrap(), live.local(&row).unwrap());

        // a delta that disagrees with the base schema is rejected
        let mut bad = live.snapshot();
        let (other, _) = setup(50);
        bad.delta = Some(Arc::new(other));
        assert!(Engine::restore(bad).is_err());
    }

    #[test]
    fn run_batch_distributes_recourse_build_errors_per_request() {
        let e = engine(500);
        let pred = e.estimator().pred_attr();
        // actionable set containing the prediction column fails the
        // cheap validation; every request in the group must get the
        // same Invalid error, not just the first
        let bad = ExplainRequest::Recourse {
            row: vec![0, 0, 0, 0],
            actionable: vec![pred],
            opts: RecourseOptions::default(),
        };
        let responses = e.run_batch(&[bad.clone(), bad]);
        assert_eq!(responses.len(), 2);
        for r in responses {
            match r {
                Err(LewisError::Invalid(m)) => {
                    assert!(m.contains("not actionable"), "unexpected message: {m}")
                }
                other => panic!("expected Invalid for both requests, got {other:?}"),
            }
        }
    }
}
