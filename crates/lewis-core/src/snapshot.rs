//! Warm engine snapshots: everything needed to rebuild an [`Engine`]
//! *exactly*, without re-parsing data, re-inferring value orders or
//! re-warming the counting-pass cache.
//!
//! The snapshot is plain data — shared table and graph handles, the
//! engine configuration, the inferred per-feature value orders, and the
//! cache's resident counting passes in recency order. It exists so a
//! serving process can persist a hot engine (see the `lewis-store`
//! crate's `.lewis` packs) and a restarted process can come back
//! **observably identical**: a restored engine answers every query kind
//! byte-for-byte like its donor, because
//!
//! * scoring reads counting passes whose cells are *sorted vectors*
//!   (see [`crate::scores`]), so floating-point summation order depends
//!   only on the counted data — the restored pass iterates exactly like
//!   the donor's;
//! * value orders are carried, not re-derived, so tie-breaks cannot
//!   drift;
//! * the cache is restored with the donor's recency order and lifetime
//!   counters, so LRU eviction and `/metrics` continue seamlessly.
//!
//! Build one with [`Engine::snapshot`]; rebuild with
//! [`Engine::restore`].
//!
//! [`Engine`]: crate::Engine
//! [`Engine::snapshot`]: crate::Engine::snapshot
//! [`Engine::restore`]: crate::Engine::restore

use causal::Dag;
use lewis_index::TableIndex;
use std::sync::Arc;
use tabular::{AttrId, Context, Table, Value};

/// One arm of a counting pass: the rows holding one assignment of the
/// intervened attributes within one adjustment cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmSnapshot {
    /// The intervened attributes' values, aligned with
    /// [`PassSnapshot::xs`].
    pub assignment: Vec<Value>,
    /// Rows in this cell holding the assignment.
    pub rows: u64,
    /// Of those, rows with the positive prediction.
    pub positives: u64,
}

/// One adjustment cell of a counting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSnapshot {
    /// The adjustment attributes' values, aligned with
    /// [`PassSnapshot::c_set`].
    pub key: Vec<Value>,
    /// Rows in this cell (all arms, including unmaterialized ones).
    pub rows: u64,
    /// The observed arms, sorted by assignment.
    pub arms: Vec<ArmSnapshot>,
}

/// One resident counting pass: the cache key plus the aggregated scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSnapshot {
    /// Sorted intervened attribute set.
    pub xs: Vec<AttrId>,
    /// The query context the pass was built under.
    pub context: Context,
    /// The backdoor adjustment set used for the pass.
    pub c_set: Vec<AttrId>,
    /// Rows matching the context (all cells).
    pub total: u64,
    /// The adjustment cells, sorted by key.
    pub cells: Vec<CellSnapshot>,
}

/// The counting-pass cache: lifetime counters plus resident passes in
/// recency order (least recently used first).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache over the donor's lifetime.
    pub hits: u64,
    /// Lookups that ran a counting pass over the donor's lifetime.
    pub misses: u64,
    /// Resident passes, least recently used first.
    pub passes: Vec<PassSnapshot>,
}

/// One resident fitted recourse surrogate (see
/// [`crate::SurrogateFit`]): the cache key — the exact *ordered*
/// actionable set, which fixes the coefficient layout — plus the fit.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateSnapshot {
    /// The ordered actionable set the surrogate was fitted for.
    pub actionable: Vec<AttrId>,
    /// Surrogate intercept.
    pub intercept: f64,
    /// Coefficients over the one-hot + ordinal-context layout.
    pub coefficients: Vec<f64>,
    /// Inferred value order per actionable attribute.
    pub orders: Vec<Vec<Value>>,
}

/// The recourse-surrogate cache: lifetime counters plus resident fits
/// in recency order (least recently used first).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SurrogateCacheSnapshot {
    /// Lookups answered from the cache over the donor's lifetime.
    pub hits: u64,
    /// Lookups that ran a surrogate fit over the donor's lifetime.
    pub misses: u64,
    /// Resident fits, least recently used first.
    pub fits: Vec<SurrogateSnapshot>,
}

/// Everything needed to rebuild an [`crate::Engine`] exactly — see the
/// module docs for the fidelity guarantees.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The labelled table (shared, not copied).
    pub table: Arc<Table>,
    /// The causal diagram, if the donor had one.
    pub graph: Option<Arc<Dag>>,
    /// The black box's binary prediction column.
    pub pred: AttrId,
    /// The favourable outcome code.
    pub positive: Value,
    /// Laplace pseudo-count for the inner conditionals.
    pub alpha: f64,
    /// Minimum matching rows for local-context back-off.
    pub min_support: usize,
    /// Bound on resident counting passes.
    pub cache_capacity: usize,
    /// Row shards every counting pass fans over (≥ 1; results are
    /// shard-count-invariant, so this is a layout/performance setting,
    /// carried so a restored engine keeps its donor's fan-out).
    pub shards: usize,
    /// The explained features.
    pub features: Vec<AttrId>,
    /// Inferred ascending value order per schema attribute (`Some` for
    /// every feature, `None` elsewhere) — carried verbatim so restored
    /// tie-breaks match the donor's.
    pub orders: Vec<Option<Vec<Value>>>,
    /// The warm counting-pass cache.
    pub cache: CacheSnapshot,
    /// Bound on resident fitted recourse surrogates.
    pub surrogate_capacity: usize,
    /// The warm recourse-surrogate cache — carried so a restored engine
    /// answers recourse over the donor's actionable sets from warm
    /// coefficients, without refitting.
    pub surrogates: SurrogateCacheSnapshot,
    /// The per-(attribute, code) bitmap index, when the donor had one
    /// (shared, not copied). Restore validates it against the table and
    /// installs it verbatim, so a restored engine skips the index
    /// rebuild just like it skips re-warming the cache.
    pub index: Option<Arc<TableIndex>>,
    /// The write-side delta shard, when the donor was serving a live
    /// table mid-stream: rows appended after `table` (and its index)
    /// froze, coded against the same schema. Restore overlays it
    /// verbatim — delta bitmaps are rebuilt from these rows — so a
    /// restored engine resumes the stream exactly where the donor
    /// stood, answering as a cold build over the concatenated table
    /// would. `None` for frozen engines and freshly compacted ones.
    pub delta: Option<Arc<Table>>,
}
