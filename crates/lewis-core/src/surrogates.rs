//! Bounded, thread-safe cache of fitted recourse surrogates.
//!
//! Every recourse query over the same actionable set needs the same
//! logit-linear surrogate (eq. 28) — the one genuinely expensive part
//! of answering recourse, a full-table Newton fit. Real traffic repeats
//! actionable sets constantly (a product exposes a handful of "what can
//! the user change" configurations), so the [`crate::Engine`] keeps the
//! fitted coefficients here and rebuilds the per-row generator from
//! warm coefficients in microseconds.
//!
//! Properties mirror [`crate::cache`]'s counting cache:
//! * **bit-identical results** — a hit returns the very
//!   [`SurrogateFit`] a cold fit would have produced (the sharded
//!   Newton fit is deterministic for any shard count), so cached
//!   recourse equals uncached recourse bit for bit;
//! * **bounded** — at most `capacity` entries, evicting the least
//!   recently used;
//! * **thread-safe** — a single mutex guards the map; the fit itself
//!   runs outside the lock, so concurrent misses fit in parallel (a
//!   rare duplicate fit inserts an equivalent surrogate — harmless);
//! * **exportable** — entries round-trip through engine snapshots and
//!   `.lewis` pack format v4, so a restored server answers recourse
//!   from warm coefficients without refitting.

use crate::cache::CacheStats;
use crate::recourse::SurrogateFit;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tabular::{AttrId, FxHashMap};

/// The bounded LRU map itself. Keyed by the exact *ordered* actionable
/// set — the order fixes the surrogate's coefficient layout, so two
/// orderings of the same attributes are distinct (and both valid)
/// entries. Interior-mutable so the engine can stay `&self` everywhere.
pub(crate) struct SurrogateCache {
    inner: Mutex<SurrogateInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `export`'s payload: lifetime hits, lifetime misses, and the resident
/// **fresh** fits least-recently-touched first.
pub(crate) type SurrogateExport = (u64, u64, Vec<(Vec<AttrId>, Arc<SurrogateFit>)>);

/// [`SurrogateCache::export_full`]'s payload: like [`SurrogateExport`]
/// but carrying every entry with its staleness flag — the live-table
/// hand-off between engine generations.
pub(crate) type SurrogateFullExport = (u64, u64, Vec<(Vec<AttrId>, bool, Arc<SurrogateFit>)>);

/// One resident fit with its recency stamp and staleness.
struct SurrogateSlot {
    /// Last-touched stamp (monotone, drives LRU eviction).
    touched: u64,
    /// A stale fit was trained before rows were appended: the key stays
    /// resident (the actionable set is known traffic) but the next
    /// lookup refits over the live rows instead of answering from it.
    stale: bool,
    fit: Arc<SurrogateFit>,
}

#[derive(Default)]
struct SurrogateInner {
    map: FxHashMap<Vec<AttrId>, SurrogateSlot>,
    /// Monotone counter driving LRU recency.
    stamp: u64,
}

impl SurrogateCache {
    /// An empty cache holding at most `capacity` fits (`capacity` is
    /// clamped to at least 1 — a zero-size cache would still be correct
    /// but would turn every lookup into a miss plus bookkeeping).
    pub(crate) fn new(capacity: usize) -> Self {
        SurrogateCache {
            inner: Mutex::new(SurrogateInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Return the cached fit for `actionable` or run `build` and cache
    /// its result. A **stale** resident entry is treated as a miss: the
    /// refit runs outside the lock and replaces the entry fresh (the
    /// fit is a pure function of the live rows, so a concurrent refit
    /// inserts the identical coefficients — harmless). Errors are
    /// returned without being cached, so an invalid actionable set does
    /// not poison later lookups.
    pub(crate) fn get_or_build(
        &self,
        actionable: &[AttrId],
        build: impl FnOnce() -> Result<SurrogateFit>,
    ) -> Result<Arc<SurrogateFit>> {
        {
            let mut inner = self.inner.lock().expect("surrogate cache lock");
            inner.stamp += 1;
            let stamp = inner.stamp;
            if let Some(slot) = inner.map.get_mut(actionable) {
                if !slot.stale {
                    slot.touched = stamp;
                    let fit = Arc::clone(&slot.fit);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(fit);
                }
            }
        }
        // Miss (or stale): fit outside the lock so queries keep flowing.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fit = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("surrogate cache lock");
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.insert(
            actionable.to_vec(),
            SurrogateSlot {
                touched: stamp,
                stale: false,
                fit: Arc::clone(&fit),
            },
        );
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                // lint:allow(ordered-iteration): recency stamps are a unique monotone counter, so min_by_key has one answer in any visit order
                .iter()
                .min_by_key(|(_, slot)| slot.touched)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.map.remove(&oldest);
        }
        Ok(fit)
    }

    /// Current counters and occupancy (same shape as the counting
    /// cache's stats, so `/metrics` reports both uniformly).
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("surrogate cache lock").map.len(),
            capacity: self.capacity,
        }
    }

    /// Export the resident **fresh** fits in recency order (least
    /// recently touched first) together with the lifetime counters —
    /// the payload of an engine snapshot. Stale fits are omitted: they
    /// describe rows that no longer exist alone, and a restored engine
    /// refits them lazily (deterministically, to the same coefficients
    /// a resident refit would produce). The `Arc`s are shared, not
    /// copied.
    pub(crate) fn export(&self) -> SurrogateExport {
        let (hits, misses, entries) = self.export_full();
        (
            hits,
            misses,
            entries
                .into_iter()
                .filter(|(_, stale, _)| !stale)
                .map(|(k, _, f)| (k, f))
                .collect(),
        )
    }

    /// Export every resident fit — fresh and stale — in recency order,
    /// the hand-off between live-engine generations ([`crate::Engine`]'s
    /// delta overlay and compaction paths carry staleness across).
    pub(crate) fn export_full(&self) -> SurrogateFullExport {
        let inner = self.inner.lock().expect("surrogate cache lock");
        let mut entries: Vec<(u64, Vec<AttrId>, bool, Arc<SurrogateFit>)> = inner
            .map
            // lint:allow(ordered-iteration): the collected entries are sorted by their unique recency stamp below, erasing the hash visit order
            .iter()
            .map(|(k, slot)| (slot.touched, k.clone(), slot.stale, Arc::clone(&slot.fit)))
            .collect();
        entries.sort_by_key(|(touched, _, _, _)| *touched);
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries.into_iter().map(|(_, k, s, f)| (k, s, f)).collect(),
        )
    }

    /// Rebuild a cache from exported state, everything fresh. `entries`
    /// must be in recency order (as produced by
    /// [`SurrogateCache::export`]): they are re-stamped in sequence, so
    /// LRU eviction behaves exactly as in the donor. Entries beyond
    /// `capacity` evict from the front, mirroring what the donor's own
    /// bound would have kept.
    pub(crate) fn restore(
        capacity: usize,
        hits: u64,
        misses: u64,
        entries: Vec<(Vec<AttrId>, Arc<SurrogateFit>)>,
    ) -> Self {
        Self::restore_full(
            capacity,
            hits,
            misses,
            entries.into_iter().map(|(k, f)| (k, false, f)).collect(),
        )
    }

    /// [`SurrogateCache::restore`] with per-entry staleness — the
    /// live-table hand-off. A stale entry keeps its key resident (and
    /// its LRU position) but answers the next lookup by refitting.
    pub(crate) fn restore_full(
        capacity: usize,
        hits: u64,
        misses: u64,
        entries: Vec<(Vec<AttrId>, bool, Arc<SurrogateFit>)>,
    ) -> Self {
        let cache = SurrogateCache::new(capacity);
        {
            let mut inner = cache.inner.lock().expect("surrogate cache lock");
            let keep = entries.len().saturating_sub(cache.capacity);
            for (key, stale, fit) in entries.into_iter().skip(keep) {
                inner.stamp += 1;
                let stamp = inner.stamp;
                inner.map.insert(
                    key,
                    SurrogateSlot {
                        touched: stamp,
                        stale,
                        fit,
                    },
                );
            }
        }
        cache.hits.store(hits, Ordering::Relaxed);
        cache.misses.store(misses, Ordering::Relaxed);
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LewisError;

    fn fit_of(v: f64) -> SurrogateFit {
        SurrogateFit {
            intercept: v,
            coefficients: vec![v; 3],
            orders: vec![vec![0, 1, 2]],
        }
    }

    #[test]
    fn hit_returns_same_fit_and_counts() {
        let cache = SurrogateCache::new(8);
        let key = vec![AttrId(1), AttrId(2)];
        let a = cache.get_or_build(&key, || Ok(fit_of(1.0))).unwrap();
        let b = cache
            .get_or_build(&key, || panic!("must not refit on a hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached fit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn key_order_matters() {
        // [1, 2] and [2, 1] have different coefficient layouts: both
        // must be resident, neither may answer for the other.
        let cache = SurrogateCache::new(8);
        cache
            .get_or_build(&[AttrId(1), AttrId(2)], || Ok(fit_of(1.0)))
            .unwrap();
        let b = cache
            .get_or_build(&[AttrId(2), AttrId(1)], || Ok(fit_of(2.0)))
            .unwrap();
        assert_eq!(b.intercept, 2.0, "reversed set must fit fresh");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn capacity_bounds_residency_lru() {
        let cache = SurrogateCache::new(2);
        for v in 0..4u32 {
            cache
                .get_or_build(&[AttrId(v)], || Ok(fit_of(f64::from(v))))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2, "LRU must evict down to capacity");
        assert_eq!(s.misses, 4);
        // the two newest keys survive
        cache
            .get_or_build(&[AttrId(3)], || panic!("3 must be resident"))
            .unwrap();
        cache
            .get_or_build(&[AttrId(2)], || panic!("2 must be resident"))
            .unwrap();
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SurrogateCache::new(2);
        for _ in 0..2 {
            let r = cache.get_or_build(&[AttrId(0)], || Err(LewisError::Invalid("bad set".into())));
            assert!(r.is_err());
        }
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 2, "both lookups must have tried to fit");
    }

    #[test]
    fn export_restore_round_trips_in_recency_order() {
        let cache = SurrogateCache::new(4);
        for v in 0..3u32 {
            cache
                .get_or_build(&[AttrId(v)], || Ok(fit_of(f64::from(v))))
                .unwrap();
        }
        // touch 0 so it becomes most recent
        cache
            .get_or_build(&[AttrId(0)], || panic!("resident"))
            .unwrap();
        let (hits, misses, entries) = cache.export();
        assert_eq!((hits, misses), (1, 3));
        let keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![vec![AttrId(1)], vec![AttrId(2)], vec![AttrId(0)]],
            "least recently touched first"
        );
        // restoring into a smaller cache keeps the most recent entries
        let small = SurrogateCache::restore(2, hits, misses, entries);
        assert_eq!(small.stats().entries, 2);
        small
            .get_or_build(&[AttrId(0)], || panic!("most recent must survive"))
            .unwrap();
        small
            .get_or_build(&[AttrId(2)], || panic!("second most recent must survive"))
            .unwrap();
    }

    #[test]
    fn stale_entries_refit_in_place_and_stay_resident() {
        let cache = SurrogateCache::new(4);
        for v in 0..2u32 {
            cache
                .get_or_build(&[AttrId(v)], || Ok(fit_of(f64::from(v))))
                .unwrap();
        }
        // mark everything stale, as an append does
        let (hits, misses, entries) = cache.export_full();
        let stale = SurrogateCache::restore_full(
            4,
            hits,
            misses,
            entries.into_iter().map(|(k, _, f)| (k, true, f)).collect(),
        );
        assert_eq!(stale.stats().entries, 2, "keys stay resident");
        // a stale lookup refits (a miss) and replaces the entry fresh
        let refit = stale
            .get_or_build(&[AttrId(0)], || Ok(fit_of(10.0)))
            .unwrap();
        assert_eq!(refit.intercept, 10.0, "stale entry must refit");
        stale
            .get_or_build(&[AttrId(0)], || panic!("refit entry is fresh"))
            .unwrap();
        // snapshots carry only fresh fits; full exports carry both
        let (_, _, fresh) = stale.export();
        assert_eq!(fresh.len(), 1, "stale fit of AttrId(1) is omitted");
        assert_eq!(fresh[0].0, vec![AttrId(0)]);
        let (_, _, full) = stale.export_full();
        assert_eq!(full.len(), 2);
        assert!(full.iter().any(|(k, s, _)| k == &[AttrId(1)] && *s));
    }
}
