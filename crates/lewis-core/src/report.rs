//! Ranking, rank-agreement and formatting utilities shared by the
//! experiment harness (the figures compare *rankings* across methods).

/// 1-based competition ranks for `scores`, highest score = rank 1.
/// Ties share the same (minimum) rank.
pub fn ranks_desc(scores: &[f64]) -> Vec<usize> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut ranks = vec![0usize; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &idx in &order[i..=j] {
            ranks[idx] = i + 1;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two score vectors (via ranks).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ra: Vec<f64> = ranks_desc(a).into_iter().map(|r| r as f64).collect();
    let rb: Vec<f64> = ranks_desc(b).into_iter().map(|r| r as f64).collect();
    pearson(&ra, &rb)
}

/// Kendall's tau-a between two score vectors.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let prod = da * db;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// A fixed-width horizontal bar of `width` cells for a score in `[0, 1]`.
pub fn bar(score: f64, width: usize) -> String {
    let filled = ((score.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Render rows of `(label, scores...)` with per-column headers as an
/// aligned text table (the harness prints figures this way).
pub fn format_table(headers: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(9))
        .max()
        .unwrap_or(9);
    let mut out = String::new();
    out.push_str(&format!("{:<label_w$}", "attribute"));
    for h in headers {
        out.push_str(&format!("  {h:>8}"));
    }
    out.push('\n');
    for (label, scores) in rows {
        out.push_str(&format!("{label:<label_w$}"));
        for s in scores {
            out.push_str(&format!("  {s:>8.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_ties() {
        assert_eq!(ranks_desc(&[0.9, 0.1, 0.5]), vec![1, 3, 2]);
        assert_eq!(ranks_desc(&[0.5, 0.5, 0.1]), vec![1, 1, 3]);
        assert_eq!(ranks_desc(&[]), Vec::<usize>::new());
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_bounds_and_signs() {
        let a = [1.0, 2.0, 3.0];
        assert!((kendall_tau(&a, &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        let mixed = kendall_tau(&[1.0, 2.0, 3.0], &[2.0, 1.0, 3.0]);
        assert!((mixed - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_correlations() {
        assert_eq!(spearman_rho(&[1.0], &[2.0]), 1.0);
        // constant vector has no defined correlation; we return 0
        assert_eq!(spearman_rho(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(0.0, 3), "···");
        assert_eq!(bar(1.0, 3), "███");
        assert_eq!(bar(2.0, 2), "██", "clamped above");
        assert_eq!(bar(-1.0, 2), "··", "clamped below");
    }

    #[test]
    fn table_formatting_aligns() {
        let rows = vec![
            ("credit_history".to_string(), vec![0.5, 0.25]),
            ("age".to_string(), vec![0.1, 0.9]),
        ];
        let s = format_table(&["Nec", "Suf"], &rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Nec") && lines[0].contains("Suf"));
        assert!(lines[1].starts_with("credit_history"));
        assert!(lines[2].contains("0.900"));
    }
}
