//! Bounded, thread-safe cache of counting passes.
//!
//! Every explanation score starts from the same expensive primitive: one
//! [`ArmTable`](crate::scores) — a full scan of the labelled table
//! aggregated per adjustment cell and per intervened-attribute arm.
//! Consecutive queries routinely hit the identical `(intervened
//! attribute set, context, adjustment set)` key: repeated dashboard
//! queries, the per-group sweeps of a fairness audit, every batch of
//! contextual questions about one sub-population. This cache lets the
//! [`crate::Engine`] reuse those passes instead of re-scanning.
//!
//! Properties:
//! * **bit-identical results** — a hit returns the very [`ArmTable`]
//!   a cold build would have produced (same deterministic construction,
//!   same iteration order), so cached scores equal uncached scores
//!   bit for bit (pinned by `tests/engine_api.rs`);
//! * **bounded** — at most `capacity` entries, evicting the least
//!   recently used; an un-bounded cache over per-individual local
//!   contexts would grow with the table;
//! * **thread-safe** — a single mutex guards the map; the scan itself
//!   runs outside the lock, so concurrent misses build in parallel
//!   (a rare duplicate build inserts an equivalent table — harmless).

use crate::scores::ArmTable;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tabular::{AttrId, Context, FxHashMap};

/// Cache key: everything that determines an [`ArmTable`]'s content for a
/// fixed engine (table, prediction column and positive code are engine
/// invariants; the adjustment set is derived from graph + key but kept
/// in the key so graph-free and graph-full engines can never alias).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PassKey {
    /// Sorted intervened attribute set.
    pub(crate) xs: Vec<AttrId>,
    /// The query context `k`.
    pub(crate) k: Context,
    /// The backdoor adjustment set used for the pass.
    pub(crate) c_set: Vec<AttrId>,
}

/// Hit/miss counters plus occupancy — exposed via
/// [`crate::Engine::cache_stats`] so callers (and the warm-vs-cold
/// bench) can verify reuse actually happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run a counting pass.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    /// Returns `0.0` (not NaN) when there have been no lookups at all.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {}/{} resident)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.capacity
        )
    }
}

/// The bounded LRU map itself. Interior-mutable so the engine can stay
/// `&self` everywhere.
pub(crate) struct CountingCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct CacheInner {
    /// Value: `(last-touched stamp, shared pass)`.
    map: FxHashMap<PassKey, (u64, Arc<ArmTable>)>,
    /// Monotone counter driving LRU recency.
    stamp: u64,
}

impl CountingCache {
    /// An empty cache holding at most `capacity` passes (`capacity` is
    /// clamped to at least 1 — a zero-size cache would still be correct
    /// but would turn every lookup into a miss plus bookkeeping).
    pub(crate) fn new(capacity: usize) -> Self {
        CountingCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Return the cached pass for `(xs, k, c_set)` or run `build` and
    /// cache its result. Errors are returned without being cached, so a
    /// transiently-unsupported context does not poison later lookups.
    pub(crate) fn get_or_build(
        &self,
        xs: &[AttrId],
        k: &Context,
        c_set: &[AttrId],
        build: impl FnOnce() -> Result<ArmTable>,
    ) -> Result<Arc<ArmTable>> {
        let key = PassKey {
            xs: xs.to_vec(),
            k: k.clone(),
            c_set: c_set.to_vec(),
        };
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.stamp += 1;
            let stamp = inner.stamp;
            if let Some((touched, arms)) = inner.map.get_mut(&key) {
                *touched = stamp;
                let arms = Arc::clone(arms);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(arms);
            }
        }
        // Miss: scan outside the lock so other queries keep flowing.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let arms = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stamp += 1;
        let stamp = inner.stamp;
        inner.map.entry(key).or_insert((stamp, Arc::clone(&arms)));
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                // lint:allow(ordered-iteration): recency stamps are unique
                // (a monotone counter), so min_by_key has a single answer
                // regardless of visit order.
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.map.remove(&oldest);
        }
        Ok(arms)
    }

    /// Current counters and occupancy.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache lock").map.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every cached pass (counters are kept — they describe the
    /// engine's lifetime, not the current residency).
    pub(crate) fn clear(&self) {
        self.inner.lock().expect("cache lock").map.clear();
    }

    /// Export the resident passes in **recency order** (least recently
    /// touched first) together with the lifetime counters — the payload
    /// of an engine snapshot. The `Arc`s are shared, not copied.
    pub(crate) fn export(&self) -> (u64, u64, Vec<(PassKey, Arc<ArmTable>)>) {
        let inner = self.inner.lock().expect("cache lock");
        let mut entries: Vec<(u64, PassKey, Arc<ArmTable>)> = inner
            .map
            // lint:allow(ordered-iteration): the collected entries are
            // sorted by their unique recency stamp two lines down, which
            // erases the hash visit order.
            .iter()
            .map(|(k, (touched, arms))| (*touched, k.clone(), Arc::clone(arms)))
            .collect();
        entries.sort_by_key(|(touched, _, _)| *touched);
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries.into_iter().map(|(_, k, a)| (k, a)).collect(),
        )
    }

    /// Rebuild a cache from exported state. `entries` must be in
    /// recency order (as produced by [`CountingCache::export`]): they
    /// are re-stamped in sequence, so LRU eviction behaves exactly as
    /// in the donor. Entries beyond `capacity` evict from the front,
    /// mirroring what the donor's own bound would have kept.
    pub(crate) fn restore(
        capacity: usize,
        hits: u64,
        misses: u64,
        entries: Vec<(PassKey, Arc<ArmTable>)>,
    ) -> Self {
        let cache = CountingCache::new(capacity);
        {
            let mut inner = cache.inner.lock().expect("cache lock");
            let keep = entries.len().saturating_sub(cache.capacity);
            for (key, arms) in entries.into_iter().skip(keep) {
                inner.stamp += 1;
                let stamp = inner.stamp;
                inner.map.insert(key, (stamp, arms));
            }
        }
        cache.hits.store(hits, Ordering::Relaxed);
        cache.misses.store(misses, Ordering::Relaxed);
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoreEstimator;
    use tabular::{Domain, Schema, Table};

    fn estimator() -> ScoreEstimator {
        let mut s = Schema::new();
        s.push("x", Domain::boolean());
        s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        for row in [[0, 0], [0, 1], [1, 1], [1, 0], [1, 1]] {
            t.push_row(&row).unwrap();
        }
        ScoreEstimator::new(&t, None, AttrId(1), 1, 0.0).unwrap()
    }

    fn key_of(v: u32) -> (Vec<AttrId>, Context) {
        (vec![AttrId(0)], Context::of([(AttrId(5), v)]))
    }

    #[test]
    fn hit_rate_has_no_nan_edge() {
        // zero lookups: rate is exactly 0.0, not NaN
        let fresh = CacheStats::default();
        assert_eq!(fresh.hit_rate(), 0.0);
        assert!(!fresh.hit_rate().is_nan());
        // all hits / all misses / mixed
        let hot = CacheStats {
            hits: 4,
            misses: 0,
            ..CacheStats::default()
        };
        assert_eq!(hot.hit_rate(), 1.0);
        let cold = CacheStats {
            hits: 0,
            misses: 5,
            ..CacheStats::default()
        };
        assert_eq!(cold.hit_rate(), 0.0);
        let mixed = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(mixed.hit_rate(), 0.75);
    }

    #[test]
    fn stats_display_is_informative() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 2,
            capacity: 8,
        };
        let text = s.to_string();
        assert!(text.contains("3 hits"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("2/8"), "{text}");
        // the zero-lookup edge case renders too
        assert!(CacheStats::default().to_string().contains("0.0%"));
    }

    #[test]
    fn hit_returns_same_table_and_counts() {
        let est = estimator();
        let cache = CountingCache::new(8);
        let build = || est.build_arm_table(&[], &[AttrId(0)], &Context::empty(), None);
        let a = cache
            .get_or_build(&[AttrId(0)], &Context::empty(), &[], build)
            .unwrap();
        let b = cache
            .get_or_build(&[AttrId(0)], &Context::empty(), &[], || {
                panic!("must not rebuild on a hit")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached pass");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_bounds_residency_lru() {
        let est = estimator();
        let cache = CountingCache::new(2);
        for v in 0..4u32 {
            let (xs, _) = key_of(v);
            // distinct keys via distinct adjustment sets
            let c_set = vec![AttrId(10 + v)];
            let _ = cache.get_or_build(&xs, &Context::empty(), &c_set, || {
                est.build_arm_table(&[], &[AttrId(0)], &Context::empty(), None)
            });
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2, "LRU must evict down to capacity");
        assert_eq!(s.misses, 4);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = CountingCache::new(2);
        // a context matching no rows is unsupported, not cached
        let k = Context::of([(AttrId(0), 0), (AttrId(1), 7)]);
        for _ in 0..2 {
            let r = cache.get_or_build(&[AttrId(0)], &k, &[], || {
                Err(crate::LewisError::Unsupported("no rows".into()))
            });
            assert!(r.is_err());
        }
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 2, "both lookups must have tried to build");
    }
}
