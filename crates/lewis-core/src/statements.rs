//! Natural-language contrastive counterfactual statements.
//!
//! The paper's explanations are delivered to end users as sentences of
//! the canonical form (1):
//!
//! > "For individual(s) with attribute(s) `<actual-value>` for whom an
//! > algorithm made the decision `<actual-outcome>`, the decision would
//! > have been `<foil-outcome>` with probability `<score>` had the
//! > attribute been `<counterfactual-value>`."
//!
//! Figure 1 renders these for Maeve and Irrfan ("Your loan would have
//! been approved with 28% probability were Purpose = 'Furniture'").
//! This module turns scores back into those sentences.

use crate::scores::{ScoreEstimator, ScoreKind};
use crate::Result;
use tabular::{AttrId, Context, Value};

/// Vocabulary for rendering outcomes in sentences.
#[derive(Debug, Clone)]
pub struct OutcomeWords {
    /// Noun phrase for the decision subject, e.g. "your loan".
    pub subject: String,
    /// Verb phrase for the positive decision, e.g. "been approved".
    pub positive: String,
    /// Verb phrase for the negative decision, e.g. "been rejected".
    pub negative: String,
}

impl Default for OutcomeWords {
    fn default() -> Self {
        OutcomeWords {
            subject: "the decision".into(),
            positive: "been positive".into(),
            negative: "been negative".into(),
        }
    }
}

/// A rendered contrastive statement plus its underlying quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The sentence shown to the user.
    pub text: String,
    /// The probability the sentence quotes.
    pub probability: f64,
    /// Which score produced it.
    pub kind: ScoreKind,
    /// The attribute and counterfactual value the sentence references.
    pub attr: AttrId,
    /// The counterfactual value.
    pub counterfactual: Value,
}

/// Render a **sufficiency** statement for a negatively-decided
/// individual: "X would have `<positive>` with probability p were
/// `<attr>` = `<hi label>`."
pub fn sufficiency_statement(
    est: &ScoreEstimator,
    words: &OutcomeWords,
    attr: AttrId,
    current: Value,
    counterfactual: Value,
    k: &Context,
) -> Result<Statement> {
    let p = est.sufficiency(attr, counterfactual, current, k)?;
    let schema = est.table().schema();
    let name = schema.name(attr);
    let label = schema.attr(attr)?.domain.label(counterfactual);
    let text = format!(
        "{} would have {} with {:.0}% probability were {} = '{}'.",
        capitalize(&words.subject),
        words.positive,
        p * 100.0,
        name,
        label
    );
    Ok(Statement {
        text,
        probability: p,
        kind: ScoreKind::Sufficiency,
        attr,
        counterfactual,
    })
}

/// Render a **necessity** statement for a positively-decided individual:
/// "X would have `<negative>` with probability p were `<attr>` =
/// `<lo label>`."
pub fn necessity_statement(
    est: &ScoreEstimator,
    words: &OutcomeWords,
    attr: AttrId,
    current: Value,
    counterfactual: Value,
    k: &Context,
) -> Result<Statement> {
    let p = est.necessity(attr, current, counterfactual, k)?;
    let schema = est.table().schema();
    let name = schema.name(attr);
    let label = schema.attr(attr)?.domain.label(counterfactual);
    let text = format!(
        "{} would have {} with {:.0}% probability were {} = '{}'.",
        capitalize(&words.subject),
        words.negative,
        p * 100.0,
        name,
        label
    );
    Ok(Statement {
        text,
        probability: p,
        kind: ScoreKind::Necessity,
        attr,
        counterfactual,
    })
}

/// The strongest statement for one individual and attribute: sweeps the
/// value order and returns the maximal-probability counterfactual (the
/// kind is chosen by the individual's current decision).
pub fn best_statement(
    est: &ScoreEstimator,
    words: &OutcomeWords,
    row: &[Value],
    attr: AttrId,
    order: &[Value],
    min_support: usize,
) -> Result<Option<Statement>> {
    let outcome = row[est.pred_attr().index()];
    let favourable = outcome == est.positive();
    let current = row[attr.index()];
    let k = est.local_context(row, attr, min_support);
    let pos = order.iter().position(|&v| v == current).unwrap_or(0);
    let mut best: Option<Statement> = None;
    for (rank, &v) in order.iter().enumerate() {
        if v == current {
            continue;
        }
        let stmt = if favourable {
            if rank >= pos {
                continue; // necessity contrasts go downward
            }
            necessity_statement(est, words, attr, current, v, &k)
        } else {
            if rank <= pos {
                continue; // sufficiency contrasts go upward
            }
            sufficiency_statement(est, words, attr, current, v, &k)
        };
        match stmt {
            Ok(s) => {
                if best.as_ref().is_none_or(|b| s.probability > b.probability) {
                    best = Some(s);
                }
            }
            Err(crate::LewisError::Unsupported(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(best)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use crate::ordering::infer_value_order;
    use tabular::{Domain, Schema, Table};

    fn fixture() -> (Table, AttrId) {
        let mut s = Schema::new();
        s.push("purpose", Domain::categorical(["repairs", "furniture"]));
        let mut t = Table::new(s);
        // approvals: repairs 1/4, furniture 3/4
        for (purpose, reps_pos, reps_neg) in [(0u32, 1, 3), (1u32, 3, 1)] {
            for _ in 0..reps_pos * 25 {
                t.push_row(&[purpose]).unwrap();
            }
            let _ = reps_neg;
        }
        // relabel with a model that approves furniture 75% deterministically
        // by row position: simpler — explicit predictions
        let preds: Vec<u32> = (0..t.n_rows())
            .map(|r| {
                let v = t.get(r, AttrId(0)).unwrap();
                if v == 1 {
                    u32::from(r % 4 != 0)
                } else {
                    u32::from(r % 4 == 0)
                }
            })
            .collect();
        let pred = t.add_column("pred", Domain::boolean(), preds).unwrap();
        (t, pred)
    }

    #[test]
    fn sufficiency_statement_quotes_probability() {
        let (t, pred) = fixture();
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let words = OutcomeWords {
            subject: "your loan".into(),
            positive: "been approved".into(),
            negative: "been rejected".into(),
        };
        let stmt = sufficiency_statement(&est, &words, AttrId(0), 0, 1, &Context::empty()).unwrap();
        assert!(stmt
            .text
            .starts_with("Your loan would have been approved with"));
        assert!(stmt.text.contains("purpose = 'furniture'"));
        assert!((0.0..=1.0).contains(&stmt.probability));
        let quoted = format!("{:.0}%", stmt.probability * 100.0);
        assert!(stmt.text.contains(&quoted));
    }

    #[test]
    fn best_statement_picks_direction_from_outcome() {
        let (t, pred) = fixture();
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let words = OutcomeWords::default();
        let order = infer_value_order(&t, AttrId(0), pred, 1).unwrap();
        // negative individual with purpose = repairs: sufficiency upward
        let neg_row = [0u32, 0];
        let stmt = best_statement(&est, &words, &neg_row, AttrId(0), &order, 5)
            .unwrap()
            .expect("statement exists");
        assert_eq!(stmt.kind, ScoreKind::Sufficiency);
        assert_eq!(stmt.counterfactual, 1);
        // positive individual with purpose = furniture: necessity downward
        let pos_row = [1u32, 1];
        let stmt2 = best_statement(&est, &words, &pos_row, AttrId(0), &order, 5)
            .unwrap()
            .expect("statement exists");
        assert_eq!(stmt2.kind, ScoreKind::Necessity);
        assert_eq!(stmt2.counterfactual, 0);
    }

    #[test]
    fn no_statement_for_extreme_values() {
        let (t, pred) = fixture();
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let order = infer_value_order(&t, AttrId(0), pred, 1).unwrap();
        // a negative individual already holding the best value has no
        // upward contrast
        let row = [1u32, 0];
        let stmt =
            best_statement(&est, &OutcomeWords::default(), &row, AttrId(0), &order, 5).unwrap();
        assert!(stmt.is_none());
    }

    #[test]
    fn label_table_roundtrip_consistency() {
        // make sure the fixture's derived column behaves like label_table
        let mut s = Schema::new();
        s.push("x", Domain::boolean());
        let mut t = Table::new(s);
        t.push_row(&[1]).unwrap();
        let f = |row: &[Value]| row[0];
        let pred = label_table(&mut t, &f, "pred").unwrap();
        assert_eq!(t.get(0, pred).unwrap(), 1);
    }
}
