//! Ground-truth explanation scores from a fully specified SCM.
//!
//! When structural equations are known (synthetic data), the scores of
//! Definition 3.1 can be computed *exactly* with Pearl's three-step
//! procedure (paper eq. 3) instead of estimated from data. The paper uses
//! this as the gold standard for German-syn (§5.5, Fig. 11); we use it to
//! validate the estimators throughout the test suite.

use crate::blackbox::BlackBox;
use crate::scores::Scores;
use crate::Result;
use causal::counterfactual::CounterfactualEngine;
use causal::Scm;
use tabular::{AttrId, Context, Value};

/// Exact score computation against a known SCM and a black box `f`.
pub struct GroundTruth<'a> {
    engine: CounterfactualEngine<'a>,
    model: &'a dyn BlackBox,
    positive: Value,
}

impl<'a> GroundTruth<'a> {
    /// Build with the exact (noise-enumerating) engine.
    pub fn exact(scm: &'a Scm, model: &'a dyn BlackBox, positive: Value) -> Result<Self> {
        let engine = CounterfactualEngine::exact(scm)?;
        Ok(GroundTruth {
            engine,
            model,
            positive,
        })
    }

    /// Build with a Monte-Carlo engine of `n` particles (for SCMs whose
    /// noise space is too large to enumerate).
    pub fn monte_carlo<R: rand::Rng>(
        scm: &'a Scm,
        model: &'a dyn BlackBox,
        positive: Value,
        n: usize,
        rng: &mut R,
    ) -> Self {
        let engine = CounterfactualEngine::monte_carlo(scm, n, rng);
        GroundTruth {
            engine,
            model,
            positive,
        }
    }

    fn outcome(&self, world: &[Value]) -> bool {
        self.model.predict(world) == self.positive
    }

    fn matches(ctx: &Context, world: &[Value]) -> bool {
        ctx.matches_row(world)
    }

    /// Exact necessity score `Pr(o'_{X←x'} | x, o, k)`.
    pub fn necessity(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        let iv = [(attr.index(), x_lo)];
        Ok(self.engine.query(
            |w| Self::matches(k, w) && w[attr.index()] == x_hi && self.outcome(w),
            &iv,
            |w| !self.outcome(w),
        )?)
    }

    /// Exact sufficiency score `Pr(o_{X←x} | x', o', k)`.
    pub fn sufficiency(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        let iv = [(attr.index(), x_hi)];
        Ok(self.engine.query(
            |w| Self::matches(k, w) && w[attr.index()] == x_lo && !self.outcome(w),
            &iv,
            |w| self.outcome(w),
        )?)
    }

    /// Exact necessity-and-sufficiency score
    /// `Pr(o_{X←x}, o'_{X←x'} | k)`.
    pub fn nesuf(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<f64> {
        let hi = [(attr.index(), x_hi)];
        let lo = [(attr.index(), x_lo)];
        Ok(self.engine.joint_query(
            |w| Self::matches(k, w),
            &hi,
            |w| self.outcome(w),
            &lo,
            |w| !self.outcome(w),
        )?)
    }

    /// All three exact scores.
    pub fn scores(&self, attr: AttrId, x_hi: Value, x_lo: Value, k: &Context) -> Result<Scores> {
        Ok(Scores {
            necessity: self.necessity(attr, x_hi, x_lo, k)?,
            sufficiency: self.sufficiency(attr, x_hi, x_lo, k)?,
            nesuf: self.nesuf(attr, x_hi, x_lo, k)?,
        })
    }

    /// Exact sufficiency of a *set* intervention for an individual-like
    /// evidence context: `Pr(o_{A←â} | evidence)` — used to grade
    /// recourse output (§5.5).
    pub fn intervention_success(
        &self,
        actions: &[(AttrId, Value)],
        evidence: &Context,
    ) -> Result<f64> {
        let iv: Vec<(usize, Value)> = actions.iter().map(|&(a, v)| (a.index(), v)).collect();
        Ok(self
            .engine
            .query(|w| Self::matches(evidence, w), &iv, |w| self.outcome(w))?)
    }

    /// The monotonicity-violation measure of §5.5:
    /// `Λ_viol = Pr(o'_{X←x} | o, x')` — the probability that *raising*
    /// `X` destroys an already-positive outcome.
    pub fn monotonicity_violation(&self, attr: AttrId, x_hi: Value, x_lo: Value) -> Result<f64> {
        let iv = [(attr.index(), x_hi)];
        Ok(self.engine.query(
            |w| w[attr.index()] == x_lo && self.outcome(w),
            &iv,
            |w| !self.outcome(w),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causal::scm::{Mechanism, ScmBuilder};
    use tabular::{Domain, Schema};

    /// X → Y with Y = X XOR u (flip prob 0.25); f = Y.
    fn scm() -> Scm {
        let mut schema = Schema::new();
        schema.push("x", Domain::boolean());
        schema.push("y", Domain::boolean());
        let mut b = ScmBuilder::new(schema);
        b.edge(0, 1).unwrap();
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.mechanism(
            1,
            Mechanism::with_noise(vec![0.75, 0.25], |pa, u| pa[0] ^ (u as Value)),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn f(row: &[Value]) -> Value {
        row[1]
    }

    #[test]
    fn hand_computed_scores() {
        let scm = scm();
        let bb: &dyn BlackBox = &f;
        let gt = GroundTruth::exact(&scm, bb, 1).unwrap();
        // SUF: among x=0, o=0 (u_y = 0), intervening x←1 gives y = 1^0 = 1
        // with certainty.
        let suf = gt.sufficiency(AttrId(0), 1, 0, &Context::empty()).unwrap();
        assert!((suf - 1.0).abs() < 1e-12);
        // NEC: among x=1, o=1 (u_y = 0), x←0 gives y = 0 with certainty.
        let nec = gt.necessity(AttrId(0), 1, 0, &Context::empty()).unwrap();
        assert!((nec - 1.0).abs() < 1e-12);
        // NESUF = Pr(u_y = 0) = 0.75
        let ns = gt.nesuf(AttrId(0), 1, 0, &Context::empty()).unwrap();
        assert!((ns - 0.75).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_violation_measures_flips() {
        let scm = scm();
        let bb: &dyn BlackBox = &f;
        let gt = GroundTruth::exact(&scm, bb, 1).unwrap();
        // o=1 with x=0 means u_y = 1; then x←1 gives y = 0: always violated
        let viol = gt.monotonicity_violation(AttrId(0), 1, 0).unwrap();
        assert!((viol - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intervention_success_grades_actions() {
        let scm = scm();
        let bb: &dyn BlackBox = &f;
        let gt = GroundTruth::exact(&scm, bb, 1).unwrap();
        // among individuals with x=0, y=0 (u_y = 0): setting x=1 always works
        let evid = Context::of([(AttrId(0), 0), (AttrId(1), 0)]);
        let p = gt.intervention_success(&[(AttrId(0), 1)], &evid).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // with no action nothing changes
        let p0 = gt.intervention_success(&[], &evid).unwrap();
        assert!(p0.abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_close_to_exact() {
        let scm = scm();
        let bb: &dyn BlackBox = &f;
        let exact = GroundTruth::exact(&scm, bb, 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let mc = GroundTruth::monte_carlo(&scm, bb, 1, 40_000, &mut rng);
        let a = exact.nesuf(AttrId(0), 1, 0, &Context::empty()).unwrap();
        let b = mc.nesuf(AttrId(0), 1, 0, &Context::empty()).unwrap();
        assert!((a - b).abs() < 0.02, "{a} vs {b}");
    }
}
