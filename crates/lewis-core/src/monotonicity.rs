//! Monotonicity diagnostics (paper §4.1, §5.5).
//!
//! Proposition 4.2's exact identification assumes the algorithm is
//! *monotone* relative to the contrast: raising `X` from `x'` to `x`
//! never flips a positive decision to negative. §5.5 measures violation
//! as `Λ_viol = Pr(o'_{X←x} | o, x')` and shows LEWIS's estimates stay
//! within 5% of ground truth while `Λ_viol ≤ 0.25`.
//!
//! `Λ_viol` is itself a counterfactual, so from observational data we can
//! only bound it; [`empirical_violation`] reports the *observable* proxy
//! `max(0, Pr(o | x', C) − Pr(o | x, C))` averaged over adjustment cells —
//! zero for monotone algorithms, growing with violation strength.

use crate::scores::ScoreEstimator;
use crate::Result;
use tabular::{AttrId, Context, Value};

/// Observable monotonicity-violation proxy for the contrast `x_hi > x_lo`
/// in context `k`: the adjustment-cell-averaged positive part of
/// `Pr(o | x_lo, c, k) − Pr(o | x_hi, c, k)`.
///
/// Zero when the algorithm is monotone (raising `X` never lowers the
/// positive rate in any stratum); positive otherwise.
pub fn empirical_violation(
    est: &ScoreEstimator,
    attr: AttrId,
    x_hi: Value,
    x_lo: Value,
    k: &Context,
) -> Result<f64> {
    let c_set = est.adjustment_set(&[attr], k);
    let mut attrs = c_set.clone();
    attrs.push(attr);
    attrs.push(est.pred_attr());
    let counter = est.counting_pass(&attrs, k)?;
    let nc = c_set.len();
    let o = est.positive();

    #[derive(Default)]
    struct Cell {
        n: u64,
        n_hi: u64,
        n_hi_o: u64,
        n_lo: u64,
        n_lo_o: u64,
    }
    let mut cells: tabular::FxHashMap<Vec<Value>, Cell> = tabular::FxHashMap::default();
    counter.for_each_nonzero(|values, n| {
        let cell = cells.entry(values[..nc].to_vec()).or_default();
        cell.n += n;
        let xv = values[nc];
        let out = values[nc + 1];
        if xv == x_hi {
            cell.n_hi += n;
            if out == o {
                cell.n_hi_o += n;
            }
        } else if xv == x_lo {
            cell.n_lo += n;
            if out == o {
                cell.n_lo_o += n;
            }
        }
    });
    let total: u64 = cells.values().map(|c| c.n).sum();
    if total == 0 {
        return Ok(0.0);
    }
    let mut acc = 0.0;
    for cell in cells.values() {
        if cell.n_hi == 0 || cell.n_lo == 0 {
            continue; // contrast unobserved in this stratum
        }
        let p_hi = cell.n_hi_o as f64 / cell.n_hi as f64;
        let p_lo = cell.n_lo_o as f64 / cell.n_lo as f64;
        acc += (p_lo - p_hi).max(0.0) * (cell.n as f64 / total as f64);
    }
    Ok(acc)
}

/// Check an inferred value order for empirical monotonicity: returns the
/// worst pairwise violation over adjacent pairs of `order`.
pub fn order_violation(
    est: &ScoreEstimator,
    attr: AttrId,
    order: &[Value],
    k: &Context,
) -> Result<f64> {
    let mut worst = 0.0f64;
    for w in order.windows(2) {
        let v = empirical_violation(est, attr, w[1], w[0], k)?;
        worst = worst.max(v);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::label_table;
    use tabular::{Domain, Schema, Table};

    /// Hand-built table where `pred` is monotone (resp. anti-monotone)
    /// in `x`.
    fn table_with(f: impl Fn(u32) -> u32 + Send + Sync + 'static) -> (Table, AttrId, AttrId) {
        let mut s = Schema::new();
        let x = s.push("x", Domain::categorical(["0", "1", "2"]));
        let mut t = Table::new(s);
        for v in 0..3u32 {
            for _ in 0..10 {
                t.push_row(&[v]).unwrap();
            }
        }
        let pred = label_table(&mut t, &move |row: &[Value]| f(row[0]), "pred").unwrap();
        (t, x, pred)
    }

    #[test]
    fn monotone_model_has_zero_violation() {
        let (t, x, pred) = table_with(|v| u32::from(v >= 1));
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let v = empirical_violation(&est, x, 2, 0, &Context::empty()).unwrap();
        assert_eq!(v, 0.0);
        let ov = order_violation(&est, x, &[0, 1, 2], &Context::empty()).unwrap();
        assert_eq!(ov, 0.0);
    }

    #[test]
    fn anti_monotone_model_is_flagged() {
        let (t, x, pred) = table_with(|v| u32::from(v == 0));
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let v = empirical_violation(&est, x, 2, 0, &Context::empty()).unwrap();
        assert!((v - 1.0).abs() < 1e-12, "violation {v}");
    }

    #[test]
    fn partial_violation_is_graded() {
        // p(o | x=0) = 1 but p(o | x=2) = 0.5: violation of the 0 < 2
        // ordering with magnitude exactly 0.5.
        let mut s = Schema::new();
        let x = s.push("x", Domain::categorical(["0", "1", "2"]));
        let mut t = Table::new(s);
        let mut preds = Vec::new();
        for i in 0..10u32 {
            t.push_row(&[0]).unwrap();
            preds.push(1);
            t.push_row(&[2]).unwrap();
            preds.push(u32::from(i % 2 == 0));
        }
        let pred = t.add_column("pred", Domain::boolean(), preds).unwrap();
        let est = ScoreEstimator::new(&t, None, pred, 1, 0.0).unwrap();
        let v = empirical_violation(&est, x, 2, 0, &Context::empty()).unwrap();
        assert!((v - 0.5).abs() < 1e-9, "graded violation, got {v}");
    }
}
