//! LIME — Local Interpretable Model-agnostic Explanations (Ribeiro et
//! al., KDD 2016), tabular variant.
//!
//! To explain one instance: (1) generate perturbed samples by re-drawing
//! each attribute from its marginal training distribution with some
//! probability; (2) score them with the black box; (3) weight samples by
//! an exponential kernel on the fraction of attributes they share with
//! the instance; (4) fit a weighted ridge regression on the binary
//! interpretable representation `z_j = 1{sample_j == instance_j}`. The
//! coefficient of `z_j` is attribute `j`'s local contribution.

use crate::Result;
use ml::linear::LinearRegression;
use rand::Rng;
use tabular::{AttrId, Table, Value};

/// Configuration for [`LimeExplainer`].
#[derive(Debug, Clone)]
pub struct LimeOptions {
    /// Number of perturbed samples.
    pub n_samples: usize,
    /// Probability of re-drawing each attribute in a perturbation.
    pub perturb_prob: f64,
    /// Kernel width for the exponential similarity kernel.
    pub kernel_width: f64,
    /// Ridge regularization of the local surrogate.
    pub ridge: f64,
}

impl Default for LimeOptions {
    fn default() -> Self {
        LimeOptions {
            n_samples: 2000,
            perturb_prob: 0.5,
            kernel_width: 0.75,
            ridge: 1.0,
        }
    }
}

/// A LIME explainer bound to a training table (for marginal sampling).
pub struct LimeExplainer<'a> {
    table: &'a Table,
    features: Vec<AttrId>,
    /// Per feature: cumulative marginal distribution for sampling.
    marginals: Vec<Vec<f64>>,
    opts: LimeOptions,
}

impl<'a> LimeExplainer<'a> {
    /// Build an explainer for `features` with marginals from `table`.
    pub fn new(table: &'a Table, features: &[AttrId], opts: LimeOptions) -> Result<Self> {
        if opts.n_samples == 0 || !(0.0..=1.0).contains(&opts.perturb_prob) {
            return Err(crate::XaiError::Invalid(
                "n_samples > 0 and perturb_prob in [0,1] required".into(),
            ));
        }
        let mut marginals = Vec::with_capacity(features.len());
        for &a in features {
            let counts = table.value_counts(a)?;
            let total: usize = counts.iter().sum();
            let mut cum = Vec::with_capacity(counts.len());
            let mut acc = 0.0;
            for &c in &counts {
                acc += if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                };
                cum.push(acc);
            }
            marginals.push(cum);
        }
        Ok(LimeExplainer {
            table,
            features: features.to_vec(),
            marginals,
            opts,
        })
    }

    fn sample_value<R: Rng>(&self, feature_idx: usize, rng: &mut R) -> Value {
        let cum = &self.marginals[feature_idx];
        let r: f64 = rng.gen();
        cum.iter().position(|&c| r < c).unwrap_or(cum.len() - 1) as Value
    }

    /// Explain `row` for a real-valued model output `score_fn` (e.g. the
    /// positive-class probability). Returns `(attr, weight)` pairs in
    /// feature order; positive weights support the score.
    pub fn explain<R: Rng>(
        &self,
        row: &[Value],
        score_fn: &dyn Fn(&[Value]) -> f64,
        rng: &mut R,
    ) -> Result<Vec<(AttrId, f64)>> {
        let m = self.features.len();
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(self.opts.n_samples + 1);
        let mut ys: Vec<f64> = Vec::with_capacity(self.opts.n_samples + 1);
        let mut ws: Vec<f64> = Vec::with_capacity(self.opts.n_samples + 1);

        // the instance itself anchors the fit
        xs.push(vec![1.0; m]);
        ys.push(score_fn(row));
        ws.push(1.0);

        let mut perturbed = row.to_vec();
        for _ in 0..self.opts.n_samples {
            perturbed.copy_from_slice(row);
            let mut z = vec![1.0f64; m];
            let mut same = m as f64;
            for (j, &a) in self.features.iter().enumerate() {
                if rng.gen::<f64>() < self.opts.perturb_prob {
                    let v = self.sample_value(j, rng);
                    perturbed[a.index()] = v;
                    if v != row[a.index()] {
                        z[j] = 0.0;
                        same -= 1.0;
                    }
                }
            }
            let dist = 1.0 - same / m as f64; // normalized hamming distance
            let w = (-dist * dist / (self.opts.kernel_width * self.opts.kernel_width)).exp();
            xs.push(z);
            ys.push(score_fn(&perturbed));
            ws.push(w);
        }
        let fit = LinearRegression::fit_weighted(&xs, &ys, &ws, self.opts.ridge)?;
        Ok(self
            .features
            .iter()
            .zip(&fit.coefficients)
            .map(|(&a, &c)| (a, c))
            .collect())
    }

    /// The training table used for marginals.
    pub fn table(&self) -> &Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// score = 1 if a == 1, independent of b.
    fn setup() -> (Table, AttrId, AttrId) {
        let mut s = Schema::new();
        let a = s.push("a", Domain::boolean());
        let b = s.push("b", Domain::categorical(["x", "y", "z"]));
        let mut t = Table::new(s);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            t.push_row(&[rng.gen_range(0..2), rng.gen_range(0..3)])
                .unwrap();
        }
        (t, a, b)
    }

    #[test]
    fn relevant_feature_gets_weight() {
        let (t, a, b) = setup();
        let lime = LimeExplainer::new(&t, &[a, b], LimeOptions::default()).unwrap();
        let score = |row: &[Value]| f64::from(row[0] == 1);
        let mut rng = StdRng::seed_from_u64(2);
        let w = lime.explain(&[1, 0], &score, &mut rng).unwrap();
        assert_eq!(w.len(), 2);
        let (wa, wb) = (w[0].1, w[1].1);
        assert!(wa > 0.3, "holding a=1 drives the score: {wa}");
        assert!(wb.abs() < 0.1, "b is irrelevant: {wb}");
    }

    #[test]
    fn sign_flips_for_disadvantaged_value() {
        let (t, a, b) = setup();
        let lime = LimeExplainer::new(&t, &[a, b], LimeOptions::default()).unwrap();
        let score = |row: &[Value]| f64::from(row[0] == 1);
        let mut rng = StdRng::seed_from_u64(3);
        // instance holds a = 0: keeping it pins the score at 0, so its
        // weight is negative relative to perturbations
        let w = lime.explain(&[0, 1], &score, &mut rng).unwrap();
        assert!(w[0].1 < -0.2, "a=0 suppresses the score: {}", w[0].1);
    }

    #[test]
    fn deterministic_under_seed() {
        let (t, a, b) = setup();
        let lime = LimeExplainer::new(&t, &[a, b], LimeOptions::default()).unwrap();
        let score = |row: &[Value]| f64::from(row[0] == 1);
        let w1 = lime
            .explain(&[1, 2], &score, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let w2 = lime
            .explain(&[1, 2], &score, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn options_validated() {
        let (t, a, _) = setup();
        assert!(LimeExplainer::new(
            &t,
            &[a],
            LimeOptions {
                n_samples: 0,
                ..LimeOptions::default()
            }
        )
        .is_err());
        assert!(LimeExplainer::new(
            &t,
            &[a],
            LimeOptions {
                perturb_prob: 1.5,
                ..LimeOptions::default()
            }
        )
        .is_err());
    }
}
