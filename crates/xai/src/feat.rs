//! Permutation feature importance ("Feat" in the paper, Breiman 2001).
//!
//! Importance of a feature = the increase in the model's prediction error
//! after randomly permuting that feature's column, averaged over
//! `n_repeats` permutations. A purely associational global measure — the
//! paper shows it misses causally important attributes whose marginal
//! distribution is skewed (the German `housing` case, Fig. 9a).

use crate::Result;
use rand::seq::SliceRandom;
use rand::Rng;
use tabular::{AttrId, Table, Value};

/// Permutation importance of each attribute in `features` for a model
/// evaluated through `score_fn` (higher = better, e.g. accuracy).
///
/// Returns `(attr, importance)` pairs in the order of `features`, where
/// importance = baseline score − mean permuted score.
pub fn permutation_importance<R: Rng>(
    table: &Table,
    features: &[AttrId],
    score_fn: &dyn Fn(&Table) -> f64,
    n_repeats: usize,
    rng: &mut R,
) -> Result<Vec<(AttrId, f64)>> {
    if n_repeats == 0 {
        return Err(crate::XaiError::Invalid("n_repeats must be > 0".into()));
    }
    let baseline = score_fn(table);
    let mut out = Vec::with_capacity(features.len());
    for &attr in features {
        let original: Vec<Value> = table.column(attr)?.to_vec();
        let mut working = table.clone();
        let mut drop_total = 0.0;
        for _ in 0..n_repeats {
            let mut permuted = original.clone();
            permuted.shuffle(rng);
            working.replace_column(attr, permuted)?;
            drop_total += baseline - score_fn(&working);
        }
        out.push((attr, drop_total / n_repeats as f64));
    }
    Ok(out)
}

/// Convenience: accuracy of a black box against a label column.
pub fn accuracy_scorer<'a>(
    model: &'a dyn lewis_predict::Predict,
    label: AttrId,
) -> impl Fn(&Table) -> f64 + 'a {
    move |t: &Table| {
        let labels = t.column(label).expect("label column exists");
        let mut correct = 0usize;
        for (r, &want) in labels.iter().enumerate() {
            let row = t.row(r).expect("row in range");
            if model.predict(&row) == want {
                correct += 1;
            }
        }
        correct as f64 / t.n_rows().max(1) as f64
    }
}

/// Minimal predict-only abstraction mirroring `lewis_core::BlackBox`
/// without the cross-crate dependency (xai must stay independent of
/// lewis-core so comparisons cannot accidentally share code paths).
pub mod lewis_predict {
    use tabular::Value;

    /// Predict an outcome code from a full row of codes.
    pub trait Predict: Send + Sync {
        /// The predicted outcome code.
        fn predict(&self, row: &[Value]) -> Value;
    }

    impl<F> Predict for F
    where
        F: Fn(&[Value]) -> Value + Send + Sync,
    {
        fn predict(&self, row: &[Value]) -> Value {
            self(row)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Context, Domain, Schema};

    /// y depends on x0 only; x1 is noise.
    fn table() -> (Table, AttrId, AttrId, AttrId) {
        let mut s = Schema::new();
        let x0 = s.push("signal", Domain::boolean());
        let x1 = s.push("noise", Domain::boolean());
        let y = s.push("label", Domain::boolean());
        let mut t = Table::new(s);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..600 {
            let a: u32 = rng.gen_range(0..2);
            let b: u32 = rng.gen_range(0..2);
            t.push_row(&[a, b, a]).unwrap();
        }
        (t, x0, x1, y)
    }

    #[test]
    fn signal_feature_outranks_noise() {
        let (t, x0, x1, y) = table();
        let model = |row: &[Value]| row[0];
        let scorer = accuracy_scorer(&model, y);
        let mut rng = StdRng::seed_from_u64(5);
        let imps = permutation_importance(&t, &[x0, x1], &scorer, 5, &mut rng).unwrap();
        assert_eq!(imps.len(), 2);
        let (signal, noise) = (imps[0].1, imps[1].1);
        assert!(signal > 0.3, "permuting the signal must hurt: {signal}");
        assert!(noise.abs() < 0.05, "noise permutation is harmless: {noise}");
    }

    #[test]
    fn importance_is_near_zero_for_constant_columns() {
        let (mut t, x0, _, y) = table();
        let n = t.n_rows();
        let c = t
            .add_column("const", Domain::boolean(), vec![1; n])
            .unwrap();
        let model = |row: &[Value]| row[0];
        let scorer = accuracy_scorer(&model, y);
        let mut rng = StdRng::seed_from_u64(6);
        let imps = permutation_importance(&t, &[c, x0], &scorer, 3, &mut rng).unwrap();
        assert_eq!(imps[0].1, 0.0, "permuting a constant changes nothing");
        assert!(imps[1].1 > 0.3);
        // table untouched by the procedure
        assert_eq!(t.count(&Context::of([(c, 1)])), n);
    }

    #[test]
    fn zero_repeats_rejected() {
        let (t, x0, _, y) = table();
        let model = |row: &[Value]| row[0];
        let scorer = accuracy_scorer(&model, y);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(permutation_importance(&t, &[x0], &scorer, 0, &mut rng).is_err());
    }
}
