//! LinearIP recourse — actionable recourse in linear classification
//! (Ustun, Spangher & Liu, FAT* 2019), the paper's recourse baseline
//! (§5.4).
//!
//! Fits a logistic model on one-hot features and finds the minimal-cost
//! integer change to the actionable features that pushes the linear score
//! past `logit(threshold)`. Crucially there is **no causal model and no
//! verification** — the contrast with LEWIS: LinearIP's guarantees bind
//! only to its own linear surrogate, so it "does not return any solution
//! for success threshold > 0.8" on the paper's German example while
//! LEWIS still does.

use crate::Result;
use ml::linear::{logit, LogisticOptions, LogisticRegression};
use optim::{Group, IpError, Item, MckpSolver};
use tabular::{AttrId, Table, Value};

/// One suggested feature change.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearIpAction {
    /// The changed attribute.
    pub attr: AttrId,
    /// Old value code.
    pub from: Value,
    /// New value code.
    pub to: Value,
    /// Cost charged for the change.
    pub cost: f64,
}

/// Result of a LinearIP query.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearIpResult {
    /// The minimal-cost action set (empty when already above threshold).
    pub actions: Vec<LinearIpAction>,
    /// Total cost.
    pub total_cost: f64,
    /// The linear model's predicted probability after acting.
    pub new_probability: f64,
}

/// A LinearIP recourse generator.
pub struct LinearIpRecourse {
    model: LogisticRegression,
    actionable: Vec<AttrId>,
    offsets: Vec<usize>,
    cards: Vec<usize>,
    n_attrs: usize,
}

impl LinearIpRecourse {
    /// Fit the linear model on `table` with one-hot features over *all*
    /// attributes except `label`, with only `actionable` changeable.
    pub fn fit(table: &Table, label: AttrId, actionable: &[AttrId]) -> Result<Self> {
        if actionable.is_empty() || actionable.contains(&label) {
            return Err(crate::XaiError::Invalid("bad actionable set".into()));
        }
        let attrs: Vec<AttrId> = table.schema().attr_ids().filter(|&a| a != label).collect();
        let mut offsets_all = Vec::with_capacity(attrs.len());
        let mut width = 0usize;
        for &a in &attrs {
            offsets_all.push(width);
            width += table.schema().cardinality(a)?;
        }
        let mut xs = Vec::with_capacity(table.n_rows());
        for r in 0..table.n_rows() {
            let mut feat = vec![0.0f64; width];
            for (i, &a) in attrs.iter().enumerate() {
                feat[offsets_all[i] + table.get(r, a)? as usize] = 1.0;
            }
            xs.push(feat);
        }
        let ys: Vec<u32> = table
            .column(label)?
            .iter()
            .map(|&v| u32::from(v == 1))
            .collect();
        let model = LogisticRegression::fit(
            &xs,
            &ys,
            &LogisticOptions {
                epochs: 300,
                learning_rate: 0.5,
                l2: 1e-4,
            },
        )?;
        // record offsets/cards for the actionable subset, in order
        let mut offsets = Vec::with_capacity(actionable.len());
        let mut cards = Vec::with_capacity(actionable.len());
        for &a in actionable {
            let i = attrs
                .iter()
                .position(|&x| x == a)
                .ok_or_else(|| crate::XaiError::Invalid(format!("{a} not a feature")))?;
            offsets.push(offsets_all[i]);
            cards.push(table.schema().cardinality(a)?);
        }
        Ok(LinearIpRecourse {
            model,
            actionable: actionable.to_vec(),
            offsets,
            cards,
            n_attrs: table.schema().len(),
        })
    }

    /// Compute recourse for `row` (full schema row; the label cell is
    /// ignored): reach `Pr ≥ threshold` under the linear model, charging
    /// `unit_cost` per changed attribute.
    pub fn recourse(
        &self,
        table: &Table,
        label: AttrId,
        row: &[Value],
        threshold: f64,
    ) -> Result<LinearIpResult> {
        if !(0.0..1.0).contains(&threshold) {
            return Err(crate::XaiError::Invalid(
                "threshold must be in [0,1)".into(),
            ));
        }
        if row.len() < self.n_attrs {
            return Err(crate::XaiError::Invalid("row too short".into()));
        }
        // score via explicit one-hot encoding (mirrors fit layout)
        let attrs: Vec<AttrId> = table.schema().attr_ids().filter(|&a| a != label).collect();
        let mut offsets_all = Vec::with_capacity(attrs.len());
        let mut width = 0usize;
        for &a in &attrs {
            offsets_all.push(width);
            width += table.schema().cardinality(a)?;
        }
        let score = |r: &[Value]| -> f64 {
            let mut z = self.model.intercept;
            for (i, &a) in attrs.iter().enumerate() {
                z += self.model.coefficients[offsets_all[i] + r[a.index()] as usize];
            }
            z
        };
        let current = score(row);
        let needed = logit(threshold) - current;
        if needed <= 0.0 {
            return Ok(LinearIpResult {
                actions: Vec::new(),
                total_cost: 0.0,
                new_probability: ml::linear::sigmoid(current),
            });
        }
        let mut groups = Vec::with_capacity(self.actionable.len());
        for (i, &a) in self.actionable.iter().enumerate() {
            let cur = row[a.index()];
            let beta_cur = self.model.coefficients[self.offsets[i] + cur as usize];
            let mut items = Vec::new();
            for v in 0..self.cards[i] as Value {
                if v == cur {
                    continue;
                }
                let gain = self.model.coefficients[self.offsets[i] + v as usize] - beta_cur;
                items.push(Item {
                    id: v as usize,
                    cost: 1.0,
                    gain,
                });
            }
            groups.push(Group {
                id: a.0 as usize,
                items,
            });
        }
        match MckpSolver::new(groups, needed)?.solve() {
            Ok(sol) => {
                let actions: Vec<LinearIpAction> = sol
                    .chosen
                    .iter()
                    .map(|&(gid, vid)| LinearIpAction {
                        attr: AttrId(gid as u32),
                        from: row[gid],
                        to: vid as Value,
                        cost: 1.0,
                    })
                    .collect();
                let mut new_row = row.to_vec();
                for act in &actions {
                    new_row[act.attr.index()] = act.to;
                }
                Ok(LinearIpResult {
                    actions,
                    total_cost: sol.total_cost,
                    new_probability: ml::linear::sigmoid(score(&new_row)),
                })
            }
            Err(IpError::Infeasible) => Err(crate::XaiError::Optim(IpError::Infeasible)),
            Err(e) => Err(crate::XaiError::Optim(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tabular::{Domain, Schema};

    /// approval = savings >= 1 OR duration == 1 (noisy-free), so a linear
    /// model separates well.
    fn setup() -> (Table, AttrId) {
        let mut s = Schema::new();
        s.push("savings", Domain::categorical(["none", "some", "lots"]));
        s.push("duration", Domain::boolean());
        let label = s.push("pred", Domain::boolean());
        let mut t = Table::new(s);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..3000 {
            let sav: u32 = rng.gen_range(0..3);
            let dur: u32 = rng.gen_range(0..2);
            let y = u32::from(sav >= 1 || dur == 1);
            t.push_row(&[sav, dur, y]).unwrap();
        }
        (t, label)
    }

    #[test]
    fn finds_minimal_flip() {
        let (t, label) = setup();
        let ip = LinearIpRecourse::fit(&t, label, &[AttrId(0), AttrId(1)]).unwrap();
        // savings=none, duration=short: rejected; one change suffices
        let row = [0u32, 0, 0];
        let r = ip.recourse(&t, label, &row, 0.6).unwrap();
        assert_eq!(r.actions.len(), 1, "{:?}", r.actions);
        assert!(r.new_probability > 0.6);
    }

    #[test]
    fn already_positive_needs_nothing() {
        let (t, label) = setup();
        let ip = LinearIpRecourse::fit(&t, label, &[AttrId(0), AttrId(1)]).unwrap();
        let row = [2u32, 1, 1];
        let r = ip.recourse(&t, label, &row, 0.6).unwrap();
        assert!(r.actions.is_empty());
        assert!(r.new_probability > 0.9);
    }

    #[test]
    fn fails_for_extreme_thresholds() {
        // the paper: "LinearIP did not return any solution for success
        // threshold > 0.8" — with bounded coefficients the logit cannot
        // reach logit(0.999...) and the IP is infeasible.
        let (t, label) = setup();
        let ip = LinearIpRecourse::fit(&t, label, &[AttrId(0)]).unwrap();
        let row = [0u32, 0, 0];
        let extreme = ip.recourse(&t, label, &row, 0.999_999);
        assert!(extreme.is_err(), "unreachable threshold must be infeasible");
    }

    #[test]
    fn validation() {
        let (t, label) = setup();
        assert!(LinearIpRecourse::fit(&t, label, &[]).is_err());
        assert!(LinearIpRecourse::fit(&t, label, &[label]).is_err());
        let ip = LinearIpRecourse::fit(&t, label, &[AttrId(0)]).unwrap();
        assert!(ip.recourse(&t, label, &[0, 0, 0], 1.5).is_err());
        assert!(ip.recourse(&t, label, &[0], 0.5).is_err());
    }
}
