//! KernelSHAP — Shapley additive explanations via weighted least squares
//! (Lundberg & Lee, NeurIPS 2017).
//!
//! The Shapley values `φ` of a model `f` at instance `x` are the unique
//! solution of a weighted regression over coalitions `z ⊆ {1..M}`:
//! masked prediction `v(z) = E_background[f(x with features ∉ z replaced)]`,
//! kernel weight `π(z) = (M−1) / (C(M,|z|) · |z| · (M−|z|))`, subject to
//! the efficiency constraint `Σφ = f(x) − E[f]`. Coalitions are
//! enumerated exactly for `M ≤ exact_limit` and sampled otherwise.

use crate::Result;
use ml::linalg::Matrix;
use rand::Rng;
use tabular::{AttrId, Table, Value};

/// Configuration for [`KernelShap`].
#[derive(Debug, Clone)]
pub struct ShapOptions {
    /// Number of background rows (sampled from the table) used to
    /// estimate masked predictions.
    pub n_background: usize,
    /// Coalition budget when sampling (M > `exact_limit`).
    pub n_coalitions: usize,
    /// Enumerate all `2^M − 2` coalitions exactly up to this many
    /// features.
    pub exact_limit: usize,
}

impl Default for ShapOptions {
    fn default() -> Self {
        ShapOptions {
            n_background: 50,
            n_coalitions: 1024,
            exact_limit: 11,
        }
    }
}

/// A KernelSHAP explainer bound to a background table.
pub struct KernelShap<'a> {
    table: &'a Table,
    features: Vec<AttrId>,
    opts: ShapOptions,
}

impl<'a> KernelShap<'a> {
    /// Build an explainer for `features` over background data `table`.
    pub fn new(table: &'a Table, features: &[AttrId], opts: ShapOptions) -> Result<Self> {
        if features.is_empty() {
            return Err(crate::XaiError::Invalid("no features".into()));
        }
        if table.is_empty() {
            return Err(crate::XaiError::Invalid("empty background table".into()));
        }
        if opts.n_background == 0 || opts.n_coalitions < 2 {
            return Err(crate::XaiError::Invalid(
                "n_background > 0 and n_coalitions >= 2 required".into(),
            ));
        }
        Ok(KernelShap {
            table,
            features: features.to_vec(),
            opts,
        })
    }

    /// Shapley values for `row` under the model output `score_fn`.
    /// Returns `(attr, φ)` pairs in feature order; `Σφ ≈ f(x) − E[f]`.
    pub fn explain<R: Rng>(
        &self,
        row: &[Value],
        score_fn: &dyn Fn(&[Value]) -> f64,
        rng: &mut R,
    ) -> Result<Vec<(AttrId, f64)>> {
        let m = self.features.len();
        // background sample
        let n_bg = self.opts.n_background.min(self.table.n_rows());
        let bg_rows: Vec<Vec<Value>> =
            tabular::sample::sample_without_replacement(self.table.n_rows(), n_bg, rng)
                .into_iter()
                .map(|r| self.table.row(r).expect("row in range"))
                .collect();

        let f_x = score_fn(row);
        // E[f] over the background
        let mut base = 0.0;
        for bg in &bg_rows {
            base += score_fn(bg);
        }
        base /= bg_rows.len() as f64;

        // masked prediction for a coalition mask
        let mut work = row.to_vec();
        let mut v_of = |mask: &[bool]| -> f64 {
            let mut acc = 0.0;
            for bg in &bg_rows {
                work.copy_from_slice(row);
                for (j, &a) in self.features.iter().enumerate() {
                    if !mask[j] {
                        work[a.index()] = bg[a.index()];
                    }
                }
                acc += score_fn(&work);
            }
            acc / bg_rows.len() as f64
        };

        // gather coalitions and kernel weights
        let mut masks: Vec<Vec<bool>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        if m <= self.opts.exact_limit {
            for bits in 1..(1u64 << m) - 1 {
                let mask: Vec<bool> = (0..m).map(|j| bits >> j & 1 == 1).collect();
                let s = mask.iter().filter(|&&b| b).count();
                masks.push(mask);
                weights.push(kernel_weight(m, s));
            }
        } else {
            // sample coalition sizes ∝ kernel mass, then members uniformly
            let size_mass: Vec<f64> = (1..m).map(|s| kernel_weight(m, s) * binom(m, s)).collect();
            let total_mass: f64 = size_mass.iter().sum();
            for _ in 0..self.opts.n_coalitions {
                let mut r: f64 = rng.gen::<f64>() * total_mass;
                let mut s = 1usize;
                for (i, &mass) in size_mass.iter().enumerate() {
                    if r < mass {
                        s = i + 1;
                        break;
                    }
                    r -= mass;
                    s = i + 1;
                }
                let chosen = tabular::sample::sample_without_replacement(m, s, rng);
                let mut mask = vec![false; m];
                for c in chosen {
                    mask[c] = true;
                }
                masks.push(mask);
                // importance-sampling: sampled ∝ π(z)·C(m,s), so the WLS
                // weight reduces to uniform
                weights.push(1.0);
            }
        }

        // Weighted least squares with the efficiency constraint folded in:
        // substitute φ_m = (f(x) − base) − Σ_{j<m} φ_j.
        let span = f_x - base;
        if m == 1 {
            // single feature: φ_0 = span exactly
            return Ok(vec![(self.features[0], span)]);
        }
        let n = masks.len();
        let mut d = Matrix::zeros(n, m - 1);
        let mut ys = Vec::with_capacity(n);
        for (i, mask) in masks.iter().enumerate() {
            let z_m = if mask[m - 1] { 1.0 } else { 0.0 };
            for j in 0..m - 1 {
                let z_j = if mask[j] { 1.0 } else { 0.0 };
                d[(i, j)] = z_j - z_m;
            }
            ys.push(v_of(mask) - base - z_m * span);
        }
        // solve (DᵀWD) φ = DᵀW y with a tiny ridge for stability
        let mut gram = d.weighted_gram(&weights);
        for j in 0..gram.n_rows() {
            gram[(j, j)] += 1e-9;
        }
        let rhs = d.weighted_t_matvec(&weights, &ys);
        let phi_head = gram.solve(&rhs).map_err(crate::XaiError::Ml)?;
        let mut phis = phi_head;
        let phi_last = span - phis.iter().sum::<f64>();
        phis.push(phi_last);
        Ok(self.features.iter().copied().zip(phis).collect())
    }

    /// Global SHAP importance: mean |φ| over (up to) `n_rows` instances
    /// sampled from the table.
    pub fn global_importance<R: Rng>(
        &self,
        score_fn: &dyn Fn(&[Value]) -> f64,
        n_rows: usize,
        rng: &mut R,
    ) -> Result<Vec<(AttrId, f64)>> {
        let n = n_rows.min(self.table.n_rows());
        let rows = tabular::sample::sample_without_replacement(self.table.n_rows(), n, rng);
        let mut acc = vec![0.0f64; self.features.len()];
        for r in rows {
            let row = self.table.row(r)?;
            let phis = self.explain(&row, score_fn, rng)?;
            for (a, (_, phi)) in acc.iter_mut().zip(&phis) {
                *a += phi.abs();
            }
        }
        for a in acc.iter_mut() {
            *a /= n as f64;
        }
        Ok(self.features.iter().copied().zip(acc).collect())
    }
}

/// The Shapley kernel `π(z)` for coalition size `s` of `m` features.
fn kernel_weight(m: usize, s: usize) -> f64 {
    debug_assert!(s >= 1 && s < m);
    (m - 1) as f64 / (binom(m, s) * (s * (m - s)) as f64)
}

fn binom(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{Domain, Schema};

    /// additive model: score = a + 2b over binary a, b with uniform data.
    fn setup() -> Table {
        let mut s = Schema::new();
        s.push("a", Domain::boolean());
        s.push("b", Domain::boolean());
        s.push("c", Domain::boolean());
        let mut t = Table::new(s);
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    for _ in 0..5 {
                        t.push_row(&[a, b, c]).unwrap();
                    }
                }
            }
        }
        t
    }

    #[test]
    fn additive_model_recovers_exact_shapley() {
        // For an additive model, φ_j = f_j(x_j) − E[f_j]: with uniform
        // binary marginals, φ_a(x=1) = 0.5, φ_b(x=1) = 1.0, φ_c = 0.
        let t = setup();
        let score = |row: &[Value]| f64::from(row[0]) + 2.0 * f64::from(row[1]);
        let shap = KernelShap::new(
            &t,
            &[AttrId(0), AttrId(1), AttrId(2)],
            ShapOptions {
                n_background: 40,
                ..ShapOptions::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let phis = shap.explain(&[1, 1, 0], &score, &mut rng).unwrap();
        assert!((phis[0].1 - 0.5).abs() < 0.05, "φ_a = {}", phis[0].1);
        assert!((phis[1].1 - 1.0).abs() < 0.05, "φ_b = {}", phis[1].1);
        assert!(phis[2].1.abs() < 0.05, "φ_c = {}", phis[2].1);
    }

    #[test]
    fn efficiency_constraint_holds() {
        let t = setup();
        let score = |row: &[Value]| f64::from(row[0] & row[1]) + 0.3 * f64::from(row[2]);
        let shap = KernelShap::new(
            &t,
            &[AttrId(0), AttrId(1), AttrId(2)],
            ShapOptions::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let row = [1, 0, 1];
        let phis = shap.explain(&row, &score, &mut rng).unwrap();
        let sum: f64 = phis.iter().map(|&(_, p)| p).sum();
        // f(x) − E[f]: f = 0.3; E[f] = 0.25 + 0.15 = 0.4
        assert!((sum - (0.3 - 0.4)).abs() < 0.05, "Σφ = {sum}");
    }

    #[test]
    fn interaction_model_splits_credit() {
        // f = a AND b: at (1,1), symmetry forces φ_a = φ_b.
        let t = setup();
        let score = |row: &[Value]| f64::from(row[0] & row[1]);
        let shap = KernelShap::new(&t, &[AttrId(0), AttrId(1)], ShapOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let phis = shap.explain(&[1, 1, 0], &score, &mut rng).unwrap();
        assert!(
            (phis[0].1 - phis[1].1).abs() < 0.05,
            "symmetric credit: {} vs {}",
            phis[0].1,
            phis[1].1
        );
        assert!(phis[0].1 > 0.2);
    }

    #[test]
    fn single_feature_gets_full_span() {
        let t = setup();
        let score = |row: &[Value]| f64::from(row[0]) * 3.0;
        let shap = KernelShap::new(&t, &[AttrId(0)], ShapOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let phis = shap.explain(&[1, 0, 0], &score, &mut rng).unwrap();
        // f(x) = 3, E[f] = 1.5
        assert!((phis[0].1 - 1.5).abs() < 0.05);
    }

    #[test]
    fn sampled_mode_approximates_exact() {
        let t = setup();
        let score = |row: &[Value]| f64::from(row[0]) + 2.0 * f64::from(row[1]);
        let features = [AttrId(0), AttrId(1), AttrId(2)];
        let exact = KernelShap::new(&t, &features, ShapOptions::default()).unwrap();
        let sampled = KernelShap::new(
            &t,
            &features,
            ShapOptions {
                exact_limit: 1,
                n_coalitions: 4000,
                ..ShapOptions::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let pe = exact.explain(&[1, 1, 1], &score, &mut rng).unwrap();
        let ps = sampled.explain(&[1, 1, 1], &score, &mut rng).unwrap();
        for (e, s) in pe.iter().zip(&ps) {
            assert!((e.1 - s.1).abs() < 0.15, "{} vs {}", e.1, s.1);
        }
    }

    #[test]
    fn global_importance_ranks_features() {
        let t = setup();
        let score = |row: &[Value]| 2.0 * f64::from(row[1]) + 0.1 * f64::from(row[0]);
        let shap = KernelShap::new(
            &t,
            &[AttrId(0), AttrId(1), AttrId(2)],
            ShapOptions::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let imps = shap.global_importance(&score, 10, &mut rng).unwrap();
        assert!(imps[1].1 > imps[0].1, "b dominates a");
        assert!(imps[0].1 > imps[2].1, "a dominates the irrelevant c");
    }

    #[test]
    fn validation_errors() {
        let t = setup();
        assert!(KernelShap::new(&t, &[], ShapOptions::default()).is_err());
        let empty = Table::new(t.schema().clone());
        assert!(KernelShap::new(&empty, &[AttrId(0)], ShapOptions::default()).is_err());
        assert!(KernelShap::new(
            &t,
            &[AttrId(0)],
            ShapOptions {
                n_background: 0,
                ..ShapOptions::default()
            }
        )
        .is_err());
    }
}
