//! # xai — baseline explainers LEWIS is compared against
//!
//! The paper's evaluation (§5.4) compares LEWIS with the de-facto
//! standard XAI toolkit, re-implemented here from their original
//! descriptions:
//!
//! * [`feat`] — permutation feature importance (Breiman 2001), the
//!   paper's "Feat";
//! * [`lime`] — Local Interpretable Model-agnostic Explanations (Ribeiro
//!   et al. 2016): a kernel-weighted local ridge surrogate over
//!   perturbed samples;
//! * [`shap`] — KernelSHAP (Lundberg & Lee 2017): Shapley values via the
//!   weighted-least-squares characterization, exact for few features and
//!   coalition-sampled otherwise;
//! * [`linear_ip`] — LinearIP recourse (Ustun et al. 2019): minimal
//!   integer feature change crossing a linear classifier's boundary —
//!   no causal model, the contrast to LEWIS's recourse.
//!
//! All baselines operate on the same dictionary-coded rows as LEWIS so
//! rankings are directly comparable.

pub mod feat;
pub mod lime;
pub mod linear_ip;
pub mod shap;

pub use feat::permutation_importance;
pub use lime::{LimeExplainer, LimeOptions};
pub use linear_ip::{LinearIpRecourse, LinearIpResult};
pub use shap::{KernelShap, ShapOptions};

/// Errors from baseline explainers.
#[derive(Debug)]
pub enum XaiError {
    /// Underlying tabular error.
    Tabular(tabular::TabularError),
    /// Underlying model error.
    Ml(ml::MlError),
    /// Underlying optimizer error.
    Optim(optim::IpError),
    /// Bad request.
    Invalid(String),
}

impl std::fmt::Display for XaiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XaiError::Tabular(e) => write!(f, "tabular: {e}"),
            XaiError::Ml(e) => write!(f, "ml: {e}"),
            XaiError::Optim(e) => write!(f, "optim: {e}"),
            XaiError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for XaiError {}

impl From<tabular::TabularError> for XaiError {
    fn from(e: tabular::TabularError) -> Self {
        XaiError::Tabular(e)
    }
}

impl From<ml::MlError> for XaiError {
    fn from(e: ml::MlError) -> Self {
        XaiError::Ml(e)
    }
}

impl From<optim::IpError> for XaiError {
    fn from(e: optim::IpError) -> Self {
        XaiError::Optim(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XaiError>;
