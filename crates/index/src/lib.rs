//! # lewis-index — bitmap indexes over dictionary-coded tables
//!
//! Every LEWIS probability estimate reduces to conjunctive counts over
//! a dictionary-coded [`tabular::Table`] (paper eqs. 19–21): "how many
//! rows have `x = a` and `k = b` and `o = 1`?". Answering that with a
//! row scan costs `O(rows)` per probe — the cold local-context back-off
//! rescans the whole table once per dropped attribute, which is the
//! ~160 ms tail `BENCH_shard.json` records at a million rows.
//!
//! A [`TableIndex`] stores one [`tabular::Bitmap`] per
//! `(attribute, code)` pair — bit `i` set iff row `i` holds that code —
//! so the same conjunctive count becomes a word-level `AND` plus
//! `popcount` over `rows / 64` words. A grouped counting pass is the
//! same intersection walked over the group grid with zero-subtree
//! pruning, emitting the *identical* unsigned integers a scan would
//! (assembled via [`tabular::Counter::from_dense`]).
//!
//! ## Sharding and determinism
//!
//! The index keeps one bitmap set per row shard, aligned to the
//! canonical [`tabular::shard_boundaries`] partition, and reduces
//! per-shard results **in shard-index order**. Counts are `u64`s and
//! the reduction is addition, so — exactly as with sharded scans — an
//! indexed result is bit-identical to the single-scan result for any
//! shard count. Whether a query runs through the index or falls back
//! to a scan can never change an answer, only its latency.
//!
//! ## Example: build → index → count
//!
//! ```
//! use tabular::{Context, Counter, Domain, Schema, Table};
//! use lewis_index::TableIndex;
//!
//! let mut schema = Schema::new();
//! let color = schema.push("color", Domain::categorical(["red", "green"]));
//! let size = schema.push("size", Domain::categorical(["s", "m", "l"]));
//! let mut table = Table::new(schema);
//! for row in [[0, 0], [0, 2], [1, 1], [0, 2], [1, 2]] {
//!     table.push_row(&row).unwrap();
//! }
//!
//! // one bitmap per (attribute, code), two row shards
//! let index = TableIndex::build(&table, 2).unwrap();
//!
//! // a support probe is an AND + popcount — and equals the scan
//! let ctx = Context::of([(color, 0), (size, 2)]);
//! assert_eq!(index.count(&ctx), Some(2));
//! assert_eq!(index.count(&ctx).unwrap() as usize, table.count(&ctx));
//!
//! // a counting pass through the index is bit-identical to a scan
//! let indexed = index
//!     .counting_pass(&table, &[color, size], &Context::empty())
//!     .unwrap()
//!     .expect("small grid stays on the index path");
//! let scanned = Counter::build(&table, &[color, size], &Context::empty()).unwrap();
//! assert_eq!(indexed.nonzero_groups(), scanned.nonzero_groups());
//! assert_eq!(indexed.total(), scanned.total());
//! ```
//!
//! ## When it pays off
//!
//! Memory: per attribute, `cardinality × rows / 8` bytes (each code
//! owns a full-length bitmap), summed over attributes — ~5 MB for a
//! million rows of an 8-attribute, ~40-codes-total schema. Probes win
//! whenever the table is large and the group grid is small relative to
//! it; [`TableIndex::counting_pass`] prices each request with a
//! deterministic cost model and returns `None` (caller scans) when the
//! grid is too large for intersections to beat one sequential pass.

mod codec;

pub use codec::IndexError;

use tabular::shard::shard_boundaries;
use tabular::{column_bitmaps, words_for, AttrId, Bitmap, Context, Counter, Table, Value};

/// Group grids larger than this always fall back to the scan path:
/// past it the intersection walk visits more cells than a scan visits
/// rows in any realistic table, and the dense count vector would start
/// to rival the index itself in size.
const MAX_INDEX_GRID: u64 = 1 << 16;

/// The indexed walk is admitted when its estimated word operations stay
/// within this factor of the scan's cell reads — biased toward the
/// index because word ops cover 64 rows each and zero-subtree pruning
/// only ever lowers the real cost below the estimate.
const COST_BIAS: u64 = 8;

/// Above this shard count the per-shard walks run sequentially into one
/// accumulator instead of materializing one count vector per shard —
/// identical sums (addition, in shard order either way), bounded memory.
const PARALLEL_SHARD_LIMIT: usize = 64;

/// One shard's bitmaps: `attrs[a][c]` covers the shard's local rows
/// holding code `c` in attribute `a`.
#[derive(Debug, Clone)]
struct ShardIndex {
    attrs: Vec<Vec<Bitmap>>,
}

/// Per-(attribute, code) bitmap index over a table, one bitmap set per
/// canonical row shard. See the [crate docs](crate) for the layout and
/// the determinism argument.
#[derive(Debug, Clone)]
pub struct TableIndex {
    n_rows: usize,
    cardinalities: Vec<u32>,
    boundaries: Vec<usize>,
    shards: Vec<ShardIndex>,
}

impl TableIndex {
    /// Index every attribute of `table`, one bitmap set per shard of
    /// the canonical `shard_boundaries(n_rows, n_shards)` partition
    /// (clamped like the counting engine's own sharding). Shards build
    /// in parallel; the result is a pure function of the table and the
    /// shard count.
    pub fn build(table: &Table, n_shards: usize) -> tabular::Result<TableIndex> {
        use rayon::prelude::*;
        let schema = table.schema();
        let mut cardinalities = Vec::with_capacity(schema.len());
        for a in schema.attr_ids() {
            cardinalities.push(schema.cardinality(a)? as u32);
        }
        let boundaries = shard_boundaries(table.n_rows(), n_shards);
        let indices: Vec<usize> = (0..boundaries.len() - 1).collect();
        let built: Vec<tabular::Result<ShardIndex>> = indices
            .par_iter()
            .map(|&i| {
                let rows = boundaries[i]..boundaries[i + 1];
                let mut attrs = Vec::with_capacity(cardinalities.len());
                for (ai, a) in schema.attr_ids().enumerate() {
                    let col = &table.column(a)?[rows.clone()];
                    attrs.push(column_bitmaps(col, cardinalities[ai] as usize)?);
                }
                Ok(ShardIndex { attrs })
            })
            .collect();
        let mut shards = Vec::with_capacity(indices.len());
        for shard in built {
            shards.push(shard?);
        }
        Ok(TableIndex {
            n_rows: table.n_rows(),
            cardinalities,
            boundaries,
            shards,
        })
    }

    /// Rows the indexed table has.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Shards the index is partitioned into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-attribute cardinalities recorded at build time.
    pub fn cardinalities(&self) -> &[u32] {
        &self.cardinalities
    }

    /// Heap bytes held by the packed bitmap words (the dominant cost;
    /// per attribute this is `cardinality × n_rows / 8` bytes).
    pub fn memory_bytes(&self) -> u64 {
        let mut total = 0u64;
        for shard in &self.shards {
            for maps in &shard.attrs {
                for b in maps {
                    total += b.memory_bytes() as u64;
                }
            }
        }
        total
    }

    /// Whether this index describes `table` (same row count, same
    /// per-attribute cardinalities) — the compatibility gate an engine
    /// checks before installing a restored index.
    pub fn matches(&self, table: &Table) -> bool {
        if self.n_rows != table.n_rows() {
            return false;
        }
        let schema = table.schema();
        if self.cardinalities.len() != schema.len() {
            return false;
        }
        schema
            .attr_ids()
            .zip(&self.cardinalities)
            .all(|(a, &card)| schema.cardinality(a).is_ok_and(|c| c as u32 == card))
    }

    /// Count rows matching `ctx`: per shard, `AND` the context's code
    /// bitmaps and popcount, summed in shard-index order. Equals
    /// [`Table::count`] exactly. Returns `None` when `ctx` names an
    /// attribute this index does not cover (the caller's scan path owns
    /// the error behavior); a code outside its attribute's domain
    /// matches zero rows, exactly as a scan would find.
    pub fn count(&self, ctx: &Context) -> Option<u64> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (a, v) in ctx.iter() {
            if a.index() >= self.cardinalities.len() {
                return None;
            }
            pairs.push((a.index(), v as usize));
        }
        if pairs.is_empty() {
            return Some(self.n_rows as u64);
        }
        let mut total = 0u64;
        for shard in &self.shards {
            total += Self::shard_count(shard, &pairs);
        }
        Some(total)
    }

    /// Materialize 0/1 labels for `attr == code` over every row,
    /// assembled from the per-shard code bitmaps in shard-index order —
    /// `labels[r] == 1` iff row `r` holds `code` in `attr`, exactly the
    /// vector a column scan comparing against `code` would produce.
    /// This is how the recourse surrogate sources its training labels
    /// when an index is installed: one word-walk of the prediction
    /// attribute's bitmap instead of a full-column compare.
    ///
    /// Returns `None` when `attr` is outside the indexed schema (the
    /// caller's scan path owns that case); a code outside the
    /// attribute's domain labels every row 0, as a scan would.
    pub fn labels(&self, attr: AttrId, code: tabular::Value) -> Option<Vec<u32>> {
        if attr.index() >= self.cardinalities.len() {
            return None;
        }
        let mut labels = vec![0u32; self.n_rows];
        for (si, shard) in self.shards.iter().enumerate() {
            let base = self.boundaries[si];
            if let Some(bits) = shard.attrs[attr.index()].get(code as usize) {
                bits.for_each_set(|i| labels[base + i] = 1);
            }
        }
        Some(labels)
    }

    /// One shard's contribution to [`TableIndex::count`].
    fn shard_count(shard: &ShardIndex, pairs: &[(usize, usize)]) -> u64 {
        let ((a0, c0), rest) = match pairs.split_first() {
            Some((&first, rest)) => (first, rest),
            None => return 0,
        };
        let Some(first) = shard.attrs[a0].get(c0) else {
            return 0; // code outside the domain: no row can hold it
        };
        match rest {
            [] => first.count_ones(),
            [(a1, c1)] => match shard.attrs[*a1].get(*c1) {
                Some(second) => first.and_count(second),
                None => 0,
            },
            _ => {
                let mut mask = first.clone();
                for &(a, c) in rest {
                    let Some(b) = shard.attrs[a].get(c) else {
                        return 0;
                    };
                    mask.and_assign(b);
                    if mask.is_zero() {
                        return 0;
                    }
                }
                mask.count_ones()
            }
        }
    }

    /// A grouped counting pass through the index: group the rows
    /// matching `ctx` by `attrs`, producing a [`Counter`] bit-identical
    /// to [`Counter::build`]`(table, attrs, ctx)` (dense cells are the
    /// same `u64`s in the same mixed-radix order, assembled via
    /// [`Counter::from_dense`]).
    ///
    /// Returns `Ok(None)` when the request is better served by a scan —
    /// the group grid exceeds the built-in grid cap, the deterministic
    /// cost estimate says intersections would visit more words than the
    /// scan visits cells, or an attribute is outside the indexed schema.
    /// The decision is a pure function of the grid and row count, and
    /// both paths return identical counters, so routing can never
    /// change an answer.
    pub fn counting_pass(
        &self,
        table: &Table,
        attrs: &[AttrId],
        ctx: &Context,
    ) -> tabular::Result<Option<Counter>> {
        use rayon::prelude::*;
        if !self.matches(table) {
            return Ok(None);
        }
        let mut attr_idx = Vec::with_capacity(attrs.len());
        for &a in attrs {
            if a.index() >= self.cardinalities.len() {
                return Ok(None);
            }
            attr_idx.push(a.index());
        }
        let mut ctx_pairs: Vec<(usize, usize)> = Vec::new();
        for (a, v) in ctx.iter() {
            if a.index() >= self.cardinalities.len() {
                return Ok(None);
            }
            ctx_pairs.push((a.index(), v as usize));
        }

        // Mixed-radix strides, row-major, exactly as Counter::build.
        let radices: Vec<u64> = attr_idx
            .iter()
            .map(|&a| u64::from(self.cardinalities[a]))
            .collect();
        let mut strides = vec![1u64; radices.len()];
        let mut grid: u64 = 1;
        for i in (0..radices.len()).rev() {
            strides[i] = grid;
            grid = match grid.checked_mul(radices[i]) {
                Some(g) => g,
                None => return Ok(None), // a scan reports the overflow
            };
        }
        if grid > MAX_INDEX_GRID || !self.walk_is_cheaper(&radices) {
            return Ok(None);
        }

        let counts = if self.shards.len() <= 1 || self.shards.len() > PARALLEL_SHARD_LIMIT {
            // Sequential accumulation in shard-index order.
            let mut counts = vec![0u64; grid as usize];
            for si in 0..self.shards.len() {
                self.shard_pass(si, &attr_idx, &strides, &ctx_pairs, &mut counts);
            }
            counts
        } else {
            // One count vector per shard in parallel, summed in
            // shard-index order — u64 addition, so identical to the
            // sequential accumulation above.
            let indices: Vec<usize> = (0..self.shards.len()).collect();
            let partials: Vec<Vec<u64>> = indices
                .par_iter()
                .map(|&si| {
                    let mut counts = vec![0u64; grid as usize];
                    self.shard_pass(si, &attr_idx, &strides, &ctx_pairs, &mut counts);
                    counts
                })
                .collect();
            let mut counts = vec![0u64; grid as usize];
            for partial in partials {
                for (acc, n) in counts.iter_mut().zip(partial) {
                    *acc += n;
                }
            }
            counts
        };
        Counter::from_dense(table, attrs, counts).map(Some)
    }

    /// Deterministic cost gate: estimated word operations of the
    /// pruned intersection walk (`Σ_d min(∏radices[..d], rows) ×
    /// radices[d]` grid visits, each touching `rows / 64` words) versus
    /// the scan's `rows × attrs` cell reads, biased by [`COST_BIAS`].
    fn walk_is_cheaper(&self, radices: &[u64]) -> bool {
        let rows = self.n_rows as u64;
        let words = words_for(self.n_rows) as u64;
        let mut visits: u64 = 0;
        let mut prefix: u64 = 1;
        for &r in radices {
            visits = visits.saturating_add(prefix.min(rows).saturating_mul(r));
            prefix = prefix.saturating_mul(r);
        }
        let index_cost = visits.saturating_mul(words);
        let scan_cost = rows.saturating_mul(radices.len().max(1) as u64);
        index_cost <= scan_cost.saturating_mul(COST_BIAS)
    }

    /// Walk one shard's grid, accumulating leaf popcounts into the
    /// shared dense count vector.
    fn shard_pass(
        &self,
        si: usize,
        attr_idx: &[usize],
        strides: &[u64],
        ctx_pairs: &[(usize, usize)],
        counts: &mut [u64],
    ) {
        let shard = &self.shards[si];
        let rows = self.boundaries[si + 1] - self.boundaries[si];
        if rows == 0 {
            return;
        }
        // One scratch bitmap per inner depth, allocated once per shard:
        // inner nodes intersect via the fused single-pass `and_into`
        // instead of clone + and_assign + is_zero (three word passes).
        // The last two levels run through the fused `and_count_multi`
        // kernel and never materialize a mask, so only depths up to
        // `len - 3` need scratch.
        let inner_depths = attr_idx.len().saturating_sub(2);
        let mut scratch: Vec<Bitmap> = (0..inner_depths).map(|_| Bitmap::zeros(rows)).collect();

        if ctx_pairs.is_empty() {
            if attr_idx.is_empty() {
                counts[0] += rows as u64;
                return;
            }
            // Unconstrained pass: the first grouped attribute's code
            // bitmaps partition the shard's rows, so each serves
            // directly as a root mask — no all-ones base and no
            // depth-0 AND pass at all. The last code's popcount is
            // whatever the others leave of the shard.
            let maps = &shard.attrs[attr_idx[0]];
            let mut remaining = rows as u64;
            for (code, b) in maps.iter().enumerate() {
                let last = code + 1 == maps.len();
                let n = if last { remaining } else { b.count_ones() };
                if n == 0 {
                    continue;
                }
                if !last {
                    remaining -= n;
                }
                Self::walk(
                    shard,
                    b,
                    n,
                    attr_idx,
                    strides,
                    1,
                    code as u64 * strides[0],
                    counts,
                    &mut scratch,
                );
            }
            return;
        }

        // Fold the context into a base mask: a one-attribute context
        // borrows its code bitmap outright, larger ones fold into an
        // owned clone (a missing code means zero matching rows).
        let (&(a0, c0), rest_ctx) = ctx_pairs.split_first().expect("checked non-empty");
        let Some(first) = shard.attrs[a0].get(c0) else {
            return;
        };
        let owned;
        let (base, base_count) = match rest_ctx {
            [] => (first, first.count_ones()),
            _ => {
                let mut m = first.clone();
                for &(a, c) in rest_ctx {
                    let Some(b) = shard.attrs[a].get(c) else {
                        return;
                    };
                    m.and_assign(b);
                }
                owned = m;
                (&owned, owned.count_ones())
            }
        };
        if base_count == 0 {
            return;
        }
        Self::walk(
            shard,
            base,
            base_count,
            attr_idx,
            strides,
            0,
            0,
            counts,
            &mut scratch,
        );
    }

    /// Recursive prefix intersection: at each depth, intersect the
    /// running mask with each code bitmap of the next grouped
    /// attribute, pruning empty subtrees; leaves popcount straight into
    /// their mixed-radix cell. `mask_count` is `mask`'s popcount, which
    /// every caller already knows — the leaf level spends it on the
    /// partition identity below instead of recounting.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        shard: &ShardIndex,
        mask: &Bitmap,
        mask_count: u64,
        attr_idx: &[usize],
        strides: &[u64],
        depth: usize,
        key_base: u64,
        counts: &mut [u64],
        scratch: &mut [Bitmap],
    ) {
        if depth == attr_idx.len() {
            counts[key_base as usize] += mask_count;
            return;
        }
        let maps = &shard.attrs[attr_idx[depth]];
        if depth + 1 == attr_idx.len() {
            // Last level: the attribute's code bitmaps partition the
            // rows, so the final code's popcount is the mask total
            // minus the others — one fewer AND pass per leaf group,
            // and no intersections are ever materialized.
            let Some((_, head)) = maps.split_last() else {
                return;
            };
            let mut remaining = mask_count;
            for (code, b) in head.iter().enumerate() {
                let n = mask.and_count(b);
                if n > 0 {
                    remaining -= n;
                    counts[(key_base + code as u64 * strides[depth]) as usize] += n;
                }
            }
            if remaining > 0 {
                let last_code = (maps.len() - 1) as u64;
                counts[(key_base + last_code * strides[depth]) as usize] += remaining;
            }
            return;
        }
        if depth + 2 == attr_idx.len() {
            // Second-to-last level: one fused pass per code computes the
            // node's popcount *and* every leaf cell under it
            // ([`Bitmap::and_count_multi`]) — nothing is materialized,
            // and the leaf partition identity fills the final cell.
            let leaf_maps = &shard.attrs[attr_idx[depth + 1]];
            let Some((_, leaf_head)) = leaf_maps.split_last() else {
                return;
            };
            let last_leaf = (leaf_maps.len() - 1) as u64;
            let mut leaf_counts = vec![0u64; leaf_head.len()];
            for (code, b) in maps.iter().enumerate() {
                let n = mask.and_count_multi(b, leaf_head, &mut leaf_counts);
                if n == 0 {
                    continue;
                }
                let cell = key_base + code as u64 * strides[depth];
                let mut remaining = n;
                for (leaf, &m) in leaf_counts.iter().enumerate() {
                    if m > 0 {
                        remaining -= m;
                        counts[(cell + leaf as u64 * strides[depth + 1]) as usize] += m;
                    }
                }
                if remaining > 0 {
                    counts[(cell + last_leaf * strides[depth + 1]) as usize] += remaining;
                }
            }
            return;
        }
        let (sub, rest) = scratch
            .split_first_mut()
            .expect("shard_pass allocates one scratch bitmap per inner depth");
        for (code, b) in maps.iter().enumerate() {
            let n = mask.and_into(b, sub);
            if n == 0 {
                continue;
            }
            Self::walk(
                shard,
                sub,
                n,
                attr_idx,
                strides,
                depth + 1,
                key_base + code as u64 * strides[depth],
                counts,
                rest,
            );
        }
    }
}

/// Append-only per-(attribute, code) bit vectors over a **delta** table
/// — the write-side growth companion to [`TableIndex`].
///
/// A frozen [`TableIndex`] cannot grow (its bitmaps are sized and
/// sharded at build time), so a live engine keeps its base index
/// untouched and accumulates appended rows here: bit `i` of
/// `(attr, code)` is set iff delta row `i` holds `code` in `attr`.
/// Support probes over the live table are then
/// `base_index.count(ctx) + delta.count(ctx)` — two word-level
/// AND+popcount walks summed base-then-delta, exactly the integer one
/// scan over the concatenated table would count.
///
/// Word vectors grow lazily: a code's vector only extends when one of
/// its rows lands in a new word, and rows past a vector's end read as
/// zero. [`DeltaBitmaps::count`] mirrors [`TableIndex::count`]'s
/// contract — `None` defers out-of-schema attributes to the caller's
/// scan path, out-of-domain codes count zero rows.
#[derive(Debug, Clone, Default)]
pub struct DeltaBitmaps {
    n_rows: usize,
    cardinalities: Vec<u32>,
    /// `attrs[a][c]`: packed words over delta rows (missing tail words
    /// are all-zero).
    attrs: Vec<Vec<Vec<u64>>>,
}

impl DeltaBitmaps {
    /// An empty delta index over a schema described by its per-attribute
    /// cardinalities (use `TableIndex::cardinalities()`'s layout).
    pub fn new(cardinalities: Vec<u32>) -> DeltaBitmaps {
        let attrs = cardinalities
            .iter()
            .map(|&card| vec![Vec::new(); card as usize])
            .collect();
        DeltaBitmaps {
            n_rows: 0,
            cardinalities,
            attrs,
        }
    }

    /// Index every row of `table` — the rebuild-from-a-delta-shard path
    /// (restores, and engines overlaying a fresh batch).
    pub fn from_table(table: &Table) -> tabular::Result<DeltaBitmaps> {
        let schema = table.schema();
        let mut cardinalities = Vec::with_capacity(schema.len());
        for a in schema.attr_ids() {
            cardinalities.push(schema.cardinality(a)? as u32);
        }
        let mut delta = DeltaBitmaps::new(cardinalities);
        for (ai, a) in schema.attr_ids().enumerate() {
            for (r, &code) in table.column(a)?.iter().enumerate() {
                delta.set_bit(ai, code, r);
            }
        }
        delta.n_rows = table.n_rows();
        Ok(delta)
    }

    /// Append one row (codes in schema order). The caller validates
    /// codes against the schema first — the table the delta shard
    /// mirrors rejects out-of-domain rows before they reach here.
    pub fn append_row(&mut self, row: &[Value]) -> tabular::Result<()> {
        if row.len() < self.cardinalities.len() {
            return Err(tabular::TabularError::ArityMismatch {
                expected: self.cardinalities.len(),
                got: row.len(),
            });
        }
        for (a, (&code, &card)) in row.iter().zip(&self.cardinalities).enumerate() {
            if code >= card {
                return Err(tabular::TabularError::ValueOutOfDomain {
                    attr: a as u32,
                    value: code,
                    cardinality: card as usize,
                });
            }
        }
        let r = self.n_rows;
        for (a, &code) in row.iter().take(self.cardinalities.len()).enumerate() {
            self.set_bit(a, code, r);
        }
        self.n_rows += 1;
        Ok(())
    }

    fn set_bit(&mut self, attr: usize, code: Value, row: usize) {
        let words = &mut self.attrs[attr][code as usize];
        let w = row / 64;
        if words.len() <= w {
            words.resize(w + 1, 0);
        }
        words[w] |= 1u64 << (row % 64);
    }

    /// Delta rows indexed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Count delta rows matching `ctx`: AND the context's code word
    /// vectors and popcount. Equals a scan of the delta shard exactly.
    /// `None` when `ctx` names an attribute outside the indexed schema
    /// (the caller's scan path owns the error behavior); out-of-domain
    /// codes match zero rows.
    pub fn count(&self, ctx: &Context) -> Option<u64> {
        let mut vecs: Vec<&[u64]> = Vec::new();
        for (a, v) in ctx.iter() {
            if a.index() >= self.cardinalities.len() {
                return None;
            }
            match self.attrs[a.index()].get(v as usize) {
                Some(words) => vecs.push(words),
                None => return Some(0), // out-of-domain code
            }
        }
        if vecs.is_empty() {
            return Some(self.n_rows as u64);
        }
        let n_words = words_for(self.n_rows);
        let mut total = 0u64;
        for w in 0..n_words {
            let mut acc = match vecs[0].get(w) {
                Some(&x) => x,
                None => continue,
            };
            for words in &vecs[1..] {
                acc &= words.get(w).copied().unwrap_or(0);
                if acc == 0 {
                    break;
                }
            }
            total += u64::from(acc.count_ones());
        }
        Some(total)
    }

    /// Heap bytes held by the packed words.
    pub fn memory_bytes(&self) -> u64 {
        let mut total = 0u64;
        for maps in &self.attrs {
            for words in maps {
                total += (words.capacity() * 8) as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Domain, Schema, Value};

    fn table(n: usize) -> Table {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1", "2"]));
        s.push("b", Domain::categorical(["0", "1"]));
        s.push("c", Domain::categorical(["0", "1", "2", "3"]));
        let mut t = Table::new(s);
        for i in 0..n {
            t.push_row(&[
                (i % 3) as Value,
                ((i / 2) % 2) as Value,
                ((i * 7) % 4) as Value,
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn counts_equal_scans_for_every_context_and_shard_count() {
        let t = table(101);
        let contexts = [
            Context::empty(),
            Context::of([(AttrId(0), 1)]),
            Context::of([(AttrId(0), 2), (AttrId(1), 0)]),
            Context::of([(AttrId(0), 0), (AttrId(1), 1), (AttrId(2), 3)]),
        ];
        for n_shards in [1usize, 2, 4, 7, 128] {
            let idx = TableIndex::build(&t, n_shards).unwrap();
            assert_eq!(idx.n_shards(), n_shards.min(tabular::MAX_SHARDS));
            for ctx in &contexts {
                assert_eq!(
                    idx.count(ctx),
                    Some(t.count(ctx) as u64),
                    "{n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn out_of_domain_codes_count_zero_and_unknown_attrs_defer() {
        let t = table(20);
        let idx = TableIndex::build(&t, 3).unwrap();
        // code 9 is outside b's domain: a scan finds nothing
        assert_eq!(idx.count(&Context::of([(AttrId(1), 9)])), Some(0));
        assert_eq!(
            idx.count(&Context::of([(AttrId(0), 1), (AttrId(1), 9)])),
            Some(0)
        );
        // attribute 7 is not in the schema: defer to the scan path
        assert_eq!(idx.count(&Context::of([(AttrId(7), 0)])), None);
    }

    #[test]
    fn labels_match_a_column_scan_for_any_shard_count() {
        let t = table(101);
        for n_shards in [1usize, 2, 4, 7] {
            let idx = TableIndex::build(&t, n_shards).unwrap();
            for attr in [AttrId(0), AttrId(2)] {
                for code in 0..4u32 {
                    let scanned: Vec<u32> = t
                        .column(attr)
                        .unwrap()
                        .iter()
                        .map(|&v| u32::from(v == code))
                        .collect();
                    assert_eq!(
                        idx.labels(attr, code),
                        Some(scanned),
                        "{attr:?}={code} over {n_shards} shards"
                    );
                }
            }
            // out-of-domain code labels nothing; unknown attr defers
            assert_eq!(idx.labels(AttrId(1), 9), Some(vec![0u32; 101]));
            assert_eq!(idx.labels(AttrId(7), 0), None);
        }
    }

    #[test]
    fn counting_passes_are_bit_identical_to_scans() {
        let t = table(97);
        let groupings: &[&[AttrId]] = &[
            &[AttrId(0)],
            &[AttrId(0), AttrId(2)],
            &[AttrId(2), AttrId(0), AttrId(1)],
            &[AttrId(1), AttrId(1)], // duplicate attribute, scan semantics
            &[],
        ];
        let contexts = [
            Context::empty(),
            Context::of([(AttrId(1), 1)]),
            Context::of([(AttrId(0), 2), (AttrId(2), 1)]),
            Context::of([(AttrId(2), 9)]), // out-of-domain: empty counter
        ];
        for n_shards in [1usize, 2, 4, 7] {
            let idx = TableIndex::build(&t, n_shards).unwrap();
            for attrs in groupings {
                for ctx in &contexts {
                    let indexed = idx
                        .counting_pass(&t, attrs, ctx)
                        .unwrap()
                        .expect("tiny grids stay on the index path");
                    let scanned = Counter::build(&t, attrs, ctx).unwrap();
                    assert_eq!(indexed.total(), scanned.total(), "{attrs:?} {ctx:?}");
                    assert_eq!(
                        indexed.nonzero_groups(),
                        scanned.nonzero_groups(),
                        "{attrs:?} {ctx:?} over {n_shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_grids_fall_back_to_the_scan_path() {
        let wide = || Domain::categorical((0..300).map(|i| i.to_string()));
        let mut s = Schema::new();
        s.push("wide", wide());
        s.push("wide2", wide());
        let mut t = Table::new(s);
        for i in 0..50 {
            t.push_row(&[i % 300, (i * 3) % 300]).unwrap();
        }
        let idx = TableIndex::build(&t, 2).unwrap();
        // 300 × 300 = 90 000 cells > MAX_INDEX_GRID: the index declines
        let pass = idx
            .counting_pass(&t, &[AttrId(0), AttrId(1)], &Context::empty())
            .unwrap();
        assert!(pass.is_none());
        // but simple probes still run through the bitmaps
        assert_eq!(idx.count(&Context::of([(AttrId(0), 0)])), Some(1));
    }

    #[test]
    fn mismatched_tables_are_refused() {
        let t = table(30);
        let other = table(31);
        let idx = TableIndex::build(&t, 2).unwrap();
        assert!(idx.matches(&t));
        assert!(!idx.matches(&other));
        assert!(idx
            .counting_pass(&other, &[AttrId(0)], &Context::empty())
            .unwrap()
            .is_none());
    }

    #[test]
    fn memory_accounting_matches_the_layout() {
        let t = table(64);
        let idx = TableIndex::build(&t, 1).unwrap();
        // 64 rows = 1 word per bitmap; 3 + 2 + 4 = 9 bitmaps × 8 bytes
        assert_eq!(idx.memory_bytes(), 72);
        assert_eq!(idx.n_rows(), 64);
        assert_eq!(idx.cardinalities(), &[3, 2, 4]);
    }

    #[test]
    fn empty_tables_index_cleanly() {
        let t = table(0);
        let idx = TableIndex::build(&t, 4).unwrap();
        assert_eq!(idx.count(&Context::empty()), Some(0));
        assert_eq!(idx.count(&Context::of([(AttrId(0), 1)])), Some(0));
        let pass = idx
            .counting_pass(&t, &[AttrId(0)], &Context::empty())
            .unwrap()
            .expect("grid of 3 cells");
        assert_eq!(pass.total(), 0);
    }

    #[test]
    fn delta_counts_equal_scans_as_rows_append() {
        let t = table(150);
        let mut delta = DeltaBitmaps::new(vec![3, 2, 4]);
        let contexts = [
            Context::empty(),
            Context::of([(AttrId(0), 1)]),
            Context::of([(AttrId(0), 2), (AttrId(1), 0)]),
            Context::of([(AttrId(0), 0), (AttrId(1), 1), (AttrId(2), 3)]),
        ];
        let mut grown = Table::new(t.schema().clone());
        for r in 0..t.n_rows() {
            let row = t.row(r).unwrap();
            delta.append_row(&row).unwrap();
            grown.push_row(&row).unwrap();
            if r % 37 == 0 || r + 1 == t.n_rows() {
                for ctx in &contexts {
                    assert_eq!(
                        delta.count(ctx),
                        Some(grown.count(ctx) as u64),
                        "after {} rows, {ctx:?}",
                        r + 1
                    );
                }
            }
        }
        assert_eq!(delta.n_rows(), 150);
    }

    #[test]
    fn delta_from_table_equals_incremental_appends() {
        let t = table(101);
        let built = DeltaBitmaps::from_table(&t).unwrap();
        let mut appended = DeltaBitmaps::new(vec![3, 2, 4]);
        for row in t.rows() {
            appended.append_row(&row).unwrap();
        }
        let contexts = [
            Context::empty(),
            Context::of([(AttrId(1), 1)]),
            Context::of([(AttrId(0), 2), (AttrId(2), 1)]),
        ];
        for ctx in &contexts {
            assert_eq!(built.count(ctx), appended.count(ctx), "{ctx:?}");
            assert_eq!(built.count(ctx), Some(t.count(ctx) as u64), "{ctx:?}");
        }
    }

    #[test]
    fn delta_mirrors_the_index_edge_contract() {
        let t = table(20);
        let delta = DeltaBitmaps::from_table(&t).unwrap();
        // out-of-domain code: zero rows, exactly as a scan finds
        assert_eq!(delta.count(&Context::of([(AttrId(1), 9)])), Some(0));
        assert_eq!(
            delta.count(&Context::of([(AttrId(0), 1), (AttrId(1), 9)])),
            Some(0)
        );
        // out-of-schema attribute: defer to the caller's scan path
        assert_eq!(delta.count(&Context::of([(AttrId(7), 0)])), None);
        // malformed appends are typed errors, not silent corruption
        let mut d = DeltaBitmaps::new(vec![3, 2, 4]);
        assert!(d.append_row(&[0, 1]).is_err());
        assert!(d.append_row(&[0, 5, 0]).is_err());
        assert_eq!(d.n_rows(), 0);
        // empty deltas count zero everywhere and hold no words
        assert_eq!(d.count(&Context::empty()), Some(0));
        assert_eq!(d.memory_bytes(), 0);
    }
}
