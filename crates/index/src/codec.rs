//! Wire format for [`TableIndex`]: the payload of a `.lewis` pack's
//! optional index section.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u64  n_rows
//! u32  n_shards
//! u32  n_attrs
//! u32 × n_attrs          per-attribute cardinality
//! u64 × words            bitmap words, shard-major: for each shard in
//!                        index order, for each attribute, for each
//!                        code, that bitmap's words (count derived from
//!                        the shard's canonical row range)
//! ```
//!
//! Everything after the three header integers is *derivable*: shard row
//! ranges come from [`shard_boundaries`]`(n_rows, n_shards)` and word
//! counts from the range lengths, so the expected payload size is a
//! checked pure function of the header. Decoding therefore
//!
//! 1. sizes the payload **before** allocating anything proportional to
//!    the declared dimensions (a crafted header cannot become an
//!    allocation amplifier),
//! 2. rejects set bits past each bitmap's row count
//!    ([`Bitmap::from_words`]), and
//! 3. verifies the partition property per `(shard, attribute)`: code
//!    bitmaps must be disjoint and cover every row — the structural
//!    fact that makes intersections count exactly what a scan counts.
//!
//! Bit flips inside the pack are caught by the section CRC before this
//! parser runs; the checks here catch *valid-checksum nonsense* (a
//! rewritten section) and turn it into a typed error, never a panic.

use crate::TableIndex;
use std::fmt;
use tabular::shard::{shard_boundaries, MAX_SHARDS};
use tabular::{words_for, Bitmap};

/// Decoding failed: the bytes do not describe a well-formed index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexError {
    /// What was wrong, for the pack-level `Corrupt` error's detail.
    pub detail: String,
}

impl IndexError {
    fn new(detail: impl Into<String>) -> IndexError {
        IndexError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt index: {}", self.detail)
    }
}

impl std::error::Error for IndexError {}

/// Cardinalities above this are rejected outright: no discrete LEWIS
/// domain is remotely this wide, and the cap bounds the bitmap-vector
/// allocations a header can demand.
const MAX_CARDINALITY: u64 = 1 << 22;

/// Hard ceiling on `n_shards × Σ cardinalities` (the number of bitmap
/// structs a decode allocates) for payloads whose bitmaps are all
/// empty; larger payloads may carry proportionally more (see
/// [`TableIndex::from_bytes`]).
const MIN_BITMAP_BUDGET: u64 = 1 << 16;

fn read_u32(bytes: &[u8], at: &mut usize) -> Result<u32, IndexError> {
    let end = at
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| IndexError::new("truncated header"))?;
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[*at..end]);
    *at = end;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(bytes: &[u8], at: &mut usize) -> Result<u64, IndexError> {
    let end = at
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| IndexError::new("truncated header"))?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*at..end]);
    *at = end;
    Ok(u64::from_le_bytes(buf))
}

impl TableIndex {
    /// Serialize into the section payload format above.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.n_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.cardinalities.len() as u32).to_le_bytes());
        for &card in &self.cardinalities {
            out.extend_from_slice(&card.to_le_bytes());
        }
        for shard in &self.shards {
            for maps in &shard.attrs {
                for bitmap in maps {
                    for &word in bitmap.words() {
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Decode a section payload, validating structure before allocation
    /// and the partition property after. Any defect is a typed
    /// [`IndexError`]; this path never panics on input.
    pub fn from_bytes(bytes: &[u8]) -> Result<TableIndex, IndexError> {
        let mut at = 0usize;
        let n_rows_u64 = read_u64(bytes, &mut at)?;
        let n_shards = read_u32(bytes, &mut at)? as usize;
        let n_attrs = read_u32(bytes, &mut at)? as usize;
        let n_rows = usize::try_from(n_rows_u64)
            .map_err(|_| IndexError::new("row count exceeds the address space"))?;
        if n_shards == 0 || n_shards > MAX_SHARDS {
            return Err(IndexError::new(format!(
                "shard count {n_shards} outside [1, {MAX_SHARDS}]"
            )));
        }
        if n_attrs > u16::MAX as usize {
            return Err(IndexError::new(format!("{n_attrs} attributes is absurd")));
        }
        let mut cardinalities = Vec::with_capacity(n_attrs);
        let mut total_card: u64 = 0;
        for _ in 0..n_attrs {
            let card = read_u32(bytes, &mut at)?;
            if u64::from(card) > MAX_CARDINALITY {
                return Err(IndexError::new(format!("cardinality {card} is absurd")));
            }
            total_card += u64::from(card); // ≤ 65 535 × 2²² < u64::MAX
            cardinalities.push(card);
        }

        // Size the whole payload from the header before touching it.
        let boundaries = shard_boundaries(n_rows, n_shards);
        if boundaries.len() != n_shards + 1 {
            return Err(IndexError::new("shard layout mismatch"));
        }
        let mut expected_words: u64 = 0;
        for pair in boundaries.windows(2) {
            let shard_words = words_for(pair[1] - pair[0]) as u64;
            expected_words = shard_words
                .checked_mul(total_card)
                .and_then(|w| expected_words.checked_add(w))
                .ok_or_else(|| IndexError::new("declared dimensions overflow"))?;
        }
        let expected_len = expected_words
            .checked_mul(8)
            .and_then(|b| b.checked_add(at as u64))
            .ok_or_else(|| IndexError::new("declared dimensions overflow"))?;
        if expected_len != bytes.len() as u64 {
            return Err(IndexError::new(format!(
                "payload of {} bytes, header declares {expected_len}",
                bytes.len()
            )));
        }
        // The payload length now vouches for word allocations; bound
        // the bitmap *struct* count too (empty bitmaps occupy no words,
        // so a zero-row header could otherwise demand millions of them).
        let budget = (bytes.len() as u64 / 8).max(MIN_BITMAP_BUDGET);
        let total_bitmaps = (n_shards as u64).saturating_mul(total_card);
        if total_bitmaps > budget {
            return Err(IndexError::new(format!(
                "{total_bitmaps} bitmaps declared by a {}-byte payload",
                bytes.len()
            )));
        }

        let mut shards = Vec::with_capacity(n_shards);
        for pair in boundaries.windows(2) {
            let shard_rows = pair[1] - pair[0];
            let words = words_for(shard_rows);
            let mut attrs = Vec::with_capacity(n_attrs);
            for (ai, &card) in cardinalities.iter().enumerate() {
                let mut maps = Vec::with_capacity(card as usize);
                let mut union = vec![0u64; words];
                let mut covered: u64 = 0;
                for code in 0..card {
                    let mut raw = Vec::with_capacity(words);
                    for _ in 0..words {
                        raw.push(read_u64(bytes, &mut at)?);
                    }
                    for (u, &w) in union.iter_mut().zip(&raw) {
                        if *u & w != 0 {
                            return Err(IndexError::new(format!(
                                "attribute {ai} codes overlap (code {code})"
                            )));
                        }
                        *u |= w;
                    }
                    let bitmap = Bitmap::from_words(raw, shard_rows)
                        .map_err(|e| IndexError::new(format!("attribute {ai} code {code}: {e}")))?;
                    covered += bitmap.count_ones();
                    maps.push(bitmap);
                }
                if covered != shard_rows as u64 {
                    return Err(IndexError::new(format!(
                        "attribute {ai} covers {covered} of {shard_rows} rows"
                    )));
                }
                attrs.push(maps);
            }
            shards.push(crate::ShardIndex { attrs });
        }
        Ok(TableIndex {
            n_rows,
            cardinalities,
            boundaries,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{Context, Domain, Schema, Table, Value};

    fn table(n: usize) -> Table {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1", "2"]));
        s.push("b", Domain::boolean());
        let mut t = Table::new(s);
        for i in 0..n {
            t.push_row(&[(i % 3) as Value, (i % 2) as Value]).unwrap();
        }
        t
    }

    #[test]
    fn round_trips_exactly() {
        for (rows, shards) in [(0usize, 1usize), (1, 1), (65, 4), (130, 7)] {
            let t = table(rows);
            let idx = TableIndex::build(&t, shards).unwrap();
            let bytes = idx.to_bytes();
            let back = TableIndex::from_bytes(&bytes).unwrap();
            assert_eq!(back.n_rows(), idx.n_rows());
            assert_eq!(back.n_shards(), idx.n_shards());
            assert_eq!(back.cardinalities(), idx.cardinalities());
            assert_eq!(back.to_bytes(), bytes, "byte-stable round trip");
            // and it still counts correctly
            let ctx = Context::of([(tabular::AttrId(0), 1)]);
            assert_eq!(back.count(&ctx), Some(t.count(&ctx) as u64));
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let idx = TableIndex::build(&table(70), 3).unwrap();
        let bytes = idx.to_bytes();
        for len in 0..bytes.len() {
            let err = TableIndex::from_bytes(&bytes[..len]).unwrap_err();
            assert!(!err.detail.is_empty(), "truncated at {len}");
        }
    }

    #[test]
    fn flipped_bits_never_pass_validation_silently() {
        let t = table(70);
        let idx = TableIndex::build(&t, 2).unwrap();
        let bytes = idx.to_bytes();
        // flip one bit in every byte position; each result must either
        // fail typed or (for count-preserving swaps, impossible here
        // since codes partition rows) decode to a *valid* index
        let mut rejected = 0usize;
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            match TableIndex::from_bytes(&corrupt) {
                Err(_) => rejected += 1,
                Ok(decoded) => {
                    // a bit moved between codes of the same attribute in
                    // a way that kept the partition: still a well-formed
                    // index, just of a different table
                    assert_eq!(decoded.n_rows(), 70);
                }
            }
        }
        assert!(rejected > bytes.len() / 2, "rejected {rejected}");
    }

    #[test]
    fn allocation_amplifiers_are_rejected() {
        // zero rows, max shards, wide cardinalities: header would
        // demand millions of (empty) bitmaps from a tiny payload
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(MAX_SHARDS as u32).to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        let err = TableIndex::from_bytes(&bytes).unwrap_err();
        assert!(err.detail.contains("bitmaps"), "{err}");
        // absurd single dimensions fail fast too
        let mut wide = Vec::new();
        wide.extend_from_slice(&8u64.to_le_bytes());
        wide.extend_from_slice(&1u32.to_le_bytes());
        wide.extend_from_slice(&1u32.to_le_bytes());
        wide.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(TableIndex::from_bytes(&wide).is_err());
        let mut shardy = Vec::new();
        shardy.extend_from_slice(&8u64.to_le_bytes());
        shardy.extend_from_slice(&u32::MAX.to_le_bytes());
        shardy.extend_from_slice(&0u32.to_le_bytes());
        assert!(TableIndex::from_bytes(&shardy).is_err());
    }

    #[test]
    fn partition_violations_are_rejected() {
        let t = table(64); // one word per shardless bitmap
        let idx = TableIndex::build(&t, 1).unwrap();
        let bytes = idx.to_bytes();
        let header = 8 + 4 + 4 + 2 * 4;
        // overlap: copy code 0's word over code 1's
        let mut overlap = bytes.clone();
        let word0: [u8; 8] = overlap[header..header + 8].try_into().unwrap();
        overlap[header + 8..header + 16].copy_from_slice(&word0);
        let err = TableIndex::from_bytes(&overlap).unwrap_err();
        assert!(err.detail.contains("overlap"), "{err}");
        // under-coverage: zero out code 0's word
        let mut hole = bytes.clone();
        hole[header..header + 8].copy_from_slice(&[0u8; 8]);
        let err = TableIndex::from_bytes(&hole).unwrap_err();
        assert!(err.detail.contains("covers"), "{err}");
    }
}
