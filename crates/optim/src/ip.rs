//! Exact solver for multiple-choice min-cost covering programs.
//!
//! The recourse IP (paper eqs. 24–27) has one *group* per actionable
//! attribute, one *item* per candidate value (cost = action cost, gain =
//! its coefficient in the linearized sufficiency constraint eq. 28), the
//! covering constraint `Σ gains ≥ target`, and "pick at most one item per
//! group". Skipping a group costs nothing and gains nothing.
//!
//! The solver is exact branch-and-bound:
//!
//! * per-group **dominance pruning** removes items that cost more and
//!   gain less than a sibling;
//! * a **pooled fractional bound** (a relaxation of the MCKP LP bound)
//!   prunes subtrees whose optimistic cost already exceeds the incumbent;
//! * groups are explored in descending maximum-gain order so feasibility
//!   failures surface early.
//!
//! Problem sizes in the paper peak at 100 groups × a handful of items
//! (§5.5 scalability), which this solver handles in milliseconds.

use std::fmt;

/// One candidate action: set the group's attribute to a specific value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Caller's identifier (e.g. the value code), echoed back in solutions.
    pub id: usize,
    /// Non-negative action cost.
    pub cost: f64,
    /// Contribution to the covering constraint.
    pub gain: f64,
}

/// A group of mutually exclusive items (one actionable attribute).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Caller's identifier (e.g. the attribute id), echoed back.
    pub id: usize,
    /// Candidate items; at most one may be selected.
    pub items: Vec<Item>,
}

/// A feasible assignment returned by the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Total cost of the chosen items.
    pub total_cost: f64,
    /// Total gain of the chosen items (≥ the target).
    pub total_gain: f64,
    /// `(group id, item id)` pairs actually selected (skipped groups are
    /// absent).
    pub chosen: Vec<(usize, usize)>,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
pub enum IpError {
    /// No assignment reaches the target gain (or all candidates were
    /// rejected by the validator).
    Infeasible,
    /// Costs/gains contained NaN or negative costs.
    InvalidInput(String),
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::Infeasible => write!(f, "no feasible assignment reaches the target gain"),
            IpError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for IpError {}

/// An exact branch-and-bound solver instance.
#[derive(Debug, Clone)]
pub struct MckpSolver {
    /// Groups after dominance pruning, ordered by descending max gain.
    groups: Vec<Group>,
    target: f64,
    /// `suffix_max_gain[i]` = Σ over groups `i..` of their best gain.
    suffix_max_gain: Vec<f64>,
    /// Pooled items of groups `i..`, sorted by cost/gain efficiency.
    suffix_pool: Vec<Vec<Item>>,
}

impl MckpSolver {
    /// Build a solver for `groups` with covering target `target`.
    pub fn new(groups: Vec<Group>, target: f64) -> Result<Self, IpError> {
        for g in &groups {
            for item in &g.items {
                if !item.cost.is_finite() || !item.gain.is_finite() {
                    return Err(IpError::InvalidInput(format!(
                        "non-finite cost/gain in group {}",
                        g.id
                    )));
                }
                if item.cost < 0.0 {
                    return Err(IpError::InvalidInput(format!(
                        "negative cost in group {}",
                        g.id
                    )));
                }
            }
        }
        if !target.is_finite() {
            return Err(IpError::InvalidInput("non-finite target".into()));
        }

        // Items with gain <= 0 never help a covering constraint at
        // non-negative cost, so they are dropped (skipping the group
        // weakly dominates them). Cost-dominated items are *kept*: with a
        // solution validator (`solve_with`) the cheaper sibling may be
        // rejected, making the dominated item the optimum — the
        // incumbent-cost prune discards them cheaply in the plain case.
        let mut pruned: Vec<Group> = groups
            .into_iter()
            .map(|g| {
                let mut items: Vec<Item> = g.items.into_iter().filter(|it| it.gain > 0.0).collect();
                items.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(b.gain.total_cmp(&a.gain)));
                Group { id: g.id, items }
            })
            .filter(|g| !g.items.is_empty())
            .collect();

        // Explore high-gain groups first.
        pruned.sort_by(|a, b| {
            let ga = a.items.iter().map(|i| i.gain).fold(0.0, f64::max);
            let gb = b.items.iter().map(|i| i.gain).fold(0.0, f64::max);
            gb.total_cmp(&ga)
        });

        let n = pruned.len();
        let mut suffix_max_gain = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            let best = pruned[i].items.iter().map(|it| it.gain).fold(0.0, f64::max);
            suffix_max_gain[i] = suffix_max_gain[i + 1] + best;
        }
        // pooled fractional-bound item lists per suffix
        let mut suffix_pool: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        for i in (0..n).rev() {
            let mut pool = suffix_pool[i + 1].clone();
            pool.extend(pruned[i].items.iter().copied());
            pool.sort_by(|a, b| {
                let ra = a.cost / a.gain;
                let rb = b.cost / b.gain;
                ra.total_cmp(&rb)
            });
            suffix_pool[i] = pool;
        }

        Ok(MckpSolver {
            groups: pruned,
            target,
            suffix_max_gain,
            suffix_pool,
        })
    }

    /// Number of linear constraints in the IP formulation: one covering
    /// constraint plus one at-most-one constraint per group (paper §5.5
    /// reports this count growing linearly with actionable variables).
    pub fn n_constraints(&self) -> usize {
        self.groups.len() + 1
    }

    /// Number of binary decision variables.
    pub fn n_variables(&self) -> usize {
        self.groups.iter().map(|g| g.items.len()).sum()
    }

    /// Minimum fractional cost to gather `need` more gain from groups
    /// `from..` (a valid lower bound on the remaining integral cost).
    fn fractional_bound(&self, from: usize, need: f64) -> f64 {
        if need <= 0.0 {
            return 0.0;
        }
        let mut remaining = need;
        let mut cost = 0.0;
        for it in &self.suffix_pool[from] {
            if it.gain >= remaining {
                cost += it.cost * (remaining / it.gain);
                return cost;
            }
            remaining -= it.gain;
            cost += it.cost;
        }
        f64::INFINITY // even taking everything cannot cover `need`
    }

    /// Solve, accepting any feasible assignment.
    pub fn solve(&self) -> Result<Solution, IpError> {
        self.solve_with(|_| true)
    }

    /// Solve for the cheapest assignment that also passes `validate`.
    ///
    /// The validator enables the paper's lazy verification loop: the IP's
    /// linearized sufficiency constraint is necessary but approximate, so
    /// candidate solutions are re-checked against the exact sufficiency
    /// estimator and rejected ones excluded (a no-good cut).
    pub fn solve_with(
        &self,
        mut validate: impl FnMut(&Solution) -> bool,
    ) -> Result<Solution, IpError> {
        if self.target <= 0.0 {
            let empty = Solution {
                total_cost: 0.0,
                total_gain: 0.0,
                chosen: Vec::new(),
            };
            if validate(&empty) {
                return Ok(empty);
            }
        }
        if self.suffix_max_gain[0] < self.target {
            return Err(IpError::Infeasible);
        }

        struct Search<'a, V: FnMut(&Solution) -> bool> {
            solver: &'a MckpSolver,
            best: Option<Solution>,
            stack: Vec<(usize, usize)>,
            validate: V,
        }

        impl<V: FnMut(&Solution) -> bool> Search<'_, V> {
            fn dfs(&mut self, group: usize, cost: f64, gain: f64) {
                let need = self.solver.target - gain;
                if need <= 0.0 {
                    // feasible: candidate solution from current stack
                    let cand = Solution {
                        total_cost: cost,
                        total_gain: gain,
                        chosen: self.stack.clone(),
                    };
                    if (self.validate)(&cand) {
                        self.best = Some(cand);
                    }
                    // deeper assignments only add cost; stop here
                    return;
                }
                if group == self.solver.groups.len() {
                    return;
                }
                // feasibility prune
                if self.solver.suffix_max_gain[group] < need {
                    return;
                }
                // bound prune
                if let Some(best) = &self.best {
                    let bound = cost + self.solver.fractional_bound(group, need);
                    if bound >= best.total_cost {
                        return;
                    }
                }
                let g = &self.solver.groups[group];
                // take each item (cheapest first), then try skipping
                for item in &g.items {
                    if let Some(best) = &self.best {
                        if cost + item.cost >= best.total_cost {
                            continue;
                        }
                    }
                    self.stack.push((g.id, item.id));
                    self.dfs(group + 1, cost + item.cost, gain + item.gain);
                    self.stack.pop();
                }
                self.dfs(group + 1, cost, gain);
            }
        }

        let mut search = Search {
            solver: self,
            best: None,
            stack: Vec::new(),
            validate,
        };
        search.dfs(0, 0.0, 0.0);
        search.best.ok_or(IpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn g(id: usize, items: &[(usize, f64, f64)]) -> Group {
        Group {
            id,
            items: items
                .iter()
                .map(|&(i, c, w)| Item {
                    id: i,
                    cost: c,
                    gain: w,
                })
                .collect(),
        }
    }

    #[test]
    fn picks_cheapest_single_cover() {
        let solver = MckpSolver::new(
            vec![
                g(0, &[(0, 5.0, 10.0), (1, 2.0, 10.0)]),
                g(1, &[(0, 1.0, 1.0)]),
            ],
            8.0,
        )
        .unwrap();
        let s = solver.solve().unwrap();
        assert_eq!(s.total_cost, 2.0);
        assert_eq!(s.chosen, vec![(0, 1)]);
    }

    #[test]
    fn combines_groups_when_needed() {
        let solver = MckpSolver::new(
            vec![
                g(0, &[(0, 1.0, 4.0)]),
                g(1, &[(0, 1.0, 4.0)]),
                g(2, &[(0, 10.0, 8.0)]),
            ],
            8.0,
        )
        .unwrap();
        let s = solver.solve().unwrap();
        assert_eq!(s.total_cost, 2.0);
        assert_eq!(s.total_gain, 8.0);
        let mut groups: Vec<usize> = s.chosen.iter().map(|&(g, _)| g).collect();
        groups.sort_unstable();
        assert_eq!(groups, vec![0, 1]);
    }

    #[test]
    fn zero_target_needs_no_action() {
        let solver = MckpSolver::new(vec![g(0, &[(0, 1.0, 1.0)])], 0.0).unwrap();
        let s = solver.solve().unwrap();
        assert_eq!(s.total_cost, 0.0);
        assert!(s.chosen.is_empty());
    }

    #[test]
    fn infeasible_detected() {
        let solver = MckpSolver::new(vec![g(0, &[(0, 1.0, 3.0)])], 5.0).unwrap();
        assert_eq!(solver.solve(), Err(IpError::Infeasible));
        // no groups at all
        let empty = MckpSolver::new(vec![], 1.0).unwrap();
        assert_eq!(empty.solve(), Err(IpError::Infeasible));
    }

    #[test]
    fn non_positive_gain_items_are_pruned() {
        let solver = MckpSolver::new(
            vec![g(
                0,
                &[(0, 5.0, 1.0), (1, 1.0, 2.0), (2, 0.5, -1.0), (3, 0.1, 0.0)],
            )],
            1.0,
        )
        .unwrap();
        // items 2 and 3 have non-positive gain and are dropped; the
        // cost-dominated item 0 is kept for validator-driven searches but
        // never wins a plain solve
        assert_eq!(solver.n_variables(), 2);
        let s = solver.solve().unwrap();
        assert_eq!(s.chosen, vec![(0, 1)]);
    }

    #[test]
    fn constraint_count_matches_paper_formulation() {
        let groups: Vec<Group> = (0..5).map(|i| g(i, &[(0, 1.0, 1.0)])).collect();
        let solver = MckpSolver::new(groups, 2.0).unwrap();
        assert_eq!(solver.n_constraints(), 6); // 5 at-most-one + 1 covering
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(MckpSolver::new(vec![g(0, &[(0, -1.0, 1.0)])], 1.0).is_err());
        assert!(MckpSolver::new(vec![g(0, &[(0, f64::NAN, 1.0)])], 1.0).is_err());
        assert!(MckpSolver::new(vec![g(0, &[(0, 1.0, f64::INFINITY)])], 1.0).is_err());
        assert!(MckpSolver::new(vec![], f64::NAN).is_err());
    }

    #[test]
    fn validator_forces_second_best() {
        let solver = MckpSolver::new(vec![g(0, &[(0, 1.0, 5.0), (1, 3.0, 5.0)])], 5.0).unwrap();
        // reject the cheap assignment; solver must fall back to item 1
        let s = solver
            .solve_with(|cand| !cand.chosen.contains(&(0, 0)))
            .unwrap();
        assert_eq!(s.chosen, vec![(0, 1)]);
        assert_eq!(s.total_cost, 3.0);
        // rejecting everything is infeasible
        assert_eq!(solver.solve_with(|_| false), Err(IpError::Infeasible));
    }

    /// Brute force over all assignments for cross-checking.
    fn brute_force(groups: &[Group], target: f64) -> Option<f64> {
        fn walk(
            groups: &[Group],
            idx: usize,
            cost: f64,
            gain: f64,
            target: f64,
            best: &mut Option<f64>,
        ) {
            if gain >= target && best.is_none_or(|b| cost < b) {
                *best = Some(cost);
            }
            if idx == groups.len() {
                return;
            }
            walk(groups, idx + 1, cost, gain, target, best);
            for it in &groups[idx].items {
                walk(
                    groups,
                    idx + 1,
                    cost + it.cost,
                    gain + it.gain,
                    target,
                    best,
                );
            }
        }
        let mut best: Option<f64> = None;
        walk(groups, 0, 0.0, 0.0, target, &mut best);
        best
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..200 {
            let n_groups = rng.gen_range(1..6);
            let groups: Vec<Group> = (0..n_groups)
                .map(|gid| {
                    let n_items = rng.gen_range(1..5);
                    Group {
                        id: gid,
                        items: (0..n_items)
                            .map(|iid| Item {
                                id: iid,
                                cost: f64::from(rng.gen_range(0..20)) / 2.0,
                                gain: f64::from(rng.gen_range(-5..15)) / 2.0,
                            })
                            .collect(),
                    }
                })
                .collect();
            let target = f64::from(rng.gen_range(0..20)) / 2.0;
            let expected = brute_force(&groups, target);
            let got = MckpSolver::new(groups, target).unwrap().solve();
            match (expected, got) {
                (Some(c), Ok(s)) => {
                    assert!(
                        (s.total_cost - c).abs() < 1e-9,
                        "trial {trial}: optimal {c} vs solver {}",
                        s.total_cost
                    );
                    assert!(s.total_gain >= target - 1e-9);
                }
                (None, Err(IpError::Infeasible)) => {}
                (e, g) => panic!("trial {trial}: brute force {e:?} vs solver {g:?}"),
            }
        }
    }

    #[test]
    fn scales_to_hundred_groups() {
        let mut rng = StdRng::seed_from_u64(7);
        let groups: Vec<Group> = (0..100)
            .map(|gid| Group {
                id: gid,
                items: (0..8)
                    .map(|iid| Item {
                        id: iid,
                        cost: rng.gen_range(0.1..10.0),
                        gain: rng.gen_range(0.1..3.0),
                    })
                    .collect(),
            })
            .collect();
        let solver = MckpSolver::new(groups, 40.0).unwrap();
        assert_eq!(solver.n_constraints(), 101);
        let start = std::time::Instant::now();
        let s = solver.solve().unwrap();
        assert!(s.total_gain >= 40.0 - 1e-9);
        assert!(
            start.elapsed().as_secs() < 30,
            "B&B took too long: {:?}",
            start.elapsed()
        );
    }
}
