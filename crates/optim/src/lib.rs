//! # optim — exact integer programming for recourse
//!
//! The paper frames counterfactual recourse as the integer program
//! (24)–(27): pick at most one new value per actionable attribute,
//! minimize total action cost, subject to a linear "sufficiency" covering
//! constraint (the linearized eq. 28). Structurally this is a
//! **multiple-choice min-cost covering knapsack**, solved here exactly by
//! branch-and-bound with per-group dominance pruning and a greedy
//! fractional (LP-relaxation) bound.
//!
//! The same solver serves the LinearIP recourse baseline (Ustun et al.),
//! whose constraint is a linear classifier's score change.

pub mod ip;

pub use ip::{Group, IpError, Item, MckpSolver, Solution};
