//! Property-based tests for the ML substrate's numerical invariants.

use ml::linalg::Matrix;
use ml::linear::{logit, sigmoid, LinearRegression};
use ml::tree::{DecisionTreeRegressor, TreeParams};
use ml::Regressor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Diagonally dominant matrices are invertible; `solve` must satisfy
/// `A·x ≈ b`.
fn arb_dd_system() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, n), n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
    })
}

proptest! {
    #[test]
    fn gaussian_solve_satisfies_system((mut a, b) in arb_dd_system()) {
        let n = a.len();
        // enforce diagonal dominance
        for (i, row) in a.iter_mut().enumerate() {
            let off: f64 = row.iter().map(|v| v.abs()).sum();
            row[i] = off + 1.0;
        }
        let rows: Vec<&[f64]> = a.iter().map(Vec::as_slice).collect();
        let m = Matrix::from_rows(&rows);
        let x = m.solve(&b).unwrap();
        let back = m.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        // SPD path agrees when the matrix is symmetric positive definite
        // (A·Aᵀ + I is); compare both solvers there
        let mut sym = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { 1.0 } else { 0.0 };
                for (aik, ajk) in a[i].iter().zip(&a[j]) {
                    acc += aik * ajk;
                }
                sym[(i, j)] = acc;
            }
        }
        let x1 = sym.solve(&b).unwrap();
        let x2 = sym.solve_spd(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_logit_bijection(p in 0.0001f64..0.9999) {
        prop_assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid(lo) <= sigmoid(hi));
        prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
    }

    /// OLS on noiseless linear data recovers the generating line.
    #[test]
    fn linear_regression_interpolates(
        intercept in -5.0f64..5.0,
        slope in -5.0f64..5.0,
        xs in proptest::collection::vec(-10.0f64..10.0, 3..30),
    ) {
        // need variation in x
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 0.5);
        let feats: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let m = LinearRegression::fit(&feats, &ys, 0.0).unwrap();
        prop_assert!((m.intercept - intercept).abs() < 1e-5, "b0 {}", m.intercept);
        prop_assert!((m.coefficients[0] - slope).abs() < 1e-5);
    }

    /// A regression tree's prediction is always within the range of the
    /// training targets (leaves are means of subsets).
    #[test]
    fn tree_predictions_stay_in_target_range(
        data in proptest::collection::vec((-10.0f64..10.0, -5.0f64..5.0), 4..50),
        query in -20.0f64..20.0,
    ) {
        let xs: Vec<Vec<f64>> = data.iter().map(|&(x, _)| vec![x]).collect();
        let ys: Vec<f64> = data.iter().map(|&(_, y)| y).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree =
            DecisionTreeRegressor::fit(&xs, &ys, &TreeParams::default(), &mut rng).unwrap();
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        let p = tree.predict(&[query]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }
}
