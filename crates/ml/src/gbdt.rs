//! Gradient-boosted decision trees with second-order (Newton) leaf
//! weights — the XGBoost training scheme for binary logistic loss.
//!
//! Each round fits a regression tree to the negative gradients, then
//! replaces each leaf's value with the Newton step
//! `−Σg / (Σh + λ)` computed from the per-sample gradients `g = p − y`
//! and hessians `h = p(1 − p)` of the logistic loss.

use crate::linear::sigmoid;
use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::{Classifier, MlError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters for [`GradientBoostedTrees`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Per-round tree shape.
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 100,
            learning_rate: 0.1,
            lambda: 1.0,
            tree: TreeParams {
                max_depth: 4,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
        }
    }
}

/// A boosted ensemble for binary classification.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<DecisionTreeRegressor>,
}

impl GradientBoostedTrees {
    /// Train on labels in `{0, 1}`.
    pub fn fit(xs: &[Vec<f64>], ys: &[u32], params: &GbdtParams, seed: u64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty or mismatched data".into(),
            ));
        }
        if ys.iter().any(|&y| y > 1) {
            return Err(MlError::InvalidTrainingData("labels must be 0/1".into()));
        }
        if params.n_rounds == 0 || params.learning_rate <= 0.0 {
            return Err(MlError::InvalidHyperparameter(
                "n_rounds > 0 and learning_rate > 0 required".into(),
            ));
        }
        let n = xs.len();
        let pos = ys.iter().filter(|&&y| y == 1).count() as f64;
        // initial log-odds, clamped for degenerate single-class data
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p0 / (1.0 - p0)).ln();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut margins = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut residuals = vec![0.0f64; n];

        for _ in 0..params.n_rounds {
            // gradients/hessians of logistic loss at current margins
            let mut grads = Vec::with_capacity(n);
            let mut hess = Vec::with_capacity(n);
            for (m, &y) in margins.iter().zip(ys) {
                let p = sigmoid(*m);
                grads.push(p - f64::from(y));
                hess.push((p * (1.0 - p)).max(1e-12));
            }
            // fit structure on the negative gradient
            for (r, &g) in residuals.iter_mut().zip(&grads) {
                *r = -g;
            }
            let mut tree = DecisionTreeRegressor::fit(xs, &residuals, &params.tree, &mut rng)?;

            // Newton refit of leaf values: w_j = −Σg / (Σh + λ)
            let n_leaves = tree.n_leaves();
            let mut leaf_g = vec![0.0f64; n_leaves];
            let mut leaf_h = vec![0.0f64; n_leaves];
            let mut leaf_of = Vec::with_capacity(n);
            for (i, x) in xs.iter().enumerate() {
                let leaf = tree.leaf_index(x);
                leaf_of.push(leaf);
                leaf_g[leaf] += grads[i];
                leaf_h[leaf] += hess[i];
            }
            let weights: Vec<f64> = leaf_g
                .iter()
                .zip(&leaf_h)
                .map(|(&g, &h)| -g / (h + params.lambda))
                .collect();
            tree.set_leaf_values(&weights);

            for (i, &leaf) in leaf_of.iter().enumerate() {
                margins[i] += params.learning_rate * weights[leaf];
            }
            trees.push(tree);
        }
        Ok(GradientBoostedTrees {
            base_score,
            learning_rate: params.learning_rate,
            trees,
        })
    }

    /// Raw margin (log-odds) for `x`.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let mut m = self.base_score;
        for tree in &self.trees {
            m += self.learning_rate * crate::Regressor::predict(tree, x);
        }
        m
    }

    /// Number of boosting rounds actually stored.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for GradientBoostedTrees {
    fn n_classes(&self) -> usize {
        2
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let p = sigmoid(self.decision_function(x));
        out[0] = 1.0 - p;
        out[1] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interaction_data(n: usize) -> (Vec<Vec<f64>>, Vec<u32>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 13) as f64 / 13.0;
            let b = (i % 29) as f64 / 29.0;
            xs.push(vec![a, b]);
            ys.push(u32::from((a - 0.5) * (b - 0.5) > 0.0));
        }
        (xs, ys)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (xs, ys) = interaction_data(800);
        let m = GradientBoostedTrees::fit(&xs, &ys, &GbdtParams::default(), 7).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (xs, ys) = interaction_data(400);
        let small = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbdtParams {
                n_rounds: 5,
                ..GbdtParams::default()
            },
            7,
        )
        .unwrap();
        let large = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbdtParams {
                n_rounds: 80,
                ..GbdtParams::default()
            },
            7,
        )
        .unwrap();
        let loss = |m: &GradientBoostedTrees| -> f64 {
            xs.iter()
                .zip(&ys)
                .map(|(x, &y)| {
                    let p = m.proba_of(x, 1).clamp(1e-12, 1.0 - 1e-12);
                    if y == 1 {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                })
                .sum::<f64>()
                / xs.len() as f64
        };
        assert!(
            loss(&large) < loss(&small),
            "{} !< {}",
            loss(&large),
            loss(&small)
        );
    }

    #[test]
    fn base_score_matches_class_prior() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i % 3)]).collect();
        let ys: Vec<u32> = (0..100).map(|i| u32::from(i < 30)).collect();
        let m = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbdtParams {
                n_rounds: 1,
                learning_rate: 1e-9,
                ..GbdtParams::default()
            },
            0,
        )
        .unwrap();
        // with negligible learning rate the prediction is the prior
        let p = m.proba_of(&[0.0], 1);
        assert!((p - 0.3).abs() < 0.01, "prior {p}");
    }

    #[test]
    fn probabilities_valid() {
        let (xs, ys) = interaction_data(200);
        let m = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbdtParams {
                n_rounds: 20,
                ..GbdtParams::default()
            },
            1,
        )
        .unwrap();
        let mut buf = [0.0; 2];
        for x in xs.iter().take(40) {
            m.predict_proba(x, &mut buf);
            assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_class_data_does_not_explode() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let ys = vec![1u32; 50];
        let m = GradientBoostedTrees::fit(&xs, &ys, &GbdtParams::default(), 0).unwrap();
        let p = m.proba_of(&[25.0], 1);
        assert!(p > 0.99 && p.is_finite());
    }

    #[test]
    fn invalid_input_rejected() {
        let (xs, ys) = interaction_data(10);
        assert!(GradientBoostedTrees::fit(&[], &[], &GbdtParams::default(), 0).is_err());
        assert!(GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbdtParams {
                n_rounds: 0,
                ..GbdtParams::default()
            },
            0
        )
        .is_err());
        assert!(GradientBoostedTrees::fit(&xs, &[9; 10], &GbdtParams::default(), 0).is_err());
    }
}
