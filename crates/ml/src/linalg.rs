//! Small dense linear algebra: just enough for normal equations.
//!
//! The linear models in this crate solve systems of at most a few hundred
//! unknowns (LIME surrogates, KernelSHAP weighted least squares, the
//! recourse logit surrogate), so a straightforward row-major matrix with
//! partial-pivot Gaussian elimination and Cholesky is the right tool — no
//! BLAS, no SIMD heroics.

use crate::{MlError, Result};

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested slice (each inner slice is a row).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · v` for a column vector `v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        debug_assert_eq!(v.len(), self.cols);
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// `selfᵀ · v`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        debug_assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * vi;
            }
        }
        out
    }

    /// Weighted Gram matrix `Xᵀ W X` where `W = diag(w)`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        debug_assert_eq!(w.len(), self.rows);
        let mut g = Matrix::zeros(self.cols, self.cols);
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for a in 0..self.cols {
                let waa = wi * row[a];
                if waa == 0.0 {
                    continue;
                }
                // exploit symmetry: fill upper triangle
                for b in a..self.cols {
                    g[(a, b)] += waa * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// `Xᵀ W y` where `W = diag(w)`.
    pub fn weighted_t_matvec(&self, w: &[f64], y: &[f64]) -> Vec<f64> {
        debug_assert_eq!(w.len(), self.rows);
        debug_assert_eq!(y.len(), self.rows);
        let wy: Vec<f64> = w.iter().zip(y).map(|(&a, &b)| a * b).collect();
        self.t_matvec(&wy)
    }

    /// Solve `self · x = b` with partial-pivot Gaussian elimination.
    ///
    /// The matrix must be square; singularity (pivot below `1e-12`) is an
    /// error so callers can fall back to stronger regularization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(MlError::InvalidTrainingData(format!(
                "solve needs a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        if b.len() != n {
            return Err(MlError::InvalidTrainingData("rhs length mismatch".into()));
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // pivot
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(MlError::SingularMatrix);
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // back substitution
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in col + 1..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Solve a symmetric positive-definite system via Cholesky
    /// (`self = L Lᵀ`); used for ridge normal equations where SPD holds by
    /// construction. Falls back with an error if the matrix is not PD.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(MlError::InvalidTrainingData(
                "solve_spd needs square".into(),
            ));
        }
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MlError::SingularMatrix);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // forward: L z = b
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for k in 0..i {
                acc -= l[i * n + k] * z[k];
            }
            z[i] = acc / l[i * n + i];
        }
        // backward: Lᵀ x = z
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in i + 1..n {
                acc -= l[k * n + i] * x[k];
            }
            x[i] = acc / l[i * n + i];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_identity() {
        let id = Matrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 2)], 0.0);
        assert_eq!(id.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // zero on the diagonal forces a row swap
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MlError::SingularMatrix));
    }

    #[test]
    fn spd_solve_matches_general_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]);
        let b = [1.0, 2.0, 3.0];
        let x1 = a.solve(&b).unwrap();
        let x2 = a.solve_spd(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn spd_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(a.solve_spd(&[1.0, 1.0]), Err(MlError::SingularMatrix));
    }

    #[test]
    fn gram_matrix_is_correct() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let w = [1.0, 1.0, 1.0];
        let g = x.weighted_gram(&w);
        // XᵀX = [[35, 44], [44, 56]]
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 0)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
        // weighted
        let gw = x.weighted_gram(&[2.0, 0.0, 1.0]);
        assert_eq!(gw[(0, 0)], 2.0 * 1.0 + 25.0);
    }

    #[test]
    fn transpose_matvec() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.t_matvec(&[1.0, 1.0]), vec![4.0, 6.0]);
        assert_eq!(
            x.weighted_t_matvec(&[1.0, 0.5], &[2.0, 2.0]),
            vec![2.0 + 3.0, 4.0 + 4.0]
        );
    }

    #[test]
    fn non_square_solve_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&[0.0, 0.0]).is_err());
    }
}
