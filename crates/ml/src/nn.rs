//! A feed-forward neural network (multi-layer perceptron).
//!
//! Dense layers with ReLU activations and a softmax head, trained with
//! mini-batch Adam on cross-entropy loss — the same family as the
//! `fastai.tabular` model the paper uses as its fourth black box (§5.2).

use crate::{Classifier, MlError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration for [`NeuralNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct NnParams {
    /// Hidden layer widths, e.g. `[64, 32]`.
    pub hidden: Vec<usize>,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for NnParams {
    fn default() -> Self {
        NnParams {
            hidden: vec![64, 32],
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
        }
    }
}

#[derive(Debug, Clone)]
struct Layer {
    /// `out × in` weights, row-major.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam state
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Layer {
    fn new<R: Rng>(n_in: usize, n_out: usize, rng: &mut R) -> Self {
        // He initialization for ReLU nets
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect::<Vec<_>>();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            m_w: vec![0.0; n_in * n_out],
            v_w: vec![0.0; n_in * n_out],
            m_b: vec![0.0; n_out],
            v_b: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.n_out);
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f64>() + self.b[o];
            out.push(z);
        }
    }
}

/// A trained MLP classifier.
#[derive(Debug, Clone)]
pub struct NeuralNetwork {
    layers: Vec<Layer>,
    n_classes: usize,
    /// Feature standardization (mean, std) captured from training data.
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
}

fn softmax_in_place(z: &mut [f64]) {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

impl NeuralNetwork {
    /// Train on labels `0..n_classes`.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[u32],
        n_classes: usize,
        params: &NnParams,
        seed: u64,
    ) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty or mismatched data".into(),
            ));
        }
        if ys.iter().any(|&y| y as usize >= n_classes) {
            return Err(MlError::InvalidTrainingData("label out of range".into()));
        }
        if params.batch_size == 0 || params.epochs == 0 {
            return Err(MlError::InvalidHyperparameter(
                "batch_size/epochs must be > 0".into(),
            ));
        }
        let d = xs[0].len();
        let mut rng = StdRng::seed_from_u64(seed);

        // standardize features
        let mut feat_mean = vec![0.0; d];
        let mut feat_std = vec![0.0; d];
        for x in xs {
            for (m, &v) in feat_mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in feat_mean.iter_mut() {
            *m /= xs.len() as f64;
        }
        for x in xs {
            for ((s, &v), &m) in feat_std.iter_mut().zip(x).zip(&feat_mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in feat_std.iter_mut() {
            *s = (*s / xs.len() as f64).sqrt().max(1e-9);
        }
        let std_xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                x.iter()
                    .zip(&feat_mean)
                    .zip(&feat_std)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect()
            })
            .collect();

        // build layers
        let mut sizes = vec![d];
        sizes.extend_from_slice(&params.hidden);
        sizes.push(n_classes);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let n = std_xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut t_step = 0usize;
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

        // forward/backward buffers
        let n_layers = layers.len();
        let mut activations: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut grads_w: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut grads_b: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        for _epoch in 0..params.epochs {
            // shuffle
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(params.batch_size) {
                for g in grads_w.iter_mut() {
                    g.fill(0.0);
                }
                for g in grads_b.iter_mut() {
                    g.fill(0.0);
                }
                for &i in batch {
                    // forward
                    activations[0] = std_xs[i].clone();
                    for (li, layer) in layers.iter().enumerate() {
                        let (head, tail) = activations.split_at_mut(li + 1);
                        layer.forward(&head[li], &mut tail[0]);
                        if li + 1 < n_layers {
                            for v in tail[0].iter_mut() {
                                *v = v.max(0.0); // ReLU
                            }
                        }
                    }
                    softmax_in_place(&mut activations[n_layers]);
                    // output delta = p − onehot(y)
                    let last = &mut deltas[n_layers - 1];
                    last.clear();
                    last.extend_from_slice(&activations[n_layers]);
                    last[ys[i] as usize] -= 1.0;
                    // backprop
                    for li in (0..n_layers).rev() {
                        // accumulate gradients for layer li
                        let n_in_li = layers[li].n_in;
                        for (o, &dv) in deltas[li].iter().enumerate() {
                            if dv == 0.0 {
                                continue;
                            }
                            grads_b[li][o] += dv;
                            let row = &mut grads_w[li][o * n_in_li..(o + 1) * n_in_li];
                            for (g, &a) in row.iter_mut().zip(&activations[li]) {
                                *g += dv * a;
                            }
                        }
                        if li > 0 {
                            // delta for previous layer (through ReLU)
                            let (prev_slice, cur_slice) = deltas.split_at_mut(li);
                            let prev = &mut prev_slice[li - 1];
                            let cur = &cur_slice[0];
                            prev.clear();
                            prev.resize(n_in_li, 0.0);
                            for (o, &dv) in cur.iter().enumerate() {
                                if dv == 0.0 {
                                    continue;
                                }
                                let row = &layers[li].w[o * n_in_li..(o + 1) * n_in_li];
                                for (p, &w) in prev.iter_mut().zip(row) {
                                    *p += dv * w;
                                }
                            }
                            for (p, &a) in prev.iter_mut().zip(&activations[li]) {
                                if a <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                        }
                    }
                }
                // Adam update
                t_step += 1;
                let bc1 = 1.0 - beta1.powi(t_step as i32);
                let bc2 = 1.0 - beta2.powi(t_step as i32);
                let scale = 1.0 / batch.len() as f64;
                for (li, layer) in layers.iter_mut().enumerate() {
                    for (idx, w) in layer.w.iter_mut().enumerate() {
                        let g = grads_w[li][idx] * scale + params.weight_decay * *w;
                        layer.m_w[idx] = beta1 * layer.m_w[idx] + (1.0 - beta1) * g;
                        layer.v_w[idx] = beta2 * layer.v_w[idx] + (1.0 - beta2) * g * g;
                        let mh = layer.m_w[idx] / bc1;
                        let vh = layer.v_w[idx] / bc2;
                        *w -= params.learning_rate * mh / (vh.sqrt() + eps);
                    }
                    for (idx, b) in layer.b.iter_mut().enumerate() {
                        let g = grads_b[li][idx] * scale;
                        layer.m_b[idx] = beta1 * layer.m_b[idx] + (1.0 - beta1) * g;
                        layer.v_b[idx] = beta2 * layer.v_b[idx] + (1.0 - beta2) * g * g;
                        let mh = layer.m_b[idx] / bc1;
                        let vh = layer.v_b[idx] / bc2;
                        *b -= params.learning_rate * mh / (vh.sqrt() + eps);
                    }
                }
            }
        }
        Ok(NeuralNetwork {
            layers,
            n_classes,
            feat_mean,
            feat_std,
        })
    }
}

impl Classifier for NeuralNetwork {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let std_x: Vec<f64> = x
            .iter()
            .zip(&self.feat_mean)
            .zip(&self.feat_std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect();
        let mut cur = std_x;
        let mut next = Vec::new();
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if li + 1 < n_layers {
                for v in next.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        softmax_in_place(&mut cur);
        out.copy_from_slice(&cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize) -> (Vec<Vec<f64>>, Vec<u32>) {
        // class 1 inside a ring: needs a non-linear boundary
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i % 31) as f64 / 31.0) * 4.0 - 2.0;
            let b = ((i % 37) as f64 / 37.0) * 4.0 - 2.0;
            xs.push(vec![a, b]);
            ys.push(u32::from(a * a + b * b < 1.5));
        }
        (xs, ys)
    }

    fn accuracy(m: &NeuralNetwork, xs: &[Vec<f64>], ys: &[u32]) -> f64 {
        xs.iter()
            .zip(ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64
    }

    #[test]
    fn learns_nonlinear_ring() {
        let (xs, ys) = ring_data(800);
        let params = NnParams {
            hidden: vec![32, 16],
            epochs: 60,
            ..NnParams::default()
        };
        let m = NeuralNetwork::fit(&xs, &ys, 2, &params, 3).unwrap();
        let acc = accuracy(&m, &xs, &ys);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_distribution() {
        let (xs, ys) = ring_data(200);
        let params = NnParams {
            hidden: vec![8],
            epochs: 5,
            ..NnParams::default()
        };
        let m = NeuralNetwork::fit(&xs, &ys, 2, &params, 1).unwrap();
        let mut buf = [0.0; 2];
        for x in xs.iter().take(20) {
            m.predict_proba(x, &mut buf);
            assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(buf.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn multiclass_output() {
        let xs: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 3) as f64]).collect();
        let ys: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let params = NnParams {
            hidden: vec![16],
            epochs: 80,
            ..NnParams::default()
        };
        let m = NeuralNetwork::fit(&xs, &ys, 3, &params, 2).unwrap();
        assert_eq!(m.n_classes(), 3);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = ring_data(100);
        let params = NnParams {
            hidden: vec![8],
            epochs: 3,
            ..NnParams::default()
        };
        let a = NeuralNetwork::fit(&xs, &ys, 2, &params, 9).unwrap();
        let b = NeuralNetwork::fit(&xs, &ys, 2, &params, 9).unwrap();
        for x in xs.iter().take(10) {
            assert_eq!(a.proba_of(x, 1), b.proba_of(x, 1));
        }
    }

    #[test]
    fn invalid_input_rejected() {
        let (xs, ys) = ring_data(10);
        assert!(NeuralNetwork::fit(&[], &[], 2, &NnParams::default(), 0).is_err());
        assert!(NeuralNetwork::fit(&xs, &[7; 10], 2, &NnParams::default(), 0).is_err());
        let bad = NnParams {
            batch_size: 0,
            ..NnParams::default()
        };
        assert!(NeuralNetwork::fit(&xs, &ys, 2, &bad, 0).is_err());
    }
}
