//! Linear and logistic regression (optionally weighted and ridge-
//! regularized).
//!
//! These models serve three roles in the reproduction: the *logit-linear
//! surrogate* that linearizes the recourse sufficiency constraint (paper
//! eq. 28), the weighted local surrogates of LIME, and the weighted least
//! squares solve inside KernelSHAP.

use crate::linalg::{dot, Matrix};
use crate::{Classifier, MlError, Regressor, Result};

/// Ordinary / ridge / weighted least squares `y ≈ β₀ + βᵀx`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Coefficients `β`, one per feature.
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fit with uniform weights.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<Self> {
        let w = vec![1.0; ys.len()];
        Self::fit_weighted(xs, ys, &w, ridge)
    }

    /// Fit weighted ridge regression by solving the normal equations
    /// `(Xᵀ W X + λI) β = Xᵀ W y` (the intercept column is not
    /// penalized).
    pub fn fit_weighted(xs: &[Vec<f64>], ys: &[f64], w: &[f64], ridge: f64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() || xs.len() != w.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "xs={}, ys={}, w={}",
                xs.len(),
                ys.len(),
                w.len()
            )));
        }
        if ridge < 0.0 {
            return Err(MlError::InvalidHyperparameter("ridge must be >= 0".into()));
        }
        let d = xs[0].len();
        // design matrix with a leading 1-column for the intercept
        let mut design = Matrix::zeros(xs.len(), d + 1);
        for (i, x) in xs.iter().enumerate() {
            if x.len() != d {
                return Err(MlError::InvalidTrainingData("ragged feature rows".into()));
            }
            let row = design.row_mut(i);
            row[0] = 1.0;
            row[1..].copy_from_slice(x);
        }
        let mut gram = design.weighted_gram(w);
        for j in 1..=d {
            gram[(j, j)] += ridge;
        }
        let rhs = design.weighted_t_matvec(w, ys);
        let beta = gram.solve_spd(&rhs).or_else(|_| {
            // fall back to heavier regularization for degenerate designs
            let mut g2 = gram.clone();
            for j in 0..=d {
                g2[(j, j)] += 1e-8 + ridge.max(1e-6);
            }
            g2.solve_spd(&rhs)
        })?;
        Ok(LinearRegression {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    /// Predicted value for `x`.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.intercept + dot(&self.coefficients, x)
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_one(x)
    }
}

/// Binary logistic regression trained with gradient descent on the
/// (optionally L2-regularized) log-loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// Intercept.
    pub intercept: f64,
    /// Feature coefficients.
    pub coefficients: Vec<f64>,
}

/// Training options for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticOptions {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty on coefficients (not the intercept).
    pub l2: f64,
}

impl Default for LogisticOptions {
    fn default() -> Self {
        LogisticOptions {
            learning_rate: 0.1,
            epochs: 500,
            l2: 1e-4,
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Logit transform clamped away from 0/1 (paper's eq. 28 estimates the
/// logit of a probability that may sit at the boundary).
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    (p / (1.0 - p)).ln()
}

impl LogisticRegression {
    /// Fit on labels in `{0, 1}`.
    pub fn fit(xs: &[Vec<f64>], ys: &[u32], opts: &LogisticOptions) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "xs={}, ys={}",
                xs.len(),
                ys.len()
            )));
        }
        if ys.iter().any(|&y| y > 1) {
            return Err(MlError::InvalidTrainingData("labels must be 0/1".into()));
        }
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        for _ in 0..opts.epochs {
            let mut grad_w = vec![0.0f64; d];
            let mut grad_b = 0.0f64;
            for (x, &y) in xs.iter().zip(ys) {
                let p = sigmoid(b + dot(&w, x));
                let err = p - f64::from(y);
                grad_b += err;
                for (g, &xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi;
                }
            }
            b -= opts.learning_rate * grad_b / n;
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= opts.learning_rate * (g / n + opts.l2 * *wi);
            }
        }
        Ok(LogisticRegression {
            intercept: b,
            coefficients: w,
        })
    }

    /// `Pr(y = 1 | x)`.
    pub fn predict_proba_one(&self, x: &[f64]) -> f64 {
        sigmoid(self.intercept + dot(&self.coefficients, x))
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        2
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let p = self.predict_proba_one(x);
        out[0] = 1.0 - p;
        out[1] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_recovers_exact_line() {
        // y = 3 + 2a - b, noiseless
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i % 5)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 1.0).abs() < 1e-8);
        assert!((m.predict_one(&[10.0, 2.0]) - 21.0).abs() < 1e-8);
    }

    #[test]
    fn weighted_fit_ignores_zero_weight_points() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![100.0]];
        let ys = vec![0.0, 1.0, 2.0, -500.0]; // outlier
        let w = vec![1.0, 1.0, 1.0, 0.0];
        let m = LinearRegression::fit_weighted(&xs, &ys, &w, 0.0).unwrap();
        assert!((m.coefficients[0] - 1.0).abs() < 1e-8);
        assert!(m.intercept.abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0]).collect();
        let free = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        let shrunk = LinearRegression::fit(&xs, &ys, 100.0).unwrap();
        assert!(shrunk.coefficients[0].abs() < free.coefficients[0].abs());
    }

    #[test]
    fn degenerate_design_still_solves() {
        // duplicated feature columns are rank deficient; the ridge
        // fallback must cope
        let xs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let ys = vec![2.0, 4.0, 6.0];
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        let pred = m.predict_one(&[4.0, 4.0]);
        assert!((pred - 8.0).abs() < 1e-2, "pred {pred}");
    }

    #[test]
    fn shape_errors() {
        assert!(LinearRegression::fit(&[], &[], 0.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0], -1.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }

    #[test]
    fn logistic_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..400 {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            xs.push(vec![a, b]);
            ys.push(u32::from(a + b > 0.0));
        }
        let m = LogisticRegression::fit(&xs, &ys, &LogisticOptions::default()).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // coefficients point the right way
        assert!(m.coefficients[0] > 0.0 && m.coefficients[1] > 0.0);
    }

    #[test]
    fn logistic_as_classifier_trait() {
        let m = LogisticRegression {
            intercept: 0.0,
            coefficients: vec![1.0],
        };
        let mut buf = [0.0; 2];
        m.predict_proba(&[0.0], &mut buf);
        assert!((buf[0] - 0.5).abs() < 1e-12);
        assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m.n_classes(), 2);
        assert!((m.proba_of(&[2.0], 1) - sigmoid(2.0)).abs() < 1e-12);
    }

    #[test]
    fn logistic_rejects_bad_labels() {
        assert!(LogisticRegression::fit(&[vec![1.0]], &[2], &LogisticOptions::default()).is_err());
    }
}
