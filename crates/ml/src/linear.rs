//! Linear and logistic regression (optionally weighted and ridge-
//! regularized).
//!
//! These models serve three roles in the reproduction: the *logit-linear
//! surrogate* that linearizes the recourse sufficiency constraint (paper
//! eq. 28), the weighted local surrogates of LIME, and the weighted least
//! squares solve inside KernelSHAP.

use crate::linalg::{dot, Matrix};
use crate::{Classifier, MlError, Regressor, Result};
use tabular::shard::shard_boundaries;

/// Canonical accumulation chunk for sharded fits: gradient/Hessian
/// sums are always computed as per-chunk partials (left-to-right within
/// a chunk) merged sequentially in chunk-index order. The shard count
/// only decides which thread *computes* which chunks, never the
/// summation order, so a fit is bit-identical for any shard count —
/// the same discipline the counting engine uses for u64 merges, carried
/// over to non-associative f64 sums by fixing the reduction tree.
pub const FIT_CHUNK: usize = 4096;

/// `[start, end)` row ranges of the canonical fit chunks.
fn fit_chunks(n_rows: usize) -> Vec<(usize, usize)> {
    (0..n_rows.div_ceil(FIT_CHUNK))
        .map(|c| (c * FIT_CHUNK, ((c + 1) * FIT_CHUNK).min(n_rows)))
        .collect()
}

/// Fan the canonical chunks over `n_shards` shard-aligned groups (via
/// the rayon shim), computing one partial per chunk with `per_chunk`,
/// and return the partials **in chunk-index order** regardless of the
/// fan-out. The caller folds them sequentially.
fn map_chunks_sharded<T: Send>(
    chunks: &[(usize, usize)],
    n_shards: usize,
    per_chunk: impl Fn(usize, usize) -> T + Sync,
) -> Vec<T> {
    use rayon::prelude::*;
    let bounds = shard_boundaries(chunks.len(), n_shards.max(1));
    let shard_ids: Vec<usize> = (0..bounds.len() - 1).collect();
    let per_shard: Vec<Vec<T>> = shard_ids
        .par_iter()
        .map(|&s| {
            chunks[bounds[s]..bounds[s + 1]]
                .iter()
                .map(|&(lo, hi)| per_chunk(lo, hi))
                .collect()
        })
        .collect();
    // shards are contiguous chunk ranges in shard-index order, so
    // flattening restores exact chunk order
    per_shard.into_iter().flatten().collect()
}

/// Ordinary / ridge / weighted least squares `y ≈ β₀ + βᵀx`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Coefficients `β`, one per feature.
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fit with uniform weights.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<Self> {
        let w = vec![1.0; ys.len()];
        Self::fit_weighted(xs, ys, &w, ridge)
    }

    /// Fit weighted ridge regression by solving the normal equations
    /// `(Xᵀ W X + λI) β = Xᵀ W y` (the intercept column is not
    /// penalized).
    pub fn fit_weighted(xs: &[Vec<f64>], ys: &[f64], w: &[f64], ridge: f64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() || xs.len() != w.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "xs={}, ys={}, w={}",
                xs.len(),
                ys.len(),
                w.len()
            )));
        }
        if ridge < 0.0 {
            return Err(MlError::InvalidHyperparameter("ridge must be >= 0".into()));
        }
        let d = xs[0].len();
        // design matrix with a leading 1-column for the intercept
        let mut design = Matrix::zeros(xs.len(), d + 1);
        for (i, x) in xs.iter().enumerate() {
            if x.len() != d {
                return Err(MlError::InvalidTrainingData("ragged feature rows".into()));
            }
            let row = design.row_mut(i);
            row[0] = 1.0;
            row[1..].copy_from_slice(x);
        }
        let mut gram = design.weighted_gram(w);
        for j in 1..=d {
            gram[(j, j)] += ridge;
        }
        let rhs = design.weighted_t_matvec(w, ys);
        let beta = gram.solve_spd(&rhs).or_else(|_| {
            // fall back to heavier regularization for degenerate designs
            let mut g2 = gram.clone();
            for j in 0..=d {
                g2[(j, j)] += 1e-8 + ridge.max(1e-6);
            }
            g2.solve_spd(&rhs)
        })?;
        Ok(LinearRegression {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    /// Predicted value for `x`.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.intercept + dot(&self.coefficients, x)
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_one(x)
    }
}

/// Binary logistic regression trained with gradient descent on the
/// (optionally L2-regularized) log-loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// Intercept.
    pub intercept: f64,
    /// Feature coefficients.
    pub coefficients: Vec<f64>,
}

/// Training options for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticOptions {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty on coefficients (not the intercept).
    pub l2: f64,
}

impl Default for LogisticOptions {
    fn default() -> Self {
        LogisticOptions {
            learning_rate: 0.1,
            epochs: 500,
            l2: 1e-4,
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Logit transform clamped away from 0/1 (paper's eq. 28 estimates the
/// logit of a probability that may sit at the boundary).
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    (p / (1.0 - p)).ln()
}

impl LogisticRegression {
    /// Fit on labels in `{0, 1}`. Equivalent to
    /// [`LogisticRegression::fit_sharded`] with one shard; for inputs
    /// up to [`FIT_CHUNK`] rows the accumulation is a single
    /// left-to-right pass, exactly as before chunking existed.
    pub fn fit(xs: &[Vec<f64>], ys: &[u32], opts: &LogisticOptions) -> Result<Self> {
        Self::fit_sharded(xs, ys, opts, 1)
    }

    /// Gradient-descent fit with each epoch's gradient accumulated as
    /// canonical per-chunk partials fanned over `n_shards` shard groups
    /// and merged in chunk-index order — bit-identical coefficients for
    /// any shard count (see [`FIT_CHUNK`]).
    pub fn fit_sharded(
        xs: &[Vec<f64>],
        ys: &[u32],
        opts: &LogisticOptions,
        n_shards: usize,
    ) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(format!(
                "xs={}, ys={}",
                xs.len(),
                ys.len()
            )));
        }
        if ys.iter().any(|&y| y > 1) {
            return Err(MlError::InvalidTrainingData("labels must be 0/1".into()));
        }
        let d = xs[0].len();
        let n = xs.len() as f64;
        let chunks = fit_chunks(xs.len());
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        for _ in 0..opts.epochs {
            let partials = map_chunks_sharded(&chunks, n_shards, |lo, hi| {
                let mut grad_w = vec![0.0f64; d];
                let mut grad_b = 0.0f64;
                for (x, &y) in xs[lo..hi].iter().zip(&ys[lo..hi]) {
                    let p = sigmoid(b + dot(&w, x));
                    let err = p - f64::from(y);
                    grad_b += err;
                    for (g, &xi) in grad_w.iter_mut().zip(x) {
                        *g += err * xi;
                    }
                }
                (grad_w, grad_b)
            });
            let mut grad_w = vec![0.0f64; d];
            let mut grad_b = 0.0f64;
            for (gw, gb) in partials {
                grad_b += gb;
                for (g, p) in grad_w.iter_mut().zip(gw) {
                    *g += p;
                }
            }
            b -= opts.learning_rate * grad_b / n;
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= opts.learning_rate * (g / n + opts.l2 * *wi);
            }
        }
        Ok(LogisticRegression {
            intercept: b,
            coefficients: w,
        })
    }

    /// Newton/IRLS fit over a sparse [`OneHotDesign`] — the recourse
    /// surrogate's fast path. Each iteration accumulates per-chunk
    /// gradient *and* Hessian partials (only the few active slots per
    /// row touch either), fanned over `n_shards` shard groups and
    /// merged in chunk-index order, then takes one damped Newton step
    /// via the deterministic SPD solver. Coefficients are bit-identical
    /// for any shard count; the convergence check runs on the merged
    /// (hence shard-invariant) step, so the iteration count is too.
    pub fn fit_onehot_newton(
        design: &OneHotDesign<'_>,
        ys: &[u32],
        opts: &NewtonOptions,
        n_shards: usize,
    ) -> Result<Self> {
        design.validate()?;
        if design.n_rows == 0 || ys.len() != design.n_rows {
            return Err(MlError::InvalidTrainingData(format!(
                "design rows={}, ys={}",
                design.n_rows,
                ys.len()
            )));
        }
        if ys.iter().any(|&y| y > 1) {
            return Err(MlError::InvalidTrainingData("labels must be 0/1".into()));
        }
        let width = design.width;
        let p1 = width + 1; // slot `width` is the intercept
        let tri = p1 * (p1 + 1) / 2;
        let n = design.n_rows as f64;
        let chunks = fit_chunks(design.n_rows);
        // beta = [coefficients.., intercept]
        let mut beta = vec![0.0f64; p1];
        for _ in 0..opts.max_iters.max(1) {
            let partials = map_chunks_sharded(&chunks, n_shards, |lo, hi| {
                let mut g = vec![0.0f64; p1];
                let mut h = vec![0.0f64; tri];
                let mut slots: Vec<(usize, f64)> =
                    Vec::with_capacity(design.blocks.len() + design.ordinals.len() + 1);
                // `r` indexes three parallel column slices (block codes,
                // ordinal values, labels); enumerating any single one of
                // them would obscure that symmetry
                #[allow(clippy::needless_range_loop)]
                for r in lo..hi {
                    slots.clear();
                    for blk in &design.blocks {
                        slots.push((blk.offset + blk.codes[r] as usize, 1.0));
                    }
                    for ord in &design.ordinals {
                        slots.push((ord.slot, f64::from(ord.values[r])));
                    }
                    slots.push((width, 1.0));
                    let mut z = 0.0f64;
                    for &(s, v) in &slots {
                        z += beta[s] * v;
                    }
                    let p = sigmoid(z);
                    let err = p - f64::from(ys[r]);
                    let wgt = p * (1.0 - p);
                    for (a, &(i, vi)) in slots.iter().enumerate() {
                        g[i] += err * vi;
                        for &(j, vj) in &slots[..=a] {
                            let (hi_s, lo_s) = if i >= j { (i, j) } else { (j, i) };
                            h[hi_s * (hi_s + 1) / 2 + lo_s] += wgt * vi * vj;
                        }
                    }
                }
                (g, h)
            });
            let mut g = vec![0.0f64; p1];
            let mut h = vec![0.0f64; tri];
            for (pg, ph) in partials {
                for (a, b) in g.iter_mut().zip(pg) {
                    *a += b;
                }
                for (a, b) in h.iter_mut().zip(ph) {
                    *a += b;
                }
            }
            // mean-scale and L2-regularize (never the intercept)
            for (j, gj) in g.iter_mut().enumerate() {
                *gj /= n;
                if j < width {
                    *gj += opts.l2 * beta[j];
                }
            }
            let mut hess = Matrix::zeros(p1, p1);
            for i in 0..p1 {
                for j in 0..=i {
                    let v = h[i * (i + 1) / 2 + j] / n;
                    hess[(i, j)] = v;
                    hess[(j, i)] = v;
                }
                if i < width {
                    hess[(i, i)] += opts.l2;
                }
            }
            let delta = hess.solve_spd(&g).or_else(|_| {
                // near-separable data drives p(1-p) → 0 and the Hessian
                // toward singular; a heavier ridge keeps the step defined
                let mut h2 = hess.clone();
                for i in 0..p1 {
                    h2[(i, i)] += 1e-8 + opts.l2.max(1e-6);
                }
                h2.solve_spd(&g)
            })?;
            if delta.iter().any(|d| !d.is_finite()) {
                break; // keep the last finite iterate
            }
            let mut max_step = 0.0f64;
            for (b, d) in beta.iter_mut().zip(&delta) {
                *b -= d;
                max_step = max_step.max(d.abs());
            }
            if max_step <= opts.tol {
                break;
            }
        }
        let intercept = beta[width];
        beta.truncate(width);
        Ok(LogisticRegression {
            intercept,
            coefficients: beta,
        })
    }

    /// `Pr(y = 1 | x)`.
    pub fn predict_proba_one(&self, x: &[f64]) -> f64 {
        sigmoid(self.intercept + dot(&self.coefficients, x))
    }
}

/// One one-hot block of a [`OneHotDesign`]: row `r` puts a `1.0` at
/// feature slot `offset + codes[r]`.
#[derive(Debug, Clone)]
pub struct OneHotBlock<'a> {
    /// First feature slot of the block.
    pub offset: usize,
    /// Number of slots (the attribute's cardinality).
    pub cardinality: usize,
    /// Per-row active code, `codes[r] < cardinality`.
    pub codes: &'a [u32],
}

/// One ordinal feature of a [`OneHotDesign`]: row `r` puts
/// `f64::from(values[r])` at feature slot `slot`.
#[derive(Debug, Clone)]
pub struct OrdinalFeature<'a> {
    /// The feature slot.
    pub slot: usize,
    /// Per-row ordinal value.
    pub values: &'a [u32],
}

/// A sparse design matrix over dictionary-coded columns: a few one-hot
/// blocks plus a few ordinal columns, borrowed straight from table
/// storage — no dense row materialization. Each row activates exactly
/// `blocks.len() + ordinals.len()` of the `width` feature slots, which
/// is what makes Hessian accumulation affordable.
///
/// For one-hot/ordinal inputs this sparse accumulation is *bitwise*
/// equal to the dense one: the skipped slots contribute `err * 0.0`,
/// which never changes a finite accumulator under round-to-nearest.
#[derive(Debug, Clone)]
pub struct OneHotDesign<'a> {
    /// Total feature width (one-hot slots + ordinal slots).
    pub width: usize,
    /// Number of rows; every column slice must have this length.
    pub n_rows: usize,
    /// One-hot blocks, in ascending slot order.
    pub blocks: Vec<OneHotBlock<'a>>,
    /// Ordinal features, in ascending slot order after the blocks.
    pub ordinals: Vec<OrdinalFeature<'a>>,
}

impl OneHotDesign<'_> {
    /// Structural checks: column lengths, slot bounds, in-range codes.
    pub fn validate(&self) -> Result<()> {
        for blk in &self.blocks {
            if blk.codes.len() != self.n_rows {
                return Err(MlError::InvalidTrainingData(format!(
                    "one-hot column has {} rows, design has {}",
                    blk.codes.len(),
                    self.n_rows
                )));
            }
            let end = blk.offset.checked_add(blk.cardinality);
            if blk.cardinality == 0 || end.is_none_or(|e| e > self.width) {
                return Err(MlError::InvalidTrainingData(format!(
                    "one-hot block {}+{} exceeds width {}",
                    blk.offset, blk.cardinality, self.width
                )));
            }
            if blk.codes.iter().any(|&c| c as usize >= blk.cardinality) {
                return Err(MlError::InvalidTrainingData(
                    "one-hot code outside its block's cardinality".into(),
                ));
            }
        }
        for ord in &self.ordinals {
            if ord.values.len() != self.n_rows {
                return Err(MlError::InvalidTrainingData(format!(
                    "ordinal column has {} rows, design has {}",
                    ord.values.len(),
                    self.n_rows
                )));
            }
            if ord.slot >= self.width {
                return Err(MlError::InvalidTrainingData(format!(
                    "ordinal slot {} exceeds width {}",
                    ord.slot, self.width
                )));
            }
        }
        Ok(())
    }

    /// Dense feature vector of row `r` (test/debug helper; the fit
    /// itself never materializes rows).
    pub fn dense_row(&self, r: usize) -> Vec<f64> {
        let mut x = vec![0.0f64; self.width];
        for blk in &self.blocks {
            x[blk.offset + blk.codes[r] as usize] = 1.0;
        }
        for ord in &self.ordinals {
            x[ord.slot] = f64::from(ord.values[r]);
        }
        x
    }
}

/// Options for [`LogisticRegression::fit_onehot_newton`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Iteration cap; IRLS typically converges in well under ten.
    pub max_iters: usize,
    /// Stop when the largest coefficient step falls to this.
    pub tol: f64,
    /// L2 penalty on coefficients (not the intercept).
    pub l2: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iters: 25,
            tol: 1e-10,
            l2: 1e-4,
        }
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        2
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let p = self.predict_proba_one(x);
        out[0] = 1.0 - p;
        out[1] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_recovers_exact_line() {
        // y = 3 + 2a - b, noiseless
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i % 5)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 1.0).abs() < 1e-8);
        assert!((m.predict_one(&[10.0, 2.0]) - 21.0).abs() < 1e-8);
    }

    #[test]
    fn weighted_fit_ignores_zero_weight_points() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![100.0]];
        let ys = vec![0.0, 1.0, 2.0, -500.0]; // outlier
        let w = vec![1.0, 1.0, 1.0, 0.0];
        let m = LinearRegression::fit_weighted(&xs, &ys, &w, 0.0).unwrap();
        assert!((m.coefficients[0] - 1.0).abs() < 1e-8);
        assert!(m.intercept.abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0]).collect();
        let free = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        let shrunk = LinearRegression::fit(&xs, &ys, 100.0).unwrap();
        assert!(shrunk.coefficients[0].abs() < free.coefficients[0].abs());
    }

    #[test]
    fn degenerate_design_still_solves() {
        // duplicated feature columns are rank deficient; the ridge
        // fallback must cope
        let xs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let ys = vec![2.0, 4.0, 6.0];
        let m = LinearRegression::fit(&xs, &ys, 0.0).unwrap();
        let pred = m.predict_one(&[4.0, 4.0]);
        assert!((pred - 8.0).abs() < 1e-2, "pred {pred}");
    }

    #[test]
    fn shape_errors() {
        assert!(LinearRegression::fit(&[], &[], 0.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0], -1.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }

    #[test]
    fn logistic_learns_separable_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..400 {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            xs.push(vec![a, b]);
            ys.push(u32::from(a + b > 0.0));
        }
        let m = LogisticRegression::fit(&xs, &ys, &LogisticOptions::default()).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // coefficients point the right way
        assert!(m.coefficients[0] > 0.0 && m.coefficients[1] > 0.0);
    }

    #[test]
    fn logistic_as_classifier_trait() {
        let m = LogisticRegression {
            intercept: 0.0,
            coefficients: vec![1.0],
        };
        let mut buf = [0.0; 2];
        m.predict_proba(&[0.0], &mut buf);
        assert!((buf[0] - 0.5).abs() < 1e-12);
        assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m.n_classes(), 2);
        assert!((m.proba_of(&[2.0], 1) - sigmoid(2.0)).abs() < 1e-12);
    }

    #[test]
    fn logistic_rejects_bad_labels() {
        assert!(LogisticRegression::fit(&[vec![1.0]], &[2], &LogisticOptions::default()).is_err());
    }

    /// A little synthetic one-hot + ordinal world shared by the sharded
    /// and Newton fit tests: one 3-code block, one 2-code block, one
    /// ordinal column, labels from a noisy linear rule.
    fn onehot_world(n: usize) -> (Vec<Vec<u32>>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut cols: Vec<Vec<u32>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen_range(0..3u32);
            let b = rng.gen_range(0..2u32);
            let o = rng.gen_range(0..5u32);
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push(o);
            let z = f64::from(a) * 0.9 - f64::from(b) * 1.3 + f64::from(o) * 0.4 - 1.0;
            ys.push(u32::from(sigmoid(z) > rng.gen_range(0.0..1.0)));
        }
        (cols, ys)
    }

    fn world_design(cols: &[Vec<u32>]) -> OneHotDesign<'_> {
        OneHotDesign {
            width: 6,
            n_rows: cols[0].len(),
            blocks: vec![
                OneHotBlock {
                    offset: 0,
                    cardinality: 3,
                    codes: &cols[0],
                },
                OneHotBlock {
                    offset: 3,
                    cardinality: 2,
                    codes: &cols[1],
                },
            ],
            ordinals: vec![OrdinalFeature {
                slot: 5,
                values: &cols[2],
            }],
        }
    }

    #[test]
    fn sharded_gd_fit_is_bit_identical_across_shard_counts() {
        // > 2 × FIT_CHUNK rows so several chunks exist
        let (cols, ys) = onehot_world(9_000);
        let design = world_design(&cols);
        let xs: Vec<Vec<f64>> = (0..design.n_rows).map(|r| design.dense_row(r)).collect();
        let opts = LogisticOptions {
            epochs: 12,
            ..LogisticOptions::default()
        };
        let base = LogisticRegression::fit(&xs, &ys, &opts).unwrap();
        for shards in [1usize, 2, 4, 7, 64] {
            let sharded = LogisticRegression::fit_sharded(&xs, &ys, &opts, shards).unwrap();
            assert_eq!(
                base.intercept.to_bits(),
                sharded.intercept.to_bits(),
                "{shards} shards"
            );
            for (a, b) in base.coefficients.iter().zip(&sharded.coefficients) {
                assert_eq!(a.to_bits(), b.to_bits(), "{shards} shards");
            }
        }
    }

    #[test]
    fn small_inputs_reproduce_the_single_pass_fit() {
        // under one chunk the chunked accumulator IS the single
        // left-to-right pass — pin the exact historical coefficients
        // by re-running the pre-chunking loop inline
        let (cols, ys) = onehot_world(500);
        let design = world_design(&cols);
        let xs: Vec<Vec<f64>> = (0..design.n_rows).map(|r| design.dense_row(r)).collect();
        let opts = LogisticOptions::default();
        let m = LogisticRegression::fit(&xs, &ys, &opts).unwrap();
        let (mut w, mut b) = (vec![0.0f64; 6], 0.0f64);
        let n = xs.len() as f64;
        for _ in 0..opts.epochs {
            let mut gw = vec![0.0f64; 6];
            let mut gb = 0.0f64;
            for (x, &y) in xs.iter().zip(&ys) {
                let err = sigmoid(b + dot(&w, x)) - f64::from(y);
                gb += err;
                for (g, &xi) in gw.iter_mut().zip(x) {
                    *g += err * xi;
                }
            }
            b -= opts.learning_rate * gb / n;
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= opts.learning_rate * (g / n + opts.l2 * *wi);
            }
        }
        assert_eq!(m.intercept.to_bits(), b.to_bits());
        for (a, e) in m.coefficients.iter().zip(&w) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn newton_fit_is_bit_identical_across_shard_counts() {
        let (cols, ys) = onehot_world(9_000);
        let design = world_design(&cols);
        let opts = NewtonOptions::default();
        let base = LogisticRegression::fit_onehot_newton(&design, &ys, &opts, 1).unwrap();
        for shards in [2usize, 4, 7, 64] {
            let m = LogisticRegression::fit_onehot_newton(&design, &ys, &opts, shards).unwrap();
            assert_eq!(base.intercept.to_bits(), m.intercept.to_bits());
            for (a, b) in base.coefficients.iter().zip(&m.coefficients) {
                assert_eq!(a.to_bits(), b.to_bits(), "{shards} shards");
            }
        }
    }

    #[test]
    fn newton_fit_matches_the_model_and_beats_gd_at_equal_budget() {
        let (cols, ys) = onehot_world(4_000);
        let design = world_design(&cols);
        let m = LogisticRegression::fit_onehot_newton(&design, &ys, &NewtonOptions::default(), 1)
            .unwrap();
        // the learned coefficients order the first block correctly
        // (gain rises with the code) and point the right way elsewhere
        assert!(m.coefficients[2] > m.coefficients[1]);
        assert!(m.coefficients[1] > m.coefficients[0]);
        assert!(m.coefficients[4] < m.coefficients[3]);
        assert!(m.coefficients[5] > 0.0);
        let acc = (0..design.n_rows)
            .filter(|&r| {
                let p = m.predict_proba_one(&design.dense_row(r));
                u32::from(p > 0.5) == ys[r]
            })
            .count() as f64
            / design.n_rows as f64;
        assert!(acc > 0.7, "newton surrogate accuracy {acc}");
    }

    #[test]
    fn newton_sparse_equals_dense_gd_geometry_on_onehot_data() {
        // the sparse accumulator must agree with a dense Newton step;
        // cheapest check: predictions from the sparse fit match a
        // well-converged dense GD fit closely on every row
        let (cols, ys) = onehot_world(2_000);
        let design = world_design(&cols);
        let xs: Vec<Vec<f64>> = (0..design.n_rows).map(|r| design.dense_row(r)).collect();
        let newton =
            LogisticRegression::fit_onehot_newton(&design, &ys, &NewtonOptions::default(), 1)
                .unwrap();
        let gd = LogisticRegression::fit(
            &xs,
            &ys,
            &LogisticOptions {
                epochs: 4_000,
                learning_rate: 0.5,
                l2: 1e-4,
            },
        )
        .unwrap();
        for x in xs.iter().step_by(97) {
            let a = newton.predict_proba_one(x);
            let b = gd.predict_proba_one(x);
            assert!((a - b).abs() < 0.02, "newton {a} vs gd {b}");
        }
    }

    #[test]
    fn onehot_design_validation() {
        let codes = vec![0u32, 1, 2];
        let short = vec![0u32];
        let bad_code = vec![0u32, 5, 1];
        let ok = OneHotDesign {
            width: 4,
            n_rows: 3,
            blocks: vec![OneHotBlock {
                offset: 0,
                cardinality: 3,
                codes: &codes,
            }],
            ordinals: vec![OrdinalFeature {
                slot: 3,
                values: &codes,
            }],
        };
        assert!(ok.validate().is_ok());
        let mut wide = ok.clone();
        wide.blocks[0].cardinality = 5;
        assert!(wide.validate().is_err(), "block past width");
        let mut ragged = ok.clone();
        ragged.blocks[0].codes = &short;
        assert!(ragged.validate().is_err(), "short column");
        let mut out = ok.clone();
        out.blocks[0].codes = &bad_code;
        assert!(out.validate().is_err(), "code outside cardinality");
        let mut slot = ok.clone();
        slot.ordinals[0].slot = 9;
        assert!(slot.validate().is_err(), "ordinal slot past width");
        let ys = [0u32, 1, 0];
        assert!(
            LogisticRegression::fit_onehot_newton(&ok, &ys[..2], &NewtonOptions::default(), 1)
                .is_err(),
            "label length mismatch"
        );
        assert!(
            LogisticRegression::fit_onehot_newton(&ok, &[0, 2, 0], &NewtonOptions::default(), 1)
                .is_err(),
            "labels must be 0/1"
        );
    }
}
