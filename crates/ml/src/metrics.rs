//! Evaluation metrics for trained models.

/// Fraction of predictions equal to the labels.
pub fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / pred.len() as f64
}

/// Binary cross-entropy of predicted positive-class probabilities.
pub fn log_loss(probs: &[f64], truth: &[u32]) -> f64 {
    assert_eq!(probs.len(), truth.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty input");
    let mut acc = 0.0;
    for (&p, &y) in probs.iter().zip(truth) {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        acc -= if y == 1 { p.ln() } else { (1.0 - p).ln() };
    }
    acc / probs.len() as f64
}

/// Area under the ROC curve via the rank statistic (ties get half
/// credit). Returns 0.5 when one class is absent.
pub fn roc_auc(probs: &[f64], truth: &[u32]) -> f64 {
    assert_eq!(probs.len(), truth.len(), "length mismatch");
    let n_pos = truth.iter().filter(|&&y| y == 1).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut pairs: Vec<(f64, u32)> = probs.iter().copied().zip(truth.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Assign average ranks across score ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for pair in &pairs[i..=j] {
            if pair.1 == 1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// A 2×2 confusion matrix `[[tn, fp], [fn, tp]]`.
pub fn confusion(pred: &[u32], truth: &[u32]) -> [[usize; 2]; 2] {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut m = [[0usize; 2]; 2];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t.min(1) as usize][p.min(1) as usize] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_perfect_and_bad() {
        let perfect = log_loss(&[1.0, 0.0], &[1, 0]);
        assert!(perfect < 1e-9);
        let bad = log_loss(&[0.0, 1.0], &[1, 0]);
        assert!(bad > 10.0);
        // uniform prediction has loss ln 2
        let uniform = log_loss(&[0.5, 0.5], &[1, 0]);
        assert!((uniform - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let truth = [0, 0, 1, 1];
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &truth) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &truth) - 0.0).abs() < 1e-12);
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_and_degenerate() {
        // one tie between a pos and a neg: half credit
        let auc = roc_auc(&[0.3, 0.5, 0.5], &[0, 0, 1]);
        assert!((auc - 0.75).abs() < 1e-12);
        assert_eq!(roc_auc(&[0.5, 0.2], &[1, 1]), 0.5);
    }

    #[test]
    fn confusion_layout() {
        let m = confusion(&[1, 1, 0, 0], &[1, 0, 1, 0]);
        assert_eq!(m, [[1, 1], [1, 1]]);
        let m2 = confusion(&[1, 1], &[1, 1]);
        assert_eq!(m2[1][1], 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[1], &[1, 0]);
    }
}
