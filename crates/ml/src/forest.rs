//! Bagged random forests (Breiman 2001).
//!
//! Each tree is trained on a bootstrap resample with per-split feature
//! subsampling (`√d` for classification, `d/3` for regression, the
//! classical defaults). Predictions average the trees' leaf
//! distributions / values.

use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
use crate::{Classifier, MlError, Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for both forest flavours.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsetting is filled in automatically
    /// when `max_features` is `None`).
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 12,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
        }
    }
}

fn bootstrap<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// A random forest classifier (majority soft-vote).
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Train `params.n_trees` trees on bootstrap resamples.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[u32],
        n_classes: usize,
        params: &ForestParams,
        seed: u64,
    ) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty or mismatched data".into(),
            ));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter("n_trees must be > 0".into()));
        }
        let d = xs[0].len();
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(((d as f64).sqrt().ceil() as usize).max(1));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut bx: Vec<Vec<f64>> = Vec::with_capacity(xs.len());
        let mut by: Vec<u32> = Vec::with_capacity(ys.len());
        for _ in 0..params.n_trees {
            bx.clear();
            by.clear();
            for &i in &bootstrap(xs.len(), &mut rng) {
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            trees.push(DecisionTreeClassifier::fit(
                &bx,
                &by,
                n_classes,
                &tree_params,
                &mut rng,
            )?);
        }
        Ok(RandomForestClassifier { trees, n_classes })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForestClassifier {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        let mut buf = vec![0.0; self.n_classes];
        for tree in &self.trees {
            tree.predict_proba(x, &mut buf);
            for (o, &p) in out.iter_mut().zip(&buf) {
                *o += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

/// A random forest regressor (mean of tree predictions).
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Train `params.n_trees` regression trees on bootstrap resamples.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &ForestParams, seed: u64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData(
                "empty or mismatched data".into(),
            ));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter("n_trees must be > 0".into()));
        }
        let d = xs[0].len();
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some((d / 3).max(1));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut bx: Vec<Vec<f64>> = Vec::with_capacity(xs.len());
        let mut by: Vec<f64> = Vec::with_capacity(ys.len());
        for _ in 0..params.n_trees {
            bx.clear();
            by.clear();
            for &i in &bootstrap(xs.len(), &mut rng) {
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            trees.push(DecisionTreeRegressor::fit(
                &bx,
                &by,
                &tree_params,
                &mut rng,
            )?);
        }
        Ok(RandomForestRegressor { trees })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moons(n: usize) -> (Vec<Vec<f64>>, Vec<u32>) {
        // deterministic two-cluster data with an interaction
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 17) as f64 / 17.0;
            let b = (i % 23) as f64 / 23.0;
            xs.push(vec![a, b]);
            ys.push(u32::from((a - 0.5) * (b - 0.5) > 0.0));
        }
        (xs, ys)
    }

    #[test]
    fn classifier_beats_chance_on_interaction() {
        let (xs, ys) = moons(600);
        let params = ForestParams {
            n_trees: 30,
            ..ForestParams::default()
        };
        let m = RandomForestClassifier::fit(&xs, &ys, 2, &params, 1).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let (xs, ys) = moons(200);
        let m = RandomForestClassifier::fit(
            &xs,
            &ys,
            2,
            &ForestParams {
                n_trees: 7,
                ..ForestParams::default()
            },
            3,
        )
        .unwrap();
        let mut buf = [0.0; 2];
        for x in xs.iter().take(50) {
            m.predict_proba(x, &mut buf);
            assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(buf.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = moons(100);
        let params = ForestParams {
            n_trees: 5,
            ..ForestParams::default()
        };
        let a = RandomForestClassifier::fit(&xs, &ys, 2, &params, 42).unwrap();
        let b = RandomForestClassifier::fit(&xs, &ys, 2, &params, 42).unwrap();
        for x in xs.iter().take(20) {
            assert_eq!(a.proba_of(x, 1), b.proba_of(x, 1));
        }
    }

    #[test]
    fn regressor_approximates_smooth_function() {
        let xs: Vec<Vec<f64>> = (0..500).map(|i| vec![f64::from(i) / 50.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        let m = RandomForestRegressor::fit(
            &xs,
            &ys,
            &ForestParams {
                n_trees: 30,
                ..ForestParams::default()
            },
            5,
        )
        .unwrap();
        let mut worst: f64 = 0.0;
        for x in xs.iter().step_by(13) {
            let err = (m.predict(x) - x[0].sin()).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.15, "worst error {worst}");
    }

    #[test]
    fn invalid_params_rejected() {
        let (xs, ys) = moons(10);
        let params = ForestParams {
            n_trees: 0,
            ..ForestParams::default()
        };
        assert!(RandomForestClassifier::fit(&xs, &ys, 2, &params, 0).is_err());
        assert!(RandomForestClassifier::fit(&[], &[], 2, &ForestParams::default(), 0).is_err());
        let ysf: Vec<f64> = ys.iter().map(|&y| f64::from(y)).collect();
        assert!(RandomForestRegressor::fit(&xs, &ysf[..5], &ForestParams::default(), 0).is_err());
    }
}
