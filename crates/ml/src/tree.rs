//! CART decision trees for classification and regression.
//!
//! A single split-search implementation serves both targets: nodes are
//! grown greedily by scanning sorted feature values and tracking running
//! class counts (gini impurity) or running moments (variance reduction).
//! Trees store their nodes in a flat arena; regression trees additionally
//! expose [`DecisionTreeRegressor::leaf_index`] and mutable leaf values so
//! the GBDT can re-fit leaves with Newton weights.

use crate::{Classifier, MlError, Regressor, Result};
use rand::Rng;

/// Hyper-parameters shared by all tree learners.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class distribution (classification) or `[mean]` (regression).
        value: Vec<f64>,
        /// Dense leaf ordinal, used by `leaf_index`.
        leaf_id: usize,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Tree {
    nodes: Vec<Node>,
    n_leaves: usize,
}

impl Tree {
    fn leaf_of(&self, x: &[f64]) -> (&Vec<f64>, usize) {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, leaf_id } => return (value, *leaf_id),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Internal training target.
enum Target<'a> {
    Classes { labels: &'a [u32], n_classes: usize },
    Reals(&'a [f64]),
}

/// Running sufficient statistics for impurity on one side of a split.
#[derive(Clone)]
enum Stats {
    Counts(Vec<f64>),
    Moments { n: f64, sum: f64, sum_sq: f64 },
}

impl Stats {
    fn new(target: &Target) -> Self {
        match target {
            Target::Classes { n_classes, .. } => Stats::Counts(vec![0.0; *n_classes]),
            Target::Reals(_) => Stats::Moments {
                n: 0.0,
                sum: 0.0,
                sum_sq: 0.0,
            },
        }
    }

    fn add(&mut self, target: &Target, idx: usize) {
        match (self, target) {
            (Stats::Counts(c), Target::Classes { labels, .. }) => {
                c[labels[idx] as usize] += 1.0;
            }
            (Stats::Moments { n, sum, sum_sq }, Target::Reals(ys)) => {
                let y = ys[idx];
                *n += 1.0;
                *sum += y;
                *sum_sq += y * y;
            }
            _ => unreachable!("stats/target mismatch"),
        }
    }

    fn remove(&mut self, target: &Target, idx: usize) {
        match (self, target) {
            (Stats::Counts(c), Target::Classes { labels, .. }) => {
                c[labels[idx] as usize] -= 1.0;
            }
            (Stats::Moments { n, sum, sum_sq }, Target::Reals(ys)) => {
                let y = ys[idx];
                *n -= 1.0;
                *sum -= y;
                *sum_sq -= y * y;
            }
            _ => unreachable!("stats/target mismatch"),
        }
    }

    fn n(&self) -> f64 {
        match self {
            Stats::Counts(c) => c.iter().sum(),
            Stats::Moments { n, .. } => *n,
        }
    }

    /// Total impurity mass `n * impurity` (so parent − children is the
    /// split gain without renormalizing).
    fn weighted_impurity(&self) -> f64 {
        match self {
            Stats::Counts(c) => {
                let n: f64 = c.iter().sum();
                if n == 0.0 {
                    return 0.0;
                }
                let sq: f64 = c.iter().map(|&x| x * x).sum();
                n - sq / n // n * gini
            }
            Stats::Moments { n, sum, sum_sq } => {
                if *n == 0.0 {
                    return 0.0;
                }
                sum_sq - sum * sum / n // n * variance
            }
        }
    }

    fn leaf_value(&self) -> Vec<f64> {
        match self {
            Stats::Counts(c) => {
                let n: f64 = c.iter().sum();
                if n == 0.0 {
                    vec![0.0; c.len()]
                } else {
                    c.iter().map(|&x| x / n).collect()
                }
            }
            Stats::Moments { n, sum, .. } => {
                vec![if *n == 0.0 { 0.0 } else { sum / n }]
            }
        }
    }
}

fn build_tree<R: Rng>(
    xs: &[Vec<f64>],
    target: &Target,
    params: &TreeParams,
    rng: &mut R,
) -> Result<Tree> {
    let n = xs.len();
    if n == 0 {
        return Err(MlError::InvalidTrainingData("no samples".into()));
    }
    let d = xs[0].len();
    if d == 0 {
        return Err(MlError::InvalidTrainingData("no features".into()));
    }
    if xs.iter().any(|x| x.len() != d) {
        return Err(MlError::InvalidTrainingData("ragged feature rows".into()));
    }
    let mut tree = Tree {
        nodes: Vec::new(),
        n_leaves: 0,
    };
    let mut indices: Vec<usize> = (0..n).collect();
    grow(xs, target, params, rng, &mut tree, &mut indices, 0);
    Ok(tree)
}

/// Recursively grow the subtree over `indices`, returning its node id.
fn grow<R: Rng>(
    xs: &[Vec<f64>],
    target: &Target,
    params: &TreeParams,
    rng: &mut R,
    tree: &mut Tree,
    indices: &mut [usize],
    depth: usize,
) -> usize {
    let mut stats = Stats::new(target);
    for &i in indices.iter() {
        stats.add(target, i);
    }
    let parent_impurity = stats.weighted_impurity();

    let make_leaf = |tree: &mut Tree, stats: &Stats| {
        let id = tree.nodes.len();
        tree.nodes.push(Node::Leaf {
            value: stats.leaf_value(),
            leaf_id: tree.n_leaves,
        });
        tree.n_leaves += 1;
        id
    };

    if depth >= params.max_depth
        || indices.len() < params.min_samples_split
        || parent_impurity <= 1e-12
    {
        return make_leaf(tree, &stats);
    }

    let d = xs[0].len();
    let m = params.max_features.unwrap_or(d).clamp(1, d);
    // Sample the feature subset without replacement (Fisher–Yates prefix).
    let mut features: Vec<usize> = (0..d).collect();
    for i in 0..m {
        let j = rng.gen_range(i..d);
        features.swap(i, j);
    }
    features.truncate(m);

    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut order: Vec<usize> = Vec::with_capacity(indices.len());
    for &f in &features {
        order.clear();
        order.extend_from_slice(indices);
        order.sort_unstable_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
        let mut left = Stats::new(target);
        let mut right = stats.clone();
        for pos in 0..order.len() - 1 {
            let i = order[pos];
            left.add(target, i);
            right.remove(target, i);
            // can only split between distinct feature values
            if xs[order[pos]][f] == xs[order[pos + 1]][f] {
                continue;
            }
            let nl = left.n() as usize;
            let nr = order.len() - nl;
            if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                continue;
            }
            let gain = parent_impurity - left.weighted_impurity() - right.weighted_impurity();
            // Zero-gain splits are accepted (gain >= 0): XOR-like targets
            // have no first-level gain yet still need the split to make
            // progress; max_depth/min_samples bound the growth.
            if best.map_or(gain >= 0.0, |(g, _, _)| gain > g) {
                let threshold = (xs[order[pos]][f] + xs[order[pos + 1]][f]) / 2.0;
                best = Some((gain, f, threshold));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return make_leaf(tree, &stats);
    };

    // Partition indices around the chosen split.
    let mut lo = 0usize;
    let mut hi = indices.len();
    while lo < hi {
        if xs[indices[lo]][feature] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    debug_assert!(
        lo > 0 && lo < indices.len(),
        "split produced an empty child"
    );

    let id = tree.nodes.len();
    tree.nodes.push(Node::Split {
        feature,
        threshold,
        left: 0,
        right: 0,
    });
    let (left_idx, right_idx) = indices.split_at_mut(lo);
    let left = grow(xs, target, params, rng, tree, left_idx, depth + 1);
    let right = grow(xs, target, params, rng, tree, right_idx, depth + 1);
    if let Node::Split {
        left: l, right: r, ..
    } = &mut tree.nodes[id]
    {
        *l = left;
        *r = right;
    }
    id
}

/// A CART classification tree (gini impurity, distribution leaves).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeClassifier {
    tree: Tree,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Fit on dense features and labels `0..n_classes`.
    pub fn fit<R: Rng>(
        xs: &[Vec<f64>],
        ys: &[u32],
        n_classes: usize,
        params: &TreeParams,
        rng: &mut R,
    ) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData("xs/ys length mismatch".into()));
        }
        if ys.iter().any(|&y| y as usize >= n_classes) {
            return Err(MlError::InvalidTrainingData("label out of range".into()));
        }
        let target = Target::Classes {
            labels: ys,
            n_classes,
        };
        Ok(DecisionTreeClassifier {
            tree: build_tree(xs, &target, params, rng)?,
            n_classes,
        })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.tree.n_leaves
    }
}

impl Classifier for DecisionTreeClassifier {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let (dist, _) = self.tree.leaf_of(x);
        out.copy_from_slice(dist);
    }
}

/// A CART regression tree (variance reduction, mean leaves).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeRegressor {
    tree: Tree,
}

impl DecisionTreeRegressor {
    /// Fit on dense features and real targets.
    pub fn fit<R: Rng>(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &TreeParams,
        rng: &mut R,
    ) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MlError::InvalidTrainingData("xs/ys length mismatch".into()));
        }
        let target = Target::Reals(ys);
        Ok(DecisionTreeRegressor {
            tree: build_tree(xs, &target, params, rng)?,
        })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.tree.n_leaves
    }

    /// Dense index of the leaf `x` falls into.
    pub fn leaf_index(&self, x: &[f64]) -> usize {
        self.tree.leaf_of(x).1
    }

    /// Overwrite every leaf's predicted value (GBDT Newton refit).
    ///
    /// # Panics
    /// Panics if `values.len() != n_leaves()`.
    pub fn set_leaf_values(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.tree.n_leaves, "one value per leaf");
        for node in &mut self.tree.nodes {
            if let Node::Leaf { value, leaf_id } = node {
                value[0] = values[*leaf_id];
            }
        }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.tree.leaf_of(x).0[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn classifier_fits_xor() {
        // XOR is not linearly separable; a depth-2 tree nails it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0u32, 1, 1, 0];
        let t =
            DecisionTreeClassifier::fit(&xs, &ys, 2, &TreeParams::default(), &mut rng()).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(t.predict(x), y);
        }
    }

    #[test]
    fn classifier_respects_max_depth() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<u32> = (0..64).map(|i| u32::from(i % 2 == 0)).collect();
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = DecisionTreeClassifier::fit(&xs, &ys, 2, &params, &mut rng()).unwrap();
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn pure_nodes_become_leaves() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1u32, 1, 1];
        let t =
            DecisionTreeClassifier::fit(&xs, &ys, 2, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(t.n_leaves(), 1);
        assert!((t.proba_of(&[2.0], 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiclass_distribution_sums_to_one() {
        let mut r = rng();
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![f64::from(i % 30), f64::from(i % 7)])
            .collect();
        let ys: Vec<u32> = (0..300).map(|i| (i % 3) as u32).collect();
        let t = DecisionTreeClassifier::fit(&xs, &ys, 3, &TreeParams::default(), &mut r).unwrap();
        let mut buf = [0.0; 3];
        for x in &xs {
            t.predict_proba(x, &mut buf);
            let s: f64 = buf.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn regressor_fits_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let t = DecisionTreeRegressor::fit(&xs, &ys, &TreeParams::default(), &mut rng()).unwrap();
        assert!((t.predict(&[10.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[80.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..10).map(f64::from).collect();
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let t = DecisionTreeRegressor::fit(&xs, &ys, &params, &mut rng()).unwrap();
        // only one split can satisfy 5/5
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn leaf_index_is_dense_and_stable() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = (0..40).map(|i| f64::from(i * i)).collect();
        let t = DecisionTreeRegressor::fit(&xs, &ys, &TreeParams::default(), &mut rng()).unwrap();
        let n = t.n_leaves();
        let mut seen = vec![false; n];
        for x in &xs {
            let id = t.leaf_index(x);
            assert!(id < n);
            seen[id] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every leaf reachable from training data"
        );
    }

    #[test]
    fn set_leaf_values_changes_predictions() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![0.0, 1.0];
        let mut t =
            DecisionTreeRegressor::fit(&xs, &ys, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(t.n_leaves(), 2);
        let new_values: Vec<f64> = (0..t.n_leaves()).map(|i| 100.0 + i as f64).collect();
        t.set_leaf_values(&new_values);
        let p0 = t.predict(&[0.0]);
        let p1 = t.predict(&[10.0]);
        assert!(p0 >= 100.0 && p1 >= 100.0 && p0 != p1);
    }

    #[test]
    fn feature_subsetting_still_learns() {
        let mut r = rng();
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![f64::from(i % 2), f64::from(i % 3), f64::from(i % 5)])
            .collect();
        let ys: Vec<u32> = xs.iter().map(|x| u32::from(x[0] > 0.5)).collect();
        let params = TreeParams {
            max_features: Some(2),
            ..TreeParams::default()
        };
        let t = DecisionTreeClassifier::fit(&xs, &ys, 2, &params, &mut r).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| t.predict(x) == y)
            .count();
        assert!(acc >= 190, "accuracy {acc}/200");
    }

    #[test]
    fn invalid_input_rejected() {
        let mut r = rng();
        assert!(DecisionTreeClassifier::fit(&[], &[], 2, &TreeParams::default(), &mut r).is_err());
        assert!(
            DecisionTreeClassifier::fit(&[vec![1.0]], &[5], 2, &TreeParams::default(), &mut r)
                .is_err()
        );
        assert!(DecisionTreeRegressor::fit(
            &[vec![1.0], vec![2.0]],
            &[1.0],
            &TreeParams::default(),
            &mut r
        )
        .is_err());
        assert!(DecisionTreeClassifier::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[0, 1],
            2,
            &TreeParams::default(),
            &mut r
        )
        .is_err());
    }
}
