//! Bridging dictionary-coded tables and dense feature vectors.
//!
//! LEWIS's world is `u32` domain codes (every attribute is discrete); the
//! models in this crate consume `f64` vectors. A [`TableEncoder`] converts
//! between the two. Two encodings are provided:
//!
//! * **ordinal** — each code becomes its numeric value (binned domains use
//!   the bin midpoint). Matches the paper's assumption that domains carry
//!   a natural order, and keeps trees/forests efficient.
//! * **one-hot** — each categorical level becomes an indicator column;
//!   better suited to the neural network and linear models.

use tabular::{AttrId, Schema, Table, Value};

/// How a table row becomes a feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Code (or bin midpoint) as a single numeric feature per attribute.
    Ordinal,
    /// One indicator column per categorical level.
    OneHot,
}

/// A fitted encoder for a fixed set of input attributes.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    inputs: Vec<AttrId>,
    encoding: Encoding,
    /// Per input: cardinality (for one-hot) and optional bin midpoints.
    cards: Vec<usize>,
    midpoints: Vec<Option<Vec<f64>>>,
    n_features: usize,
}

impl TableEncoder {
    /// Build an encoder for `inputs` over `schema`.
    pub fn new(schema: &Schema, inputs: &[AttrId], encoding: Encoding) -> tabular::Result<Self> {
        let mut cards = Vec::with_capacity(inputs.len());
        let mut midpoints = Vec::with_capacity(inputs.len());
        for &a in inputs {
            let dom = schema.domain(a)?;
            cards.push(dom.cardinality());
            midpoints.push(dom.is_binned().then(|| {
                dom.values()
                    .map(|v| dom.bin_midpoint(v).expect("binned"))
                    .collect()
            }));
        }
        let n_features = match encoding {
            Encoding::Ordinal => inputs.len(),
            Encoding::OneHot => cards.iter().sum(),
        };
        Ok(TableEncoder {
            inputs: inputs.to_vec(),
            encoding,
            cards,
            midpoints,
            n_features,
        })
    }

    /// The input attributes, in feature order.
    pub fn inputs(&self) -> &[AttrId] {
        &self.inputs
    }

    /// Length of the produced feature vectors.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Encode a full table row (indexed by attribute id).
    pub fn encode_row(&self, row: &[Value]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_features);
        self.encode_row_into(row, &mut out);
        out
    }

    /// Encode into a reusable buffer.
    pub fn encode_row_into(&self, row: &[Value], out: &mut Vec<f64>) {
        out.clear();
        match self.encoding {
            Encoding::Ordinal => {
                for (i, &a) in self.inputs.iter().enumerate() {
                    let code = row[a.index()];
                    out.push(match &self.midpoints[i] {
                        Some(mids) => mids[code as usize],
                        None => f64::from(code),
                    });
                }
            }
            Encoding::OneHot => {
                for (i, &a) in self.inputs.iter().enumerate() {
                    let code = row[a.index()] as usize;
                    for level in 0..self.cards[i] {
                        out.push(if level == code { 1.0 } else { 0.0 });
                    }
                }
            }
        }
    }

    /// Encode every row of a table.
    pub fn encode_table(&self, table: &Table) -> Vec<Vec<f64>> {
        let cols: Vec<&[Value]> = self
            .inputs
            .iter()
            .map(|&a| table.column(a).expect("encoder inputs exist in table"))
            .collect();
        let mut out = Vec::with_capacity(table.n_rows());
        for r in 0..table.n_rows() {
            let mut feat = Vec::with_capacity(self.n_features);
            match self.encoding {
                Encoding::Ordinal => {
                    for (i, col) in cols.iter().enumerate() {
                        let code = col[r];
                        feat.push(match &self.midpoints[i] {
                            Some(mids) => mids[code as usize],
                            None => f64::from(code),
                        });
                    }
                }
                Encoding::OneHot => {
                    for (i, col) in cols.iter().enumerate() {
                        let code = col[r] as usize;
                        for level in 0..self.cards[i] {
                            feat.push(if level == code { 1.0 } else { 0.0 });
                        }
                    }
                }
            }
            out.push(feat);
        }
        out
    }

    /// Extract a label column as `u32` class ids.
    pub fn labels(table: &Table, outcome: AttrId) -> tabular::Result<Vec<u32>> {
        Ok(table.column(outcome)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Domain;

    fn schema() -> (Schema, AttrId, AttrId, AttrId) {
        let mut s = Schema::new();
        let cat = s.push("color", Domain::categorical(["r", "g", "b"]));
        let num = s.push("age", Domain::binned(vec![0.0, 10.0, 30.0]));
        let out = s.push("y", Domain::boolean());
        (s, cat, num, out)
    }

    #[test]
    fn ordinal_uses_midpoints_for_binned() {
        let (s, cat, num, _) = schema();
        let enc = TableEncoder::new(&s, &[cat, num], Encoding::Ordinal).unwrap();
        assert_eq!(enc.n_features(), 2);
        let feat = enc.encode_row(&[2, 1, 0]);
        assert_eq!(feat, vec![2.0, 20.0]); // code 2; bin [10,30) midpoint 20
    }

    #[test]
    fn one_hot_layout() {
        let (s, cat, num, _) = schema();
        let enc = TableEncoder::new(&s, &[cat, num], Encoding::OneHot).unwrap();
        assert_eq!(enc.n_features(), 3 + 2);
        let feat = enc.encode_row(&[1, 0, 0]);
        assert_eq!(feat, vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        // exactly one hot per attribute
        assert_eq!(feat.iter().filter(|&&v| v == 1.0).count(), 2);
    }

    #[test]
    fn table_encoding_matches_row_encoding() {
        let (s, cat, num, out) = schema();
        let mut t = Table::new(s.clone());
        t.push_row(&[0, 0, 1]).unwrap();
        t.push_row(&[2, 1, 0]).unwrap();
        let enc = TableEncoder::new(&s, &[cat, num], Encoding::Ordinal).unwrap();
        let batch = enc.encode_table(&t);
        for (r, feat) in batch.iter().enumerate() {
            assert_eq!(*feat, enc.encode_row(&t.row(r).unwrap()));
        }
        let labels = TableEncoder::labels(&t, out).unwrap();
        assert_eq!(labels, vec![1, 0]);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let (s, cat, _, _) = schema();
        let enc = TableEncoder::new(&s, &[cat], Encoding::Ordinal).unwrap();
        let mut buf = Vec::with_capacity(4);
        enc.encode_row_into(&[1, 0, 0], &mut buf);
        assert_eq!(buf, vec![1.0]);
        enc.encode_row_into(&[2, 0, 0], &mut buf);
        assert_eq!(buf, vec![2.0]);
    }
}
