//! # ml — from-scratch machine-learning substrate
//!
//! The paper evaluates LEWIS against four black-box model families
//! (§5.2): random forest classifiers, random forest regressors, XGBoost,
//! and feed-forward neural networks. None of these exist in the offline
//! Rust ecosystem available here, so this crate implements them, plus the
//! (weighted, regularized) linear models that LIME / KernelSHAP / the
//! recourse logit surrogate need:
//!
//! * [`linalg`] — dense matrices, Gaussian elimination, Cholesky;
//! * [`linear`] — linear & ridge regression (weighted), logistic
//!   regression;
//! * [`tree`] — CART decision trees (gini / entropy / variance);
//! * [`forest`] — bagged random forests (classification & regression);
//! * [`gbdt`] — gradient-boosted trees with second-order (Newton) leaf
//!   weights, XGBoost-style;
//! * [`nn`] — multi-layer perceptron trained with Adam;
//! * [`encode`] — dictionary-code ⇄ feature-vector bridges for
//!   [`tabular::Table`] data;
//! * [`metrics`] — accuracy, log-loss, AUC.
//!
//! All models implement [`Classifier`] or [`Regressor`]; LEWIS itself only
//! ever sees the [`Classifier::predict`] surface, which is what makes it
//! model-agnostic.

pub mod encode;
pub mod forest;
pub mod gbdt;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod nn;
pub mod tree;

pub use encode::TableEncoder;
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use gbdt::GradientBoostedTrees;
pub use linalg::Matrix;
pub use linear::{
    LinearRegression, LogisticRegression, NewtonOptions, OneHotBlock, OneHotDesign, OrdinalFeature,
};
pub use nn::NeuralNetwork;
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor};

/// A trained classifier over dense feature vectors.
///
/// `predict_proba` fills a caller-provided buffer with the class
/// distribution so hot loops stay allocation-free.
pub trait Classifier: Send + Sync {
    /// Number of classes `K`; class labels are `0..K`.
    fn n_classes(&self) -> usize;

    /// Write `Pr(class = k | x)` for every `k` into `out`
    /// (`out.len() == n_classes()`).
    fn predict_proba(&self, x: &[f64], out: &mut [f64]);

    /// The most probable class.
    fn predict(&self, x: &[f64]) -> u32 {
        let mut buf = vec![0.0; self.n_classes()];
        self.predict_proba(x, &mut buf);
        argmax(&buf) as u32
    }

    /// `Pr(class | x)` for one class.
    fn proba_of(&self, x: &[f64], class: u32) -> f64 {
        let mut buf = vec![0.0; self.n_classes()];
        self.predict_proba(x, &mut buf);
        buf.get(class as usize).copied().unwrap_or(0.0)
    }
}

/// A trained regressor over dense feature vectors.
pub trait Regressor: Send + Sync {
    /// Predicted real-valued outcome.
    fn predict(&self, x: &[f64]) -> f64;
}

/// Index of the maximum element (first on ties).
pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Errors from model training.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training data was empty or shapes disagree.
    InvalidTrainingData(String),
    /// A linear system was singular beyond recovery.
    SingularMatrix,
    /// A hyper-parameter was out of range.
    InvalidHyperparameter(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::InvalidTrainingData(m) => write!(f, "invalid training data: {m}"),
            MlError::SingularMatrix => write!(f, "singular matrix in linear solve"),
            MlError::InvalidHyperparameter(m) => write!(f, "invalid hyperparameter: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0, "first wins ties");
        assert_eq!(argmax(&[3.0]), 0);
    }
}
