//! Byte-level plumbing for the `.lewis` pack format: little-endian
//! primitive encoding, a bounds-checked cursor, and CRC-32.
//!
//! Every read is length-checked against the remaining input *before*
//! touching it, and no read ever allocates more than the bytes that are
//! actually present — so a corrupt length field produces a typed error,
//! never a panic or a giant allocation. The cursor's error carries the
//! failing offset; the section layer wraps it with the section name.

/// A located low-level decode failure inside one section payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CursorError {
    /// Offset within the payload where the read failed.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for CursorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.detail)
    }
}

pub(crate) type CursorResult<T> = Result<T, CursorError>;

/// A bounds-checked reader over one section payload.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// The payload must be fully consumed — trailing garbage means the
    /// writer and reader disagree about the format.
    pub(crate) fn finish(self) -> CursorResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn err(&self, detail: String) -> CursorError {
        CursorError {
            offset: self.pos,
            detail,
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> CursorResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> CursorResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> CursorResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> CursorResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64_bits(&mut self) -> CursorResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` that must fit in `usize` **and** be a plausible element
    /// count for the bytes that remain (each element taking at least
    /// `min_elem_bytes`). This is the guard that keeps corrupt counts
    /// from ever driving an allocation.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> CursorResult<usize> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(self.err(format!(
                "count {n} needs {need} bytes, {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self) -> CursorResult<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid UTF-8: {e}")))
    }

    /// A length-prefixed vector of `u32`s.
    pub(crate) fn u32_vec(&mut self) -> CursorResult<Vec<u32>> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
}

/// The write side: plain appends, always little-endian.
pub(crate) trait WriteBytes {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_f64_bits(&mut self, v: f64);
    fn put_string(&mut self, s: &str);
    fn put_u32_vec(&mut self, vs: &[u32]);
}

impl WriteBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.extend_from_slice(s.as_bytes());
    }

    fn put_u32_vec(&mut self, vs: &[u32]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }
}

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected). Table generated at
/// compile time; detects every single-byte corruption the property
/// tests throw at a section payload.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn cursor_round_trips_primitives() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 3);
        buf.put_f64_bits(-0.0);
        buf.put_string("héllo");
        buf.put_u32_vec(&[1, 2, 3]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 3);
        assert_eq!(c.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.string().unwrap(), "héllo");
        assert_eq!(c.u32_vec().unwrap(), vec![1, 2, 3]);
        c.finish().unwrap();
    }

    #[test]
    fn cursor_rejects_overruns_and_trailing_bytes() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(c.u32().is_err());
        let buf = [9u8, 9, 9, 9, 9];
        let mut c = Cursor::new(&buf);
        c.u8().unwrap();
        assert!(c.finish().is_err(), "trailing bytes are an error");
    }

    #[test]
    fn corrupt_counts_cannot_drive_allocations() {
        // a u32 count of 4 billion over a 6-byte payload must fail fast
        let mut buf = Vec::new();
        buf.put_u32(u32::MAX);
        buf.extend_from_slice(&[0, 0]);
        let mut c = Cursor::new(&buf);
        let err = c.u32_vec().unwrap_err();
        assert!(err.detail.contains("count"), "{err}");
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        buf.put_u32(2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Cursor::new(&buf).string().is_err());
    }
}
