//! # lewis-store — `.lewis` packs: binary columnar tables and warm
//! engine snapshots for instant cold-starts
//!
//! Every `lewis-serve` start used to pay CSV parsing, engine
//! construction and a cold counting-pass cache until traffic re-warmed
//! it. A **pack** bundles everything the serving layer needs —
//! dictionary-encoded columnar table, schema and domains, causal graph,
//! engine configuration, inferred value orders, and an optional
//! pre-warmed cache snapshot — in one hand-rolled, std-only binary file:
//! length-prefixed, versioned (magic + format version) and CRC-32
//! checksummed per section, so truncation and bit-flips yield typed
//! [`StoreError`]s, never garbage engines.
//!
//! A restored engine is **observably identical** to its donor: all
//! query kinds answer byte-for-byte the same (property-tested in
//! `tests/pack_engine.rs` at the workspace root), and the warm cache
//! keeps serving without re-scanning the table.
//!
//! ## Pack → restore → query
//!
//! ```
//! use lewis_core::{Engine, ExplainRequest};
//! use lewis_store::{Pack, PackMeta};
//! use tabular::{AttrId, Domain, Schema, Table};
//!
//! // a tiny labelled table: savings drives approval
//! let mut schema = Schema::new();
//! schema.push("savings", Domain::categorical(["low", "high"]));
//! schema.push("pred", Domain::boolean());
//! let mut table = Table::new(schema);
//! for row in [[0, 0], [0, 0], [0, 1], [1, 1], [1, 1], [1, 0]] {
//!     table.push_row(&row).unwrap();
//! }
//! let engine = Engine::builder(table)
//!     .prediction(AttrId(1), 1)
//!     .features(&[AttrId(0)])
//!     .build()
//!     .unwrap();
//! let warm = engine.run(&ExplainRequest::Global).unwrap(); // warms the cache
//!
//! // pack the warm engine, ship the bytes, restore elsewhere
//! let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
//! let (restored, _meta) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
//!
//! let again = restored.run(&ExplainRequest::Global).unwrap();
//! assert_eq!(format!("{warm:?}"), format!("{again:?}"));
//! assert!(restored.cache_stats().entries > 0, "cache arrived warm");
//! ```
//!
//! ## Format
//!
//! See [`pack`] for the byte layout. The format is deliberately dumb:
//! no compression, no seeking, one linear pass to read — restore cost
//! is dominated by `memcpy`-shaped column decodes, which is what makes
//! pack-boot dramatically faster than CSV-rebuild (`BENCH_store.json`).

pub mod pack;

mod bytes;

pub use pack::{load_engine, section_sizes, version_info, Pack, PackMeta, FORMAT_VERSION, MAGIC};

/// Errors raised while writing, reading or restoring packs. Each defect
/// class is a distinct variant so callers (and tests) can tell a
/// truncated download from a flipped bit from a snapshot that simply
/// does not belong to its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed (flattened to keep the error
    /// `Clone`/`Eq`; the offending path is kept for context).
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying `io::Error`, rendered.
        message: String,
    },
    /// The file does not start with the `.lewis` magic.
    BadMagic,
    /// The file announces a format version this reader does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The byte stream ends before a header or announced payload does.
    Truncated {
        /// Byte offset of the cut-off structure.
        offset: usize,
        /// What was being read there.
        detail: String,
    },
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// The section whose checksum failed.
        section: &'static str,
    },
    /// A checksum-valid payload decodes to nonsense (unknown tags or
    /// kinds, malformed counts, invalid UTF-8, …).
    Corrupt {
        /// The section being decoded.
        section: &'static str,
        /// Where and why the decode failed.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The missing section.
        section: &'static str,
    },
    /// The same section appears twice.
    DuplicateSection {
        /// The repeated section.
        section: &'static str,
    },
    /// Sections are individually valid but disagree with each other or
    /// with the engine's invariants (table codes outside their domains,
    /// value orders that are no permutation, cache passes referencing
    /// unknown attributes, …).
    Mismatch(String),
}

impl StoreError {
    /// Wrap an `io::Error` raised while touching `path`.
    pub fn io(path: impl AsRef<std::path::Path>, err: std::io::Error) -> Self {
        StoreError::Io {
            path: path.as_ref().display().to_string(),
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "io error on {path:?}: {message}"),
            StoreError::BadMagic => write!(f, "not a .lewis pack (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "pack format version {found} is newer than the supported {supported}"
            ),
            StoreError::Truncated { offset, detail } => {
                write!(f, "truncated pack at byte {offset}: {detail}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section:?} is missing")
            }
            StoreError::DuplicateSection { section } => {
                write!(f, "section {section:?} appears more than once")
            }
            StoreError::Mismatch(detail) => {
                write!(f, "pack sections are inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// List the `.lewis` packs in `dir` as `(engine_name, path)` pairs,
/// sorted by name. The engine name is the file stem (`german.lewis` →
/// `german`); non-`.lewis` entries and subdirectories are skipped. This
/// is how a serving fleet bootstraps: every replica points at the same
/// pack directory and loads the same engines under the same names.
pub fn discover_packs(
    dir: impl AsRef<std::path::Path>,
) -> Result<Vec<(String, std::path::PathBuf)>> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    let mut packs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let path = entry.path();
        if !path.is_file() || path.extension().and_then(|e| e.to_str()) != Some("lewis") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        packs.push((stem.to_string(), path));
    }
    packs.sort();
    Ok(packs)
}
