//! The `.lewis` pack: a versioned, checksummed container bundling a
//! dictionary-encoded columnar table, its schema and domains, the
//! causal graph, the engine configuration, the inferred value orders,
//! and (optionally) a pre-warmed counting-cache snapshot.
//!
//! ## Layout
//!
//! ```text
//! magic    8 bytes   b"LEWISPAK"
//! version  u32 LE    FORMAT_VERSION
//! section* —         until end of file
//!
//! section := tag u8 · payload_len u64 LE · payload · crc32 u32 LE
//! ```
//!
//! Each section's payload carries its own CRC-32, so truncation and
//! bit-flips surface as typed [`StoreError`]s — [`StoreError::Truncated`],
//! [`StoreError::ChecksumMismatch`] — never as a garbage engine. All
//! integers are little-endian; `f64`s travel as raw IEEE-754 bits, so
//! domains and smoothing survive bit-for-bit.
//!
//! Table columns are width-packed: a column whose domain has ≤ 256
//! values spends one byte per cell (≤ 65 536 → two), which is what
//! makes packs markedly smaller than the label-expanded CSV they were
//! compiled from (see `BENCH_store.json`).

use crate::bytes::{crc32, Cursor, CursorError, WriteBytes};
use crate::{Result, StoreError};
use lewis_core::snapshot::{
    ArmSnapshot, CacheSnapshot, CellSnapshot, EngineSnapshot, PassSnapshot, SurrogateCacheSnapshot,
    SurrogateSnapshot,
};
use lewis_core::Engine;
use lewis_index::TableIndex;
use std::path::Path;
use std::sync::Arc;
use tabular::{AttrId, Context, Domain, Schema, Table, Value};

/// The pack file magic.
pub const MAGIC: [u8; 8] = *b"LEWISPAK";

/// The current format version. Readers reject anything newer with
/// [`StoreError::UnsupportedVersion`] and keep reading every older
/// version.
///
/// * **v1** — the original layout.
/// * **v2** — the config section additionally records the engine's
///   **row-shard count** (appended at the end, so a v1 config is a
///   strict prefix). Shard *boundaries* are canonical in the count
///   (`tabular::shard_boundaries`), so the count alone restores the
///   donor's exact layout; v1 packs restore with 1 shard.
/// * **v3** — the config grows a trailing **index-enabled** flag (again
///   appended, so a v2 config is a strict prefix) and an optional,
///   CRC'd `index` section carries the engine's per-(attribute, code)
///   bitmap index verbatim. The flag without the section means "rebuild
///   the index from the table on restore" — writers that strip the
///   section stay loadable; v1/v2 packs restore without an index.
/// * **v4** — the config grows a trailing **surrogates** flag and the
///   surrogate-cache **capacity** (appended, so a v3 config is a strict
///   prefix) and an optional, CRC'd `surrogates` section carries the
///   engine's fitted recourse surrogates. The flag without the section
///   means "refit lazily" (the restored engine starts with an empty
///   surrogate cache) — writers that strip the section stay loadable; a
///   section without the flag is a [`StoreError::Mismatch`]. v1–v3
///   packs restore with an empty cache at the default capacity.
/// * **v5** — live tables. The config grows a trailing **row-version
///   watermark** (appended, so a v4 config is a strict prefix): the
///   logical row count — base rows plus appended delta rows — the
///   engine had reached when it was packed. An optional, CRC'd `delta`
///   section (same columnar codec as `table`, decoded against the same
///   schema) carries the write-side delta shard of a live engine packed
///   mid-stream, so a restored engine resumes the stream exactly where
///   the donor stood. A watermark that disagrees with the base + delta
///   row count is a [`StoreError::Mismatch`]; a delta section in a
///   pre-v5 pack is one too. v1–v4 packs restore frozen, with the
///   watermark assumed at the base row count.
pub const FORMAT_VERSION: u32 = 5;

/// Section tags, in the order the writer emits them.
const TAG_META: u8 = 1;
const TAG_SCHEMA: u8 = 2;
const TAG_TABLE: u8 = 3;
const TAG_GRAPH: u8 = 4;
const TAG_CONFIG: u8 = 5;
const TAG_ORDERS: u8 = 6;
const TAG_CACHE: u8 = 7;
const TAG_INDEX: u8 = 8;
const TAG_SURROGATES: u8 = 9;
const TAG_DELTA: u8 = 10;

pub(crate) fn section_name(tag: u8) -> &'static str {
    match tag {
        TAG_META => "meta",
        TAG_SCHEMA => "schema",
        TAG_TABLE => "table",
        TAG_GRAPH => "graph",
        TAG_CONFIG => "config",
        TAG_ORDERS => "orders",
        TAG_CACHE => "cache",
        TAG_INDEX => "index",
        TAG_SURROGATES => "surrogates",
        TAG_DELTA => "delta",
        _ => "unknown",
    }
}

/// Human-oriented provenance carried inside a pack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackMeta {
    /// Where the data came from (`"csv:data.csv"`, `"builtin:german_syn"`).
    pub source: String,
    /// Which causal graph the engine uses (`"none (§6 fallback)"`,
    /// `"discovered: pc"`, `"builtin scm"`).
    pub graph: String,
}

/// A fully materialized pack: provenance plus a restorable engine
/// snapshot. Build one from a warm engine with [`Pack::from_engine`],
/// persist with [`Pack::write_file`], and bring it back with
/// [`Pack::read_file`] + [`Pack::restore_engine`].
#[derive(Debug, Clone)]
pub struct Pack {
    /// Provenance strings, surfaced by `lewis-serve`'s engine listing.
    pub meta: PackMeta,
    /// The engine state — see [`EngineSnapshot`] for fidelity guarantees.
    pub snapshot: EngineSnapshot,
    /// Write the config's index-enabled flag *without* an index section
    /// (set by [`Pack::strip_index`]): readers rebuild the index from
    /// the table instead of deserializing it.
    rebuild_index: bool,
    /// Write the config's surrogates flag *without* a surrogates
    /// section (set by [`Pack::strip_surrogates`]): readers start with
    /// an empty surrogate cache and refit lazily.
    refit_surrogates: bool,
}

impl Pack {
    /// Snapshot `engine` (including its warm cache) under the given
    /// provenance.
    pub fn from_engine(engine: &Engine, meta: PackMeta) -> Pack {
        Pack {
            meta,
            snapshot: engine.snapshot(),
            rebuild_index: false,
            refit_surrogates: false,
        }
    }

    /// Rebuild the engine. Consumes the pack (the table and graph move
    /// into the engine without copying). Snapshot/table inconsistencies
    /// surface as [`StoreError::Mismatch`].
    pub fn restore_engine(self) -> Result<(Engine, PackMeta)> {
        let engine =
            Engine::restore(self.snapshot).map_err(|e| StoreError::Mismatch(e.to_string()))?;
        Ok((engine, self.meta))
    }

    /// Drop the pre-warmed cache (the pack then restores a cold engine;
    /// configuration and value orders are still carried).
    pub fn strip_cache(&mut self) {
        self.snapshot.cache = CacheSnapshot::default();
    }

    /// Drop the serialized bitmap index but keep the engine's
    /// index-enabled setting: a reader of the resulting bytes rebuilds
    /// the index from the table (paying the build once) instead of
    /// reading it. Shrinks the pack; never changes any answer.
    pub fn strip_index(&mut self) {
        if self.snapshot.index.take().is_some() {
            self.rebuild_index = true;
        }
    }

    /// Drop the fitted recourse surrogates but keep the config's
    /// surrogates flag: a reader of the resulting bytes starts with an
    /// empty surrogate cache and refits lazily on the first recourse
    /// query per actionable set. Shrinks the pack; never changes any
    /// answer (the refit is deterministic).
    pub fn strip_surrogates(&mut self) {
        if !self.snapshot.surrogates.fits.is_empty() {
            self.snapshot.surrogates.fits.clear();
            self.refit_surrogates = true;
        }
    }

    /// Serialize to the `.lewis` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.put_u32(FORMAT_VERSION);
        write_section(&mut out, TAG_META, encode_meta(&self.meta));
        write_section(
            &mut out,
            TAG_SCHEMA,
            encode_schema(self.snapshot.table.schema()),
        );
        write_section(&mut out, TAG_TABLE, encode_table(&self.snapshot.table));
        write_section(
            &mut out,
            TAG_GRAPH,
            encode_graph(self.snapshot.graph.as_deref()),
        );
        write_section(
            &mut out,
            TAG_CONFIG,
            encode_config(
                &self.snapshot,
                self.snapshot.index.is_some() || self.rebuild_index,
                !self.snapshot.surrogates.fits.is_empty() || self.refit_surrogates,
            ),
        );
        write_section(&mut out, TAG_ORDERS, encode_orders(&self.snapshot.orders));
        write_section(&mut out, TAG_CACHE, encode_cache(&self.snapshot.cache));
        if let Some(index) = &self.snapshot.index {
            write_section(&mut out, TAG_INDEX, index.to_bytes());
        }
        if !self.snapshot.surrogates.fits.is_empty() {
            write_section(
                &mut out,
                TAG_SURROGATES,
                encode_surrogates(&self.snapshot.surrogates),
            );
        }
        if let Some(delta) = self.snapshot.delta.as_ref().filter(|d| d.n_rows() > 0) {
            write_section(&mut out, TAG_DELTA, encode_table(delta));
        }
        out
    }

    /// Parse a `.lewis` byte buffer. Every defect is a typed error:
    /// wrong magic, future version, truncation, per-section checksum
    /// mismatches, unknown or duplicate sections, and cross-section
    /// inconsistencies ([`StoreError::Mismatch`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Pack> {
        let (version, sections) = parse_sections(bytes)?;

        let require = |tag: u8| -> Result<&[u8]> {
            sections
                .iter()
                .find(|&&(t, _)| t == tag)
                .map(|&(_, p)| p)
                .ok_or(StoreError::MissingSection {
                    section: section_name(tag),
                })
        };

        let meta = decode_meta(require(TAG_META)?)?;
        let schema = decode_schema(require(TAG_SCHEMA)?)?;
        let n_attrs = schema.len();
        let table = decode_table(require(TAG_TABLE)?, schema.clone())?;
        let graph = decode_graph(require(TAG_GRAPH)?, n_attrs)?;
        let config = decode_config(require(TAG_CONFIG)?, version)?;
        let orders = decode_orders(require(TAG_ORDERS)?)?;
        let cache = match sections.iter().find(|&&(t, _)| t == TAG_CACHE) {
            Some(&(_, payload)) => decode_cache(payload)?,
            None => CacheSnapshot::default(),
        };
        let index = match sections.iter().find(|&&(t, _)| t == TAG_INDEX) {
            Some(&(_, payload)) => {
                if !config.index_enabled {
                    return Err(StoreError::Mismatch(
                        "index section present but the config disables the index".into(),
                    ));
                }
                let index = TableIndex::from_bytes(payload).map_err(|e| StoreError::Corrupt {
                    section: "index",
                    detail: e.detail,
                })?;
                // The section is internally consistent; now it must
                // also belong to *this* table (row count and
                // per-attribute cardinalities), or its popcounts would
                // silently disagree with scans.
                if !index.matches(&table) {
                    return Err(StoreError::Mismatch(format!(
                        "index covers {} rows over {} attributes, table has {} rows over {}",
                        index.n_rows(),
                        index.cardinalities().len(),
                        table.n_rows(),
                        table.n_attrs()
                    )));
                }
                Some(Arc::new(index))
            }
            // Index-enabled without a section (a writer stripped it):
            // rebuild from the table so the engine still serves indexed.
            // The build only fails on a table/schema disagreement, which
            // from_columns has already ruled out.
            None if config.index_enabled => Some(Arc::new(
                TableIndex::build(&table, config.shards)
                    .map_err(|e| StoreError::Mismatch(e.to_string()))?,
            )),
            None => None,
        };
        let surrogates = match sections.iter().find(|&&(t, _)| t == TAG_SURROGATES) {
            Some(&(_, payload)) => {
                if !config.surrogates_flag {
                    return Err(StoreError::Mismatch(
                        "surrogates section present but the config carries no surrogates".into(),
                    ));
                }
                let surrogates = decode_surrogates(payload)?;
                // The section is internally consistent; each fit must
                // also belong to *this* engine — its coefficient count
                // must equal the surrogate feature width the table,
                // graph and prediction column imply for its actionable
                // set, or the restored engine would mis-index warm
                // coefficients. (Engine::restore re-validates the value
                // orders too.)
                for fit in &surrogates.fits {
                    let width = lewis_core::surrogate_width(
                        &table,
                        graph.as_ref(),
                        config.pred,
                        &fit.actionable,
                    )
                    .map_err(|e| StoreError::Mismatch(format!("surrogates: {e}")))?;
                    if fit.coefficients.len() != width {
                        return Err(StoreError::Mismatch(format!(
                            "surrogate for {:?} has {} coefficients, this engine needs {width}",
                            fit.actionable,
                            fit.coefficients.len()
                        )));
                    }
                }
                surrogates
            }
            // Surrogates flag without a section (a writer stripped it):
            // start with an empty cache and refit lazily per actionable
            // set. Pre-v4 packs land here too via the flag default.
            None => SurrogateCacheSnapshot::default(),
        };
        let delta = match sections.iter().find(|&&(t, _)| t == TAG_DELTA) {
            Some(&(_, payload)) => {
                if version < 5 {
                    return Err(StoreError::Mismatch(
                        "delta section in a pre-v5 pack (no writer ever produced one)".into(),
                    ));
                }
                // Same columnar codec as the table section, decoded
                // against the same schema — from_columns re-validates
                // every appended code against its domain.
                let delta = decode_table(payload, schema)?;
                (delta.n_rows() > 0).then(|| Arc::new(delta))
            }
            None => None,
        };
        // The watermark must equal the logical rows the sections carry:
        // a pack whose delta was truncated or swapped against a
        // different base must fail typed, never resume a stream at the
        // wrong row version.
        if let Some(watermark) = config.watermark {
            let total = table.n_rows() as u64 + delta.as_ref().map_or(0, |d| d.n_rows() as u64);
            if watermark != total {
                return Err(StoreError::Mismatch(format!(
                    "watermark records {watermark} rows, sections carry {total}"
                )));
            }
        }

        Ok(Pack {
            meta,
            snapshot: EngineSnapshot {
                table: Arc::new(table),
                graph: graph.map(Arc::new),
                pred: config.pred,
                positive: config.positive,
                alpha: config.alpha,
                min_support: config.min_support,
                cache_capacity: config.cache_capacity,
                shards: config.shards,
                features: config.features,
                orders,
                cache,
                surrogate_capacity: config.surrogate_capacity,
                surrogates,
                index,
                delta,
            },
            rebuild_index: false,
            refit_surrogates: false,
        })
    }

    /// Write the pack to `path`.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| StoreError::io(path, e))
    }

    /// Read a pack from `path`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Pack> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
        Pack::from_bytes(&bytes)
    }
}

/// Read a pack file and restore its engine in one step.
pub fn load_engine(path: impl AsRef<Path>) -> Result<(Engine, PackMeta)> {
    Pack::read_file(path)?.restore_engine()
}

/// Each section's `(tag, payload)`, in file order.
type TaggedSections<'a> = Vec<(u8, &'a [u8])>;

/// Validate a pack byte stream's framing (magic, version, per-section
/// CRCs, no unknown/duplicate tags) and return the version plus each
/// section's `(tag, payload)` in file order. Shared by
/// [`Pack::from_bytes`] and [`section_sizes`].
fn parse_sections(bytes: &[u8]) -> Result<(u32, TaggedSections<'_>)> {
    // Magic first: a foreign file is "not a pack", not a truncated
    // one, even when it is shorter than our header.
    let magic_prefix = bytes.len().min(MAGIC.len());
    if bytes[..magic_prefix] != MAGIC[..magic_prefix] {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 {
        return Err(StoreError::Truncated {
            offset: 0,
            detail: format!("{} bytes is smaller than the pack header", bytes.len()),
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }

    // Walk the sections, checksum-verifying each payload before any
    // of its content is decoded.
    let mut sections: Vec<(u8, &[u8])> = Vec::new();
    let mut pos = MAGIC.len() + 4;
    while pos < bytes.len() {
        let header_end = pos + 1 + 8;
        if header_end > bytes.len() {
            return Err(StoreError::Truncated {
                offset: pos,
                detail: "section header cut off".into(),
            });
        }
        let tag = bytes[pos];
        let len_bytes: [u8; 8] =
            bytes[pos + 1..header_end]
                .try_into()
                .map_err(|_| StoreError::Truncated {
                    offset: pos,
                    detail: "section header cut off".into(),
                })?;
        let len = u64::from_le_bytes(len_bytes);
        let Ok(len) = usize::try_from(len) else {
            return Err(StoreError::Truncated {
                offset: pos,
                detail: format!("section {} announces {len} bytes", section_name(tag)),
            });
        };
        let payload_end = header_end.checked_add(len).and_then(|e| e.checked_add(4));
        let Some(payload_end) = payload_end.filter(|&e| e <= bytes.len()) else {
            return Err(StoreError::Truncated {
                offset: pos,
                detail: format!(
                    "section {} announces {len} bytes, {} remain",
                    section_name(tag),
                    bytes.len() - header_end
                ),
            });
        };
        let payload = &bytes[header_end..header_end + len];
        let stored_bytes: [u8; 4] =
            bytes[header_end + len..payload_end]
                .try_into()
                .map_err(|_| StoreError::Truncated {
                    offset: header_end + len,
                    detail: "section checksum cut off".into(),
                })?;
        let stored = u32::from_le_bytes(stored_bytes);
        if crc32(payload) != stored {
            return Err(StoreError::ChecksumMismatch {
                section: section_name(tag),
            });
        }
        if section_name(tag) == "unknown" {
            return Err(StoreError::Corrupt {
                section: "unknown",
                detail: format!("unknown section tag {tag}"),
            });
        }
        if sections.iter().any(|&(t, _)| t == tag) {
            return Err(StoreError::DuplicateSection {
                section: section_name(tag),
            });
        }
        sections.push((tag, payload));
        pos = payload_end;
    }
    Ok((version, sections))
}

/// Per-section layout of a pack byte stream: `(section name, payload
/// bytes)` in file order. Walks the same checksummed framing as
/// [`Pack::from_bytes`] without decoding any payload, so tooling
/// (`lewis-pack inspect`) can report sizes and the presence of the
/// optional sections (`cache`, `index`) cheaply.
pub fn section_sizes(bytes: &[u8]) -> Result<Vec<(&'static str, u64)>> {
    let (_, sections) = parse_sections(bytes)?;
    Ok(sections
        .iter()
        .map(|&(tag, payload)| (section_name(tag), payload.len() as u64))
        .collect())
}

/// Header-level facts for tooling (`lewis-pack inspect`): the format
/// version the pack announces and, for v5+ packs, the config's
/// row-version watermark (`None` for pre-v5 packs, which are frozen at
/// their base row count). Walks the checksummed framing and decodes the
/// config section only.
pub fn version_info(bytes: &[u8]) -> Result<(u32, Option<u64>)> {
    let (version, sections) = parse_sections(bytes)?;
    let payload = sections
        .iter()
        .find(|&&(t, _)| t == TAG_CONFIG)
        .map(|&(_, p)| p)
        .ok_or(StoreError::MissingSection {
            section: section_name(TAG_CONFIG),
        })?;
    let config = decode_config(payload, version)?;
    Ok((version, config.watermark))
}

fn write_section(out: &mut Vec<u8>, tag: u8, payload: Vec<u8>) {
    out.put_u8(tag);
    out.put_u64(payload.len() as u64);
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.put_u32(crc);
}

/// Wrap a cursor-level failure with its section name.
fn corrupt(section: &'static str) -> impl Fn(CursorError) -> StoreError {
    move |e| StoreError::Corrupt {
        section,
        detail: e.to_string(),
    }
}

/// Clamp a decoded element count before it becomes a `Vec` capacity.
/// `Cursor::count` bounds counts by the *payload* bytes remaining, but
/// in-memory elements (structs, `String`s) are larger than their wire
/// form, so a crafted file could otherwise amplify its own size many
/// times over in one reservation. Past the clamp the vector grows
/// normally — decoding still fails fast when the payload runs out.
fn cap(n: usize) -> usize {
    n.min(1024)
}

// ---- meta ----

fn encode_meta(meta: &PackMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_string(&meta.source);
    out.put_string(&meta.graph);
    out
}

fn decode_meta(payload: &[u8]) -> Result<PackMeta> {
    let at = corrupt("meta");
    let mut c = Cursor::new(payload);
    let source = c.string().map_err(&at)?;
    let graph = c.string().map_err(&at)?;
    c.finish().map_err(&at)?;
    Ok(PackMeta { source, graph })
}

// ---- schema ----

const DOMAIN_CATEGORICAL: u8 = 0;
const DOMAIN_BINNED: u8 = 1;

fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u32(schema.len() as u32);
    for a in schema.attr_ids() {
        // lint:allow(no-panic-on-input): encode runs on the in-memory
        // engine being saved, not on pack bytes; `a` is the schema's own
        // iterator so the lookup cannot miss.
        let attr = schema.attr(a).expect("attr in range");
        out.put_string(&attr.name);
        if let Some(labels) = attr.domain.labels() {
            out.put_u8(DOMAIN_CATEGORICAL);
            out.put_u32(labels.len() as u32);
            for l in labels {
                out.put_string(l);
            }
        } else {
            // lint:allow(no-panic-on-input): a Domain is categorical or
            // binned by construction (labels() returned None just above),
            // and this is the trusted save path, not the parser.
            let edges = attr.domain.edges().expect("categorical or binned");
            out.put_u8(DOMAIN_BINNED);
            out.put_u32(edges.len() as u32);
            for &e in edges {
                out.put_f64_bits(e);
            }
        }
    }
    out
}

fn decode_schema(payload: &[u8]) -> Result<Schema> {
    let at = corrupt("schema");
    let mut c = Cursor::new(payload);
    let n = c.count(2).map_err(&at)?;
    let mut schema = Schema::new();
    for _ in 0..n {
        let name = c.string().map_err(&at)?;
        if schema.attr_by_name(&name).is_some() {
            // Schema::push panics on duplicates (library misuse); from a
            // file that's data corruption, so fail typed instead.
            return Err(StoreError::Corrupt {
                section: "schema",
                detail: format!("duplicate attribute name {name:?}"),
            });
        }
        let kind = c.u8().map_err(&at)?;
        let domain = match kind {
            DOMAIN_CATEGORICAL => {
                let n_labels = c.count(4).map_err(&at)?;
                let mut labels = Vec::with_capacity(cap(n_labels));
                for _ in 0..n_labels {
                    labels.push(c.string().map_err(&at)?);
                }
                Domain::categorical(labels)
            }
            DOMAIN_BINNED => {
                let n_edges = c.count(8).map_err(&at)?;
                let mut edges = Vec::with_capacity(n_edges);
                for _ in 0..n_edges {
                    edges.push(c.f64_bits().map_err(&at)?);
                }
                // Domain::binned asserts on malformed edges; check first
                // so corruption cannot panic.
                if edges.len() < 2
                    || edges
                        .windows(2)
                        .any(|w| !matches!(w[0].partial_cmp(&w[1]), Some(std::cmp::Ordering::Less)))
                {
                    return Err(StoreError::Corrupt {
                        section: "schema",
                        detail: format!("attribute {name:?} has malformed bin edges"),
                    });
                }
                Domain::binned(edges)
            }
            other => {
                return Err(StoreError::Corrupt {
                    section: "schema",
                    detail: format!("unknown domain kind {other}"),
                })
            }
        };
        schema.push(name, domain);
    }
    c.finish().map_err(&at)?;
    Ok(schema)
}

// ---- table ----

/// Bytes per cell for a domain of the given cardinality.
fn column_width(cardinality: usize) -> usize {
    if cardinality <= 1 << 8 {
        1
    } else if cardinality <= 1 << 16 {
        2
    } else {
        4
    }
}

fn encode_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64(table.n_rows() as u64);
    out.put_u32(table.n_attrs() as u32);
    for (i, col) in table.columns().iter().enumerate() {
        let card = table
            .schema()
            .cardinality(AttrId(i as u32))
            // lint:allow(no-panic-on-input): trusted save path; the column
            // index enumerates the table's own schema.
            .expect("attr in range");
        let width = column_width(card);
        out.put_u8(width as u8);
        match width {
            1 => out.extend(col.iter().map(|&v| v as u8)),
            2 => {
                for &v in col {
                    out.extend_from_slice(&(v as u16).to_le_bytes());
                }
            }
            _ => {
                for &v in col {
                    out.put_u32(v);
                }
            }
        }
    }
    out
}

fn decode_table(payload: &[u8], schema: Schema) -> Result<Table> {
    let at = corrupt("table");
    let mut c = Cursor::new(payload);
    let n_rows = c.u64().map_err(&at)?;
    let Ok(n_rows) = usize::try_from(n_rows) else {
        return Err(StoreError::Corrupt {
            section: "table",
            detail: format!("{n_rows} rows do not fit in memory"),
        });
    };
    let n_cols = c.count(1).map_err(&at)?;
    let mut columns = Vec::with_capacity(cap(n_cols));
    for _ in 0..n_cols {
        let width = c.u8().map_err(&at)? as usize;
        if !matches!(width, 1 | 2 | 4) {
            return Err(StoreError::Corrupt {
                section: "table",
                detail: format!("invalid column width {width}"),
            });
        }
        let bytes = c
            .take(n_rows.checked_mul(width).ok_or(StoreError::Corrupt {
                section: "table",
                detail: "column size overflows".into(),
            })?)
            .map_err(&at)?;
        let col: Vec<Value> = match width {
            1 => bytes.iter().map(|&b| Value::from(b)).collect(),
            2 => bytes
                .chunks_exact(2)
                .map(|b| Value::from(u16::from_le_bytes([b[0], b[1]])))
                .collect(),
            _ => bytes
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        };
        columns.push(col);
    }
    c.finish().map_err(&at)?;
    // from_columns re-validates arity and every code against its domain:
    // a table section that disagrees with the schema section is a
    // cross-section mismatch, not a usable table.
    Table::from_columns(schema, columns).map_err(|e| StoreError::Mismatch(e.to_string()))
}

// ---- graph ----

fn encode_graph(graph: Option<&causal::Dag>) -> Vec<u8> {
    let mut out = Vec::new();
    match graph {
        None => out.put_u8(0),
        Some(g) => {
            out.put_u8(1);
            out.put_u32(g.n_nodes() as u32);
            let edges = adjacency_preserving_edges(g);
            out.put_u32(edges.len() as u32);
            for (from, to) in edges {
                out.put_u32(from as u32);
                out.put_u32(to as u32);
            }
        }
    }
    out
}

/// Edges of `g` in an order whose `add_edge` replay reproduces the
/// donor's adjacency lists **exactly** — children and parents lists in
/// the same order, not just the same sets. The order of those lists is
/// observable: local-explanation back-off drops context attributes in
/// causal-proximity order, which walks `parents()` as stored, so a
/// restored engine must get byte-identical lists or its local answers
/// drift (a sorted edge dump loses the insertion order and did exactly
/// that).
///
/// Greedy merge: an edge is emittable when it is the next unconsumed
/// entry of both its source's children list and its target's parents
/// list. The donor's true insertion sequence satisfies both orders, so
/// whenever edges remain at least one is emittable (the σ-earliest
/// remaining edge always is) and the loop drains completely.
fn adjacency_preserving_edges(g: &causal::Dag) -> Vec<(usize, usize)> {
    let n = g.n_nodes();
    let mut child_pos = vec![0usize; n];
    let mut parent_pos = vec![0usize; n];
    let mut edges = Vec::with_capacity(g.n_edges());
    loop {
        let before = edges.len();
        for (from, pos) in child_pos.iter_mut().enumerate() {
            while let Some(&to) = g.children(from).get(*pos) {
                if g.parents(to).get(parent_pos[to]) != Some(&from) {
                    break;
                }
                edges.push((from, to));
                *pos += 1;
                parent_pos[to] += 1;
            }
        }
        if edges.len() == before {
            break;
        }
    }
    // a consistent Dag always drains; a hypothetical inconsistency must
    // still emit every edge (order no longer recoverable) rather than
    // silently truncate the graph
    if edges.len() < g.n_edges() {
        for (from, &pos) in child_pos.iter().enumerate() {
            for &to in &g.children(from)[pos..] {
                edges.push((from, to));
            }
        }
    }
    edges
}

fn decode_graph(payload: &[u8], n_attrs: usize) -> Result<Option<causal::Dag>> {
    let at = corrupt("graph");
    let mut c = Cursor::new(payload);
    let present = c.u8().map_err(&at)?;
    let graph = match present {
        0 => None,
        1 => {
            let n_nodes = c.u32().map_err(&at)? as usize;
            // The node count carries no per-node payload, so the
            // cursor's count() guard cannot bound it — check it against
            // the schema (engines require n_nodes ≤ attributes) before
            // Dag::new allocates adjacency lists for a crafted 4-billion
            // node graph.
            if n_nodes > n_attrs {
                return Err(StoreError::Corrupt {
                    section: "graph",
                    detail: format!("{n_nodes} nodes for a schema of {n_attrs} attributes"),
                });
            }
            let n_edges = c.count(8).map_err(&at)?;
            let mut g = causal::Dag::new(n_nodes);
            for _ in 0..n_edges {
                let from = c.u32().map_err(&at)? as usize;
                let to = c.u32().map_err(&at)? as usize;
                // out-of-range nodes and cycles are rejected by the Dag
                // itself; surface them as corruption, never a panic
                g.add_edge(from, to).map_err(|e| StoreError::Corrupt {
                    section: "graph",
                    detail: e.to_string(),
                })?;
            }
            Some(g)
        }
        other => {
            return Err(StoreError::Corrupt {
                section: "graph",
                detail: format!("invalid presence flag {other}"),
            })
        }
    };
    c.finish().map_err(&at)?;
    Ok(graph)
}

// ---- config ----

struct Config {
    pred: AttrId,
    positive: Value,
    alpha: f64,
    min_support: usize,
    cache_capacity: usize,
    features: Vec<AttrId>,
    shards: usize,
    index_enabled: bool,
    surrogates_flag: bool,
    surrogate_capacity: usize,
    /// v5 row-version watermark (`None` for pre-v5 packs, which predate
    /// live tables and are frozen at their base row count).
    watermark: Option<u64>,
}

fn encode_config(snapshot: &EngineSnapshot, index_enabled: bool, surrogates: bool) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u32(snapshot.pred.0);
    out.put_u32(snapshot.positive);
    out.put_f64_bits(snapshot.alpha);
    out.put_u64(snapshot.min_support as u64);
    out.put_u64(snapshot.cache_capacity as u64);
    out.put_u32_vec(&snapshot.features.iter().map(|a| a.0).collect::<Vec<_>>());
    // v2: the shard count rides at the end, so a v1 config is a strict
    // prefix of a v2 one
    out.put_u64(snapshot.shards as u64);
    // v3: the index-enabled flag rides after that, extending the prefix
    // property one more version
    out.put_u8(u8::from(index_enabled));
    // v4: the surrogates flag and the surrogate-cache capacity ride at
    // the end, extending the prefix property one more version
    out.put_u8(u8::from(surrogates));
    out.put_u64(snapshot.surrogate_capacity as u64);
    // v5: the row-version watermark rides last — base rows plus delta
    // rows, the logical size of the (possibly live) table being packed
    let delta_rows = snapshot.delta.as_ref().map_or(0, |d| d.n_rows() as u64);
    out.put_u64(snapshot.table.n_rows() as u64 + delta_rows);
    out
}

fn decode_config(payload: &[u8], version: u32) -> Result<Config> {
    let at = corrupt("config");
    let mut c = Cursor::new(payload);
    let pred = AttrId(c.u32().map_err(&at)?);
    let positive = c.u32().map_err(&at)?;
    let alpha = c.f64_bits().map_err(&at)?;
    let min_support = c.u64().map_err(&at)? as usize;
    let cache_capacity = c.u64().map_err(&at)? as usize;
    let features = c.u32_vec().map_err(&at)?.into_iter().map(AttrId).collect();
    // v1 predates sharding: those engines ran one contiguous pass
    let shards = if version >= 2 {
        let raw = c.u64().map_err(&at)?;
        // A pack's CRCs only catch *accidental* damage; a deliberately
        // crafted count would otherwise size per-pass allocations and
        // work, so anything outside the engine's legal range is
        // corruption — writers can never produce it (with_shards
        // clamps into the same range).
        if raw == 0 || raw > tabular::MAX_SHARDS as u64 {
            return Err(StoreError::Corrupt {
                section: "config",
                detail: format!("shard count {raw} outside [1, {}]", tabular::MAX_SHARDS),
            });
        }
        raw as usize
    } else {
        1
    };
    // v1/v2 predate bitmap indexes: those engines always scanned
    let index_enabled = if version >= 3 {
        match c.u8().map_err(&at)? {
            0 => false,
            1 => true,
            other => {
                return Err(StoreError::Corrupt {
                    section: "config",
                    detail: format!("invalid index flag {other}"),
                })
            }
        }
    } else {
        false
    };
    // v1–v3 predate the surrogate cache: those engines refit per query
    let (surrogates_flag, surrogate_capacity) = if version >= 4 {
        let flag = match c.u8().map_err(&at)? {
            0 => false,
            1 => true,
            other => {
                return Err(StoreError::Corrupt {
                    section: "config",
                    detail: format!("invalid surrogates flag {other}"),
                })
            }
        };
        (flag, c.u64().map_err(&at)? as usize)
    } else {
        (false, lewis_core::engine::DEFAULT_SURROGATE_CAPACITY)
    };
    // v1–v4 predate live tables: those packs are frozen at their base
    // row count, so there is no watermark to cross-check
    let watermark = if version >= 5 {
        Some(c.u64().map_err(&at)?)
    } else {
        None
    };
    c.finish().map_err(&at)?;
    Ok(Config {
        pred,
        positive,
        alpha,
        min_support,
        cache_capacity,
        features,
        shards,
        index_enabled,
        surrogates_flag,
        surrogate_capacity,
        watermark,
    })
}

// ---- orders ----

fn encode_orders(orders: &[Option<Vec<Value>>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u32(orders.len() as u32);
    for order in orders {
        match order {
            None => out.put_u8(0),
            Some(o) => {
                out.put_u8(1);
                out.put_u32_vec(o);
            }
        }
    }
    out
}

fn decode_orders(payload: &[u8]) -> Result<Vec<Option<Vec<Value>>>> {
    let at = corrupt("orders");
    let mut c = Cursor::new(payload);
    let n = c.count(1).map_err(&at)?;
    let mut orders = Vec::with_capacity(cap(n));
    for _ in 0..n {
        orders.push(match c.u8().map_err(&at)? {
            0 => None,
            1 => Some(c.u32_vec().map_err(&at)?),
            other => {
                return Err(StoreError::Corrupt {
                    section: "orders",
                    detail: format!("invalid presence flag {other}"),
                })
            }
        });
    }
    c.finish().map_err(&at)?;
    Ok(orders)
}

// ---- cache ----

fn encode_cache(cache: &CacheSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64(cache.hits);
    out.put_u64(cache.misses);
    out.put_u32(cache.passes.len() as u32);
    for pass in &cache.passes {
        out.put_u32_vec(&pass.xs.iter().map(|a| a.0).collect::<Vec<_>>());
        out.put_u32(pass.context.len() as u32);
        for (a, v) in pass.context.iter() {
            out.put_u32(a.0);
            out.put_u32(v);
        }
        out.put_u32_vec(&pass.c_set.iter().map(|a| a.0).collect::<Vec<_>>());
        out.put_u64(pass.total);
        out.put_u32(pass.cells.len() as u32);
        for cell in &pass.cells {
            out.put_u32_vec(&cell.key);
            out.put_u64(cell.rows);
            out.put_u32(cell.arms.len() as u32);
            for arm in &cell.arms {
                out.put_u32_vec(&arm.assignment);
                out.put_u64(arm.rows);
                out.put_u64(arm.positives);
            }
        }
    }
    out
}

fn decode_cache(payload: &[u8]) -> Result<CacheSnapshot> {
    let at = corrupt("cache");
    let mut c = Cursor::new(payload);
    let hits = c.u64().map_err(&at)?;
    let misses = c.u64().map_err(&at)?;
    let n_passes = c.count(4).map_err(&at)?;
    let mut passes = Vec::with_capacity(cap(n_passes));
    for _ in 0..n_passes {
        let xs: Vec<AttrId> = c.u32_vec().map_err(&at)?.into_iter().map(AttrId).collect();
        let n_ctx = c.count(8).map_err(&at)?;
        let mut context = Context::empty();
        for _ in 0..n_ctx {
            let a = AttrId(c.u32().map_err(&at)?);
            let v = c.u32().map_err(&at)?;
            context.set(a, v);
        }
        let c_set: Vec<AttrId> = c.u32_vec().map_err(&at)?.into_iter().map(AttrId).collect();
        let total = c.u64().map_err(&at)?;
        let n_cells = c.count(4).map_err(&at)?;
        let mut cells = Vec::with_capacity(cap(n_cells));
        for _ in 0..n_cells {
            let key = c.u32_vec().map_err(&at)?;
            let rows = c.u64().map_err(&at)?;
            let n_arms = c.count(4).map_err(&at)?;
            let mut arms = Vec::with_capacity(cap(n_arms));
            for _ in 0..n_arms {
                arms.push(ArmSnapshot {
                    assignment: c.u32_vec().map_err(&at)?,
                    rows: c.u64().map_err(&at)?,
                    positives: c.u64().map_err(&at)?,
                });
            }
            cells.push(CellSnapshot { key, rows, arms });
        }
        passes.push(PassSnapshot {
            xs,
            context,
            c_set,
            total,
            cells,
        });
    }
    c.finish().map_err(&at)?;
    Ok(CacheSnapshot {
        hits,
        misses,
        passes,
    })
}

// ---- surrogates ----

fn encode_surrogates(surrogates: &SurrogateCacheSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u64(surrogates.hits);
    out.put_u64(surrogates.misses);
    out.put_u32(surrogates.fits.len() as u32);
    for fit in &surrogates.fits {
        out.put_u32_vec(&fit.actionable.iter().map(|a| a.0).collect::<Vec<_>>());
        out.put_f64_bits(fit.intercept);
        out.put_u32(fit.coefficients.len() as u32);
        for &w in &fit.coefficients {
            out.put_f64_bits(w);
        }
        out.put_u32(fit.orders.len() as u32);
        for order in &fit.orders {
            out.put_u32_vec(order);
        }
    }
    out
}

fn decode_surrogates(payload: &[u8]) -> Result<SurrogateCacheSnapshot> {
    let at = corrupt("surrogates");
    let mut c = Cursor::new(payload);
    let hits = c.u64().map_err(&at)?;
    let misses = c.u64().map_err(&at)?;
    let n_fits = c.count(4).map_err(&at)?;
    let mut fits = Vec::with_capacity(cap(n_fits));
    for _ in 0..n_fits {
        let actionable: Vec<AttrId> = c.u32_vec().map_err(&at)?.into_iter().map(AttrId).collect();
        let intercept = c.f64_bits().map_err(&at)?;
        let n_coefs = c.count(8).map_err(&at)?;
        let mut coefficients = Vec::with_capacity(n_coefs);
        for _ in 0..n_coefs {
            coefficients.push(c.f64_bits().map_err(&at)?);
        }
        let n_orders = c.count(4).map_err(&at)?;
        let mut orders = Vec::with_capacity(cap(n_orders));
        for _ in 0..n_orders {
            orders.push(c.u32_vec().map_err(&at)?);
        }
        fits.push(SurrogateSnapshot {
            actionable,
            intercept,
            coefficients,
            orders,
        });
    }
    c.finish().map_err(&at)?;
    Ok(SurrogateCacheSnapshot { hits, misses, fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lewis_core::ExplainRequest;

    fn tiny_engine() -> Engine {
        let mut schema = Schema::new();
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("pred", Domain::boolean());
        let mut table = Table::new(schema);
        for row in [[0, 0], [0, 0], [0, 1], [1, 1], [1, 1], [1, 0]] {
            table.push_row(&row).unwrap();
        }
        Engine::builder(table)
            .prediction(AttrId(1), 1)
            .features(&[AttrId(0)])
            .shards(3)
            // pinned off regardless of LEWIS_TEST_INDEX: these tests
            // exercise the unindexed pack shape specifically
            .index(false)
            .build()
            .unwrap()
    }

    /// Regression: a graph whose edges were inserted out of sorted
    /// order must round-trip with its adjacency **lists** intact, not
    /// just its edge set — local-explanation back-off walks `parents()`
    /// in stored order, so a sorted re-emit silently changed restored
    /// engines' local answers.
    #[test]
    fn graph_round_trips_preserve_adjacency_order() {
        let mut g = causal::Dag::new(5);
        // node 4's parents arrive as [3, 0, 2]; node 3's as [1, 0]
        g.add_edge(3, 4).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(0, 4).unwrap();
        g.add_edge(0, 3).unwrap();
        g.add_edge(2, 4).unwrap();
        assert_eq!(g.parents(4), &[3, 0, 2], "the fixture is out of order");
        let decoded = decode_graph(&encode_graph(Some(&g)), 5)
            .unwrap()
            .expect("graph present");
        for node in 0..5 {
            assert_eq!(decoded.parents(node), g.parents(node), "parents of {node}");
            assert_eq!(
                decoded.children(node),
                g.children(node),
                "children of {node}"
            );
        }
    }

    /// Re-emit a pack byte stream with `version` in the header and the
    /// config section's payload passed through `rewrite` (all other
    /// sections are copied verbatim, CRCs recomputed) — the one place
    /// the tests below encode the section framing.
    fn rewrite_config(bytes: &[u8], version: u32, rewrite: impl Fn(Vec<u8>) -> Vec<u8>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.put_u32(version);
        let mut pos = MAGIC.len() + 4;
        while pos < bytes.len() {
            let tag = bytes[pos];
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let mut payload = bytes[pos + 9..pos + 9 + len].to_vec();
            if tag == TAG_CONFIG {
                payload = rewrite(payload);
            }
            write_section(&mut out, tag, payload);
            pos += 9 + len + 4;
        }
        out
    }

    /// Overwrite the shard count of a v5 config payload (it sits just
    /// before the trailing index flag, surrogates flag, surrogate
    /// capacity and row-version watermark).
    fn with_shard_count(count: u64) -> impl Fn(Vec<u8>) -> Vec<u8> {
        move |mut payload: Vec<u8>| {
            let n = payload.len();
            payload[n - 26..n - 18].copy_from_slice(&count.to_le_bytes());
            payload
        }
    }

    #[test]
    fn v5_packs_round_trip_the_shard_count() {
        let engine = tiny_engine();
        let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), 3, "pack must carry the shard layout");
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn v1_packs_still_read_and_restore_with_one_shard() {
        let engine = tiny_engine();
        let v5 = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // v1 configs are a strict prefix of v5 ones: drop the trailing
        // watermark, surrogate fields, index flag and shard count and
        // stamp the old version
        let v1 = rewrite_config(&v5, 1, |payload| {
            let keep = payload.len() - 26;
            payload[..keep].to_vec()
        });
        let (restored, _) = Pack::from_bytes(&v1).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), 1, "v1 engines ran one contiguous pass");
        assert!(!restored.index_enabled(), "v1 engines always scanned");
        // and the answers still match (shard count never changes results)
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn v2_packs_still_read_and_restore_without_an_index() {
        let engine = tiny_engine();
        let v5 = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // v2 configs are a strict prefix of v5 ones: drop the trailing
        // watermark, surrogate fields and index flag and stamp the old
        // version
        let v2 = rewrite_config(&v5, 2, |payload| {
            let keep = payload.len() - 18;
            payload[..keep].to_vec()
        });
        let (restored, _) = Pack::from_bytes(&v2).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), 3, "v2 packs carry the shard layout");
        assert!(!restored.index_enabled(), "v2 engines always scanned");
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn v3_packs_still_read_and_restore_with_a_cold_surrogate_cache() {
        let engine = tiny_engine();
        // warm a surrogate so the v4 writer would have carried it — the
        // v3 rewrite must drop it cleanly
        engine.prepare_surrogate(&[AttrId(0)]).unwrap();
        let v5 = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // v3 configs are a strict prefix of v5 ones: drop the trailing
        // watermark and surrogates flag + capacity and stamp the old
        // version (also drop the v4-only surrogates section — v3
        // readers never wrote one)
        let v3 = rewrite_config(&strip_section(&v5, TAG_SURROGATES), 3, |payload| {
            let keep = payload.len() - 17;
            payload[..keep].to_vec()
        });
        let (restored, _) = Pack::from_bytes(&v3).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), 3, "v3 packs carry the shard layout");
        let s = restored.surrogate_stats();
        assert_eq!(s.entries, 0, "v3 engines predate the surrogate cache");
        assert_eq!(
            s.capacity,
            lewis_core::engine::DEFAULT_SURROGATE_CAPACITY,
            "pre-v4 packs restore at the default surrogate capacity"
        );
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Re-emit a pack byte stream without the sections carrying `tag`
    /// (CRCs of the surviving sections are copied verbatim).
    fn strip_section(bytes: &[u8], strip: u8) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&bytes[..MAGIC.len() + 4]);
        let mut pos = MAGIC.len() + 4;
        while pos < bytes.len() {
            let tag = bytes[pos];
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let end = pos + 9 + len + 4;
            if tag != strip {
                out.extend_from_slice(&bytes[pos..end]);
            }
            pos = end;
        }
        out
    }

    #[test]
    fn warm_surrogates_round_trip_and_skip_the_refit() {
        let engine = tiny_engine();
        engine.prepare_surrogate(&[AttrId(0)]).unwrap();
        let donor_stats = engine.surrogate_stats();
        assert_eq!((donor_stats.entries, donor_stats.misses), (1, 1));
        let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(
            sizes.iter().any(|&(name, n)| name == "surrogates" && n > 0),
            "warm packs must carry a surrogates section: {sizes:?}"
        );
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        let s = restored.surrogate_stats();
        assert_eq!(s.entries, 1, "the warm fit must arrive resident");
        assert_eq!(s.misses, donor_stats.misses, "counters continue");
        // a recourse query over the warm set must hit, not refit
        let before = restored.surrogate_stats();
        let r = restored.run(&ExplainRequest::Recourse {
            row: vec![0, 0],
            actionable: vec![AttrId(0)],
            opts: Default::default(),
        });
        let after = restored.surrogate_stats();
        assert_eq!(after.misses, before.misses, "warm set must not refit");
        assert_eq!(after.hits, before.hits + 1);
        // and the answer matches the donor's, error or not
        let d = engine.run(&ExplainRequest::Recourse {
            row: vec![0, 0],
            actionable: vec![AttrId(0)],
            opts: Default::default(),
        });
        assert_eq!(format!("{d:?}"), format!("{r:?}"));
    }

    #[test]
    fn stripped_surrogate_packs_refit_lazily() {
        let engine = tiny_engine();
        engine.prepare_surrogate(&[AttrId(0)]).unwrap();
        let mut pack = Pack::from_engine(&engine, PackMeta::default());
        pack.strip_surrogates();
        let bytes = pack.to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(
            !sizes.iter().any(|&(name, _)| name == "surrogates"),
            "stripped packs must omit the surrogates section: {sizes:?}"
        );
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert_eq!(restored.surrogate_stats().entries, 0);
        // the flag without a section means lazy refit, not an error:
        // the first recourse query fits fresh
        let _ = restored.run(&ExplainRequest::Recourse {
            row: vec![0, 0],
            actionable: vec![AttrId(0)],
            opts: Default::default(),
        });
        assert_eq!(restored.surrogate_stats().entries, 1);
    }

    #[test]
    fn surrogate_section_without_the_flag_is_a_mismatch() {
        let engine = tiny_engine();
        engine.prepare_surrogate(&[AttrId(0)]).unwrap();
        let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // clear the config's surrogates flag while keeping the section
        let cleared = rewrite_config(&bytes, FORMAT_VERSION, |mut payload| {
            let n = payload.len();
            payload[n - 17] = 0;
            payload
        });
        assert!(
            matches!(Pack::from_bytes(&cleared), Err(StoreError::Mismatch(_))),
            "a surrogates section the config does not announce must be a mismatch"
        );
    }

    #[test]
    fn foreign_surrogates_are_a_mismatch() {
        let engine = tiny_engine();
        engine.prepare_surrogate(&[AttrId(0)]).unwrap();
        let mut pack = Pack::from_engine(&engine, PackMeta::default());
        // widen the warm fit beyond this engine's layout: a surrogate
        // fitted against some other schema must never be served
        pack.snapshot.surrogates.fits[0].coefficients.push(0.25);
        let bytes = pack.to_bytes();
        assert!(
            matches!(Pack::from_bytes(&bytes), Err(StoreError::Mismatch(m)) if m.contains("surrogate")),
            "a foreign-width surrogate must be a mismatch"
        );
    }

    fn indexed_engine() -> Engine {
        let mut schema = Schema::new();
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("pred", Domain::boolean());
        let mut table = Table::new(schema);
        for row in [[0, 0], [0, 0], [0, 1], [1, 1], [1, 1], [1, 0]] {
            table.push_row(&row).unwrap();
        }
        Engine::builder(table)
            .prediction(AttrId(1), 1)
            .features(&[AttrId(0)])
            .shards(2)
            .index(true)
            .build()
            .unwrap()
    }

    #[test]
    fn v3_packs_round_trip_the_bitmap_index() {
        let engine = indexed_engine();
        let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(
            sizes.iter().any(|&(name, n)| name == "index" && n > 0),
            "indexed packs must carry an index section: {sizes:?}"
        );
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert!(restored.index_enabled(), "index must arrive installed");
        assert_eq!(restored.index_memory_bytes(), engine.index_memory_bytes());
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn stripped_index_packs_rebuild_the_index_on_read() {
        let engine = indexed_engine();
        let mut pack = Pack::from_engine(&engine, PackMeta::default());
        pack.strip_index();
        let bytes = pack.to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(
            !sizes.iter().any(|&(name, _)| name == "index"),
            "stripped packs must omit the index section: {sizes:?}"
        );
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert!(
            restored.index_enabled(),
            "the config flag without a section must rebuild from the table"
        );
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn unindexed_packs_omit_the_index_section() {
        let bytes = Pack::from_engine(&tiny_engine(), PackMeta::default()).to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(!sizes.iter().any(|&(name, _)| name == "index"));
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert!(!restored.index_enabled());
    }

    #[test]
    fn v4_packs_still_read_and_restore_frozen() {
        let engine = tiny_engine();
        let v5 = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // v4 configs are a strict prefix of v5 ones: drop the trailing
        // watermark and stamp the old version
        let v4 = rewrite_config(&v5, 4, |payload| {
            let keep = payload.len() - 8;
            payload[..keep].to_vec()
        });
        let (restored, _) = Pack::from_bytes(&v4).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), 3, "v4 packs carry the shard layout");
        assert_eq!(restored.delta_rows(), 0, "v4 packs predate live tables");
        let a = engine.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// `tiny_engine` with three rows appended as a live delta shard.
    fn live_engine() -> Engine {
        let engine = tiny_engine();
        let mut delta = Table::new(engine.table().schema().clone());
        let mut appended = Vec::new();
        for row in [[1, 1], [0, 0], [1, 0]] {
            delta.push_row(&row).unwrap();
            appended.push(row.to_vec());
        }
        engine.with_delta(Arc::new(delta), &appended).unwrap()
    }

    #[test]
    fn v5_packs_round_trip_a_live_engine_mid_stream() {
        let live = live_engine();
        let _ = live.run(&ExplainRequest::Global).unwrap();
        let bytes = Pack::from_engine(&live, PackMeta::default()).to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(
            sizes.iter().any(|&(name, n)| name == "delta" && n > 0),
            "live packs must carry a delta section: {sizes:?}"
        );
        let (version, watermark) = version_info(&bytes).unwrap();
        assert_eq!(version, FORMAT_VERSION);
        assert_eq!(watermark, Some(9), "watermark = 6 base + 3 delta rows");
        let (restored, _) = Pack::from_bytes(&bytes).unwrap().restore_engine().unwrap();
        assert_eq!(restored.delta_rows(), 3, "the stream resumes mid-delta");
        assert_eq!(restored.total_rows(), 9);
        let a = live.run(&ExplainRequest::Global).unwrap();
        let b = restored.run(&ExplainRequest::Global).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn frozen_packs_omit_the_delta_section_and_record_the_base_watermark() {
        let bytes = Pack::from_engine(&tiny_engine(), PackMeta::default()).to_bytes();
        let sizes = section_sizes(&bytes).unwrap();
        assert!(!sizes.iter().any(|&(name, _)| name == "delta"));
        assert_eq!(version_info(&bytes).unwrap(), (FORMAT_VERSION, Some(6)));
    }

    #[test]
    fn watermark_disagreeing_with_the_sections_is_a_mismatch() {
        let bytes = Pack::from_engine(&live_engine(), PackMeta::default()).to_bytes();
        let tampered = rewrite_config(&bytes, FORMAT_VERSION, |mut payload| {
            let n = payload.len();
            payload[n - 8..].copy_from_slice(&999u64.to_le_bytes());
            payload
        });
        assert!(
            matches!(
                Pack::from_bytes(&tampered),
                Err(StoreError::Mismatch(m)) if m.contains("watermark")
            ),
            "a tampered watermark must be a mismatch"
        );
    }

    #[test]
    fn delta_sections_in_pre_v5_packs_are_a_mismatch() {
        let bytes = Pack::from_engine(&live_engine(), PackMeta::default()).to_bytes();
        // stamp v4 (dropping the watermark so the config parses) while
        // leaving the delta section in place — no v4 writer ever
        // produced one, so the pairing can only be crafted
        let v4 = rewrite_config(&bytes, 4, |payload| {
            let keep = payload.len() - 8;
            payload[..keep].to_vec()
        });
        assert!(matches!(
            Pack::from_bytes(&v4),
            Err(StoreError::Mismatch(_))
        ));
    }

    #[test]
    fn out_of_range_shard_counts_are_corrupt_not_clamped() {
        let engine = tiny_engine();
        let bytes = Pack::from_engine(&engine, PackMeta::default()).to_bytes();
        // rewrite the config section's shard count with each hostile
        // value: zero, just past the cap, and an allocation-amplifier
        // sized count — all with valid CRCs, so only the range check
        // stands between the file and the engine
        for hostile in [0u64, tabular::MAX_SHARDS as u64 + 1, 1 << 61, u64::MAX] {
            let out = rewrite_config(&bytes, FORMAT_VERSION, with_shard_count(hostile));
            assert!(
                matches!(
                    Pack::from_bytes(&out),
                    Err(StoreError::Corrupt {
                        section: "config",
                        ..
                    })
                ),
                "shard count {hostile} must be rejected as corruption"
            );
        }
        // the legal maximum itself still reads fine
        let out = rewrite_config(
            &bytes,
            FORMAT_VERSION,
            with_shard_count(tabular::MAX_SHARDS as u64),
        );
        let (restored, _) = Pack::from_bytes(&out).unwrap().restore_engine().unwrap();
        assert_eq!(restored.shards(), tabular::MAX_SHARDS);
    }
}
