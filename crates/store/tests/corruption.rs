//! Pack corruption coverage: every defect class yields its own typed
//! [`StoreError`], and no corruption — not a single byte, anywhere —
//! can make the reader panic or hand back an engine built from bad
//! data.

use lewis_core::{Engine, ExplainRequest};
use lewis_store::{Pack, PackMeta, StoreError, FORMAT_VERSION};
use proptest::prelude::*;
use tabular::{AttrId, Domain, Schema, Table};

/// A small but structurally rich engine: categorical + binned domains,
/// a causal graph, and a warm cache with several resident passes.
fn donor() -> Engine {
    let mut schema = Schema::new();
    schema.push("status", Domain::categorical(["bad", "ok", "good"]));
    schema.push("age", Domain::binned(vec![0.0, 30.0, 60.0, 99.0]));
    schema.push("savings", Domain::boolean());
    schema.push("pred", Domain::boolean());
    let mut t = Table::new(schema);
    // deterministic pseudo-random fill
    let mut x = 9u32;
    for _ in 0..400 {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        let status = (x >> 3) % 3;
        let age = (x >> 7) % 3;
        let savings = (x >> 11) % 2;
        let pred = u32::from(status + savings >= 2);
        t.push_row(&[status, age, savings, pred]).unwrap();
    }
    let mut g = causal::Dag::new(3);
    g.add_edge(0, 2).unwrap();
    let engine = Engine::builder(t)
        .graph(&g)
        .prediction(AttrId(3), 1)
        .features(&[AttrId(0), AttrId(1), AttrId(2)])
        // pinned off regardless of LEWIS_TEST_INDEX: these tests reason
        // about the unindexed pack layout; indexed_donor covers the rest
        .index(false)
        .build()
        .unwrap();
    // warm: several distinct passes resident
    let _ = engine.run(&ExplainRequest::Global).unwrap();
    let _ = engine
        .run(&ExplainRequest::ContextualGlobal {
            k: tabular::Context::of([(AttrId(2), 1)]),
        })
        .unwrap();
    assert!(engine.cache_stats().entries >= 3);
    engine
}

fn donor_bytes() -> Vec<u8> {
    Pack::from_engine(
        &donor(),
        PackMeta {
            source: "test:donor".into(),
            graph: "handmade dag".into(),
        },
    )
    .to_bytes()
}

#[test]
fn truncation_at_every_prefix_is_typed() {
    // The cache (tag 7), index (tag 8) and surrogates (tag 9) sections
    // are optional by design, so a prefix ending exactly where one
    // starts parses as a pack without it (an index-enabled config
    // rebuilds from the table; a surrogates-flagged config refits
    // lazily). Locate those boundaries by walking the section headers.
    for bytes in [
        donor_bytes(),
        indexed_donor_bytes(),
        surrogate_donor_bytes(),
    ] {
        let mut optional_boundaries = Vec::new();
        let mut pos = 12usize;
        while pos < bytes.len() {
            let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
            if bytes[pos] == 7 || bytes[pos] == 8 || bytes[pos] == 9 {
                optional_boundaries.push(pos);
            }
            pos = pos + 1 + 8 + len + 4;
        }
        assert!(
            !optional_boundaries.is_empty(),
            "donor pack carries an optional section"
        );

        // every other strict prefix must fail with a *typed* error,
        // never panic, and never produce a pack
        for cut in 0..bytes.len() {
            match Pack::from_bytes(&bytes[..cut]) {
                Ok(pack) => {
                    assert!(
                        optional_boundaries.contains(&cut),
                        "unexpected parse at cut {cut}"
                    );
                    // whatever survived must still restore cleanly
                    pack.restore_engine().unwrap();
                }
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::BadMagic
                    | StoreError::MissingSection { .. },
                ) => {}
                Err(other) => panic!("prefix of {cut} bytes: unexpected {other:?}"),
            }
        }
        // the full file still parses
        assert!(Pack::from_bytes(&bytes).is_ok());
    }
}

#[test]
fn flipped_checksum_byte_is_a_checksum_mismatch() {
    let mut bytes = donor_bytes();
    // the first section starts right after the 12-byte header:
    // tag(1) + len(8) + payload(len) + crc(4) — flip a crc byte
    let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
    let crc_at = 12 + 1 + 8 + len;
    bytes[crc_at] ^= 0xFF;
    match Pack::from_bytes(&bytes).unwrap_err() {
        StoreError::ChecksumMismatch { section } => assert_eq!(section, "meta"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_is_a_checksum_mismatch() {
    let mut bytes = donor_bytes();
    bytes[12 + 1 + 8] ^= 0x01; // first payload byte of the meta section
    assert!(matches!(
        Pack::from_bytes(&bytes).unwrap_err(),
        StoreError::ChecksumMismatch { section: "meta" }
    ));
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = donor_bytes();
    bytes[0] ^= 0x20;
    assert_eq!(Pack::from_bytes(&bytes).unwrap_err(), StoreError::BadMagic);
    // entirely foreign files too
    assert_eq!(
        Pack::from_bytes(b"PK\x03\x04 definitely a zip file").unwrap_err(),
        StoreError::BadMagic
    );
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = donor_bytes();
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&future);
    assert_eq!(
        Pack::from_bytes(&bytes).unwrap_err(),
        StoreError::UnsupportedVersion {
            found: FORMAT_VERSION + 1,
            supported: FORMAT_VERSION
        }
    );
}

#[test]
fn missing_and_duplicate_sections_are_typed() {
    let bytes = donor_bytes();
    // drop everything after the header: first missing section is meta
    assert!(matches!(
        Pack::from_bytes(&bytes[..12]).unwrap_err(),
        StoreError::MissingSection { section: "meta" }
    ));
    // duplicate the first section wholesale
    let len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
    let section_end = 12 + 1 + 8 + len + 4;
    let mut dup = bytes.clone();
    dup.extend_from_slice(&bytes[12..section_end]);
    assert!(matches!(
        Pack::from_bytes(&dup).unwrap_err(),
        StoreError::DuplicateSection { section: "meta" }
    ));
}

#[test]
fn schema_mismatch_on_restore_is_typed() {
    // a snapshot whose cache/config disagree with the (valid) table —
    // build it by pairing the donor's sections with a doctored snapshot
    let engine = donor();
    let mut pack = Pack::from_engine(&engine, PackMeta::default());

    // features pointing outside the schema
    let mut bad = pack.clone();
    bad.snapshot.features = vec![AttrId(99)];
    bad.snapshot.orders = vec![None; bad.snapshot.table.schema().len()];
    let err = Pack::from_bytes(&bad.to_bytes())
        .unwrap()
        .restore_engine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");

    // a value order that is not a permutation of its domain
    let mut bad = pack.clone();
    bad.snapshot.orders[0] = Some(vec![0, 0, 1]);
    let err = Pack::from_bytes(&bad.to_bytes())
        .unwrap()
        .restore_engine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");

    // a cache pass with counts that cannot come from this table
    if let Some(pass) = pack.snapshot.cache.passes.first_mut() {
        pass.total = pass.total.wrapping_add(7);
        let err = Pack::from_bytes(&pack.to_bytes())
            .unwrap()
            .restore_engine()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");
    }
}

#[test]
fn crafted_giant_graph_section_is_rejected_without_allocating() {
    // CRC is an integrity check, not a MAC: an attacker can re-checksum
    // a doctored section. A graph section announcing 2^32-1 nodes must
    // fail typed *before* Dag::new allocates ~200 GB of adjacency lists.
    let bytes = donor_bytes();
    let mut out = bytes[..12].to_vec();
    let mut pos = 12usize;
    while pos < bytes.len() {
        let tag = bytes[pos];
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        let end = pos + 1 + 8 + len + 4;
        if tag == 4 {
            // replace the graph payload: present=1, n_nodes=u32::MAX,
            // n_edges=0, with a freshly computed (valid!) CRC-32
            let mut payload = vec![1u8];
            payload.extend_from_slice(&u32::MAX.to_le_bytes());
            payload.extend_from_slice(&0u32.to_le_bytes());
            out.push(4);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            let crc = {
                // IEEE CRC-32, same as the writer
                let mut crc = 0xFFFF_FFFFu32;
                for &b in &payload {
                    crc ^= u32::from(b);
                    for _ in 0..8 {
                        crc = if crc & 1 != 0 {
                            (crc >> 1) ^ 0xEDB8_8320
                        } else {
                            crc >> 1
                        };
                    }
                }
                !crc
            };
            out.extend_from_slice(&payload);
            out.extend_from_slice(&crc.to_le_bytes());
        } else {
            out.extend_from_slice(&bytes[pos..end]);
        }
        pos = end;
    }
    match Pack::from_bytes(&out).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, detail } => {
            assert_eq!(section, "graph");
            assert!(detail.contains("4294967295"), "{detail}");
        }
        other => panic!("expected Corrupt graph, got {other:?}"),
    }
}

#[test]
fn overflowing_cache_counts_fail_typed_not_wrapping() {
    // u64::MAX + 2 wraps to 1 — a crafted pass whose cell total
    // "checks out" after wraparound must still be rejected (the sums
    // are checked_add on restore), in debug and release alike.
    let engine = donor();
    let mut pack = Pack::from_engine(&engine, PackMeta::default());
    let pass = pack
        .snapshot
        .cache
        .passes
        .iter_mut()
        .find(|p| p.cells.iter().any(|c| c.arms.len() >= 2))
        .expect("donor has a multi-arm pass");
    let cell = pass
        .cells
        .iter_mut()
        .find(|c| c.arms.len() >= 2)
        .expect("multi-arm cell");
    cell.arms[0].rows = u64::MAX;
    cell.arms[0].positives = 0;
    cell.arms[1].rows = 2;
    cell.arms[1].positives = 0;
    cell.rows = 1; // what the wrapped sum would be
    let err = Pack::from_bytes(&pack.to_bytes())
        .unwrap()
        .restore_engine()
        .map(|_| ())
        .unwrap_err();
    match err {
        StoreError::Mismatch(detail) => {
            assert!(detail.contains("overflow"), "{detail}")
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn cache_counts_exceeding_the_table_are_rejected() {
    // internally consistent counts that still cannot come from this
    // table (more rows than the table has) must not restore
    let engine = donor();
    let mut pack = Pack::from_engine(&engine, PackMeta::default());
    let n_rows = pack.snapshot.table.n_rows() as u64;
    let pass = pack.snapshot.cache.passes.first_mut().unwrap();
    for cell in &mut pass.cells {
        for arm in &mut cell.arms {
            arm.rows += n_rows;
        }
        cell.rows += n_rows * cell.arms.len() as u64;
    }
    pass.total = pass.cells.iter().map(|c| c.rows).sum();
    let err = Pack::from_bytes(&pack.to_bytes())
        .unwrap()
        .restore_engine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");
}

/// The donor again, but carrying the v3 bitmap-index section.
fn indexed_donor() -> Engine {
    let mut schema = Schema::new();
    schema.push("status", Domain::categorical(["bad", "ok", "good"]));
    schema.push("age", Domain::binned(vec![0.0, 30.0, 60.0, 99.0]));
    schema.push("savings", Domain::boolean());
    schema.push("pred", Domain::boolean());
    let mut t = Table::new(schema);
    let mut x = 9u32;
    for _ in 0..400 {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        let status = (x >> 3) % 3;
        let age = (x >> 7) % 3;
        let savings = (x >> 11) % 2;
        let pred = u32::from(status + savings >= 2);
        t.push_row(&[status, age, savings, pred]).unwrap();
    }
    let engine = Engine::builder(t)
        .prediction(AttrId(3), 1)
        .features(&[AttrId(0), AttrId(1), AttrId(2)])
        .shards(3)
        .index(true)
        .build()
        .unwrap();
    let _ = engine.run(&ExplainRequest::Global).unwrap();
    engine
}

fn indexed_donor_bytes() -> Vec<u8> {
    Pack::from_engine(&indexed_donor(), PackMeta::default()).to_bytes()
}

/// IEEE CRC-32, matching the pack writer — crafted sections get valid
/// checksums so corruption reaches the *decoder*, not the CRC check.
fn crc32(payload: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in payload {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Rewrite the section with `tag`: `None` removes it wholesale,
/// `Some(payload)` swaps the payload in with a freshly valid CRC.
fn rewrite_section(bytes: &[u8], tag: u8, payload: Option<&[u8]>) -> Vec<u8> {
    let mut out = bytes[..12].to_vec();
    let mut pos = 12usize;
    let mut found = false;
    while pos < bytes.len() {
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        let end = pos + 1 + 8 + len + 4;
        if bytes[pos] == tag {
            found = true;
            if let Some(payload) = payload {
                out.push(tag);
                out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                out.extend_from_slice(payload);
                out.extend_from_slice(&crc32(payload).to_le_bytes());
            }
        } else {
            out.extend_from_slice(&bytes[pos..end]);
        }
        pos = end;
    }
    assert!(found, "donor pack lacks section tag {tag}");
    out
}

/// Return the payload of the section with `tag`.
fn section_payload(bytes: &[u8], tag: u8) -> Vec<u8> {
    let mut pos = 12usize;
    while pos < bytes.len() {
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        if bytes[pos] == tag {
            return bytes[pos + 9..pos + 9 + len].to_vec();
        }
        pos = pos + 1 + 8 + len + 4;
    }
    panic!("donor pack lacks section tag {tag}");
}

const TAG_CONFIG: u8 = 5;
const TAG_INDEX: u8 = 8;
const TAG_SURROGATES: u8 = 9;

/// The donor again, with a warm recourse-surrogate cache so the pack
/// carries the v4 surrogates section.
fn surrogate_donor() -> Engine {
    let engine = donor();
    engine.prepare_surrogate(&[AttrId(0)]).unwrap();
    engine.prepare_surrogate(&[AttrId(0), AttrId(2)]).unwrap();
    engine
}

fn surrogate_donor_bytes() -> Vec<u8> {
    Pack::from_engine(&surrogate_donor(), PackMeta::default()).to_bytes()
}

#[test]
fn flipped_surrogate_payload_byte_is_a_checksum_mismatch() {
    let bytes = surrogate_donor_bytes();
    let mut pos = 12usize;
    loop {
        assert!(pos < bytes.len(), "donor pack lacks a surrogates section");
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        if bytes[pos] == TAG_SURROGATES {
            let mut corrupt = bytes.clone();
            corrupt[pos + 9 + len / 2] ^= 0x10;
            assert!(matches!(
                Pack::from_bytes(&corrupt).unwrap_err(),
                StoreError::ChecksumMismatch {
                    section: "surrogates"
                }
            ));
            return;
        }
        pos = pos + 1 + 8 + len + 4;
    }
}

#[test]
fn truncated_surrogate_payload_with_valid_crc_is_corrupt() {
    // chop the tail off the surrogates payload and re-checksum: the CRC
    // passes, so the codec's cursor bounds must catch it
    let bytes = surrogate_donor_bytes();
    let payload = section_payload(&bytes, TAG_SURROGATES);
    for cut in [payload.len() - 1, payload.len() - 8, 0] {
        let short = rewrite_section(&bytes, TAG_SURROGATES, Some(&payload[..cut]));
        match Pack::from_bytes(&short).map(|_| ()).unwrap_err() {
            StoreError::Corrupt { section, .. } => assert_eq!(section, "surrogates"),
            other => panic!("cut {cut}: expected Corrupt surrogates, got {other:?}"),
        }
    }
}

#[test]
fn crafted_giant_surrogate_header_is_rejected_without_allocating() {
    // a re-checksummed surrogates section announcing u32::MAX fits must
    // die typed in the codec's element-size accounting, not OOM
    let bytes = surrogate_donor_bytes();
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes()); // hits
    payload.extend_from_slice(&0u64.to_le_bytes()); // misses
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // n_fits
    let crafted = rewrite_section(&bytes, TAG_SURROGATES, Some(&payload));
    match Pack::from_bytes(&crafted).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, .. } => assert_eq!(section, "surrogates"),
        other => panic!("expected Corrupt surrogates, got {other:?}"),
    }
}

#[test]
fn foreign_schema_surrogate_section_is_a_mismatch() {
    // a structurally valid surrogates section fitted against some other
    // engine: transplant the warm section into a pack whose config does
    // not announce it, and into one whose schema gives it a different
    // coefficient width
    let warm = surrogate_donor_bytes();
    let cold = donor_bytes();
    // splice the warm surrogates section into the cold pack (its config
    // flag says "no surrogates"): self-contradictory → Mismatch
    let warm_payload = section_payload(&warm, TAG_SURROGATES);
    let mut spliced = cold.clone();
    spliced.push(TAG_SURROGATES);
    spliced.extend_from_slice(&(warm_payload.len() as u64).to_le_bytes());
    spliced.extend_from_slice(&warm_payload);
    spliced.extend_from_slice(&crc32(&warm_payload).to_le_bytes());
    let err = Pack::from_bytes(&spliced).map(|_| ()).unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");
}

#[test]
fn flipped_index_payload_byte_is_a_checksum_mismatch() {
    let bytes = indexed_donor_bytes();
    // locate the index section and flip a payload byte
    let mut pos = 12usize;
    loop {
        assert!(pos < bytes.len(), "donor pack lacks an index section");
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap()) as usize;
        if bytes[pos] == TAG_INDEX {
            let mut corrupt = bytes.clone();
            corrupt[pos + 9 + len / 2] ^= 0x10;
            assert!(matches!(
                Pack::from_bytes(&corrupt).unwrap_err(),
                StoreError::ChecksumMismatch { section: "index" }
            ));
            return;
        }
        pos = pos + 1 + 8 + len + 4;
    }
}

#[test]
fn crafted_giant_index_header_is_rejected_without_allocating() {
    // a re-checksummed index section announcing max shards over zero
    // rows with wide cardinalities would demand millions of bitmap
    // allocations; it must die typed in the codec's pre-allocation
    // sizing, not OOM
    let bytes = indexed_donor_bytes();
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes()); // n_rows
    payload.extend_from_slice(&1024u32.to_le_bytes()); // n_shards
    payload.extend_from_slice(&2u32.to_le_bytes()); // n_attrs
    payload.extend_from_slice(&1000u32.to_le_bytes());
    payload.extend_from_slice(&1000u32.to_le_bytes());
    let crafted = rewrite_section(&bytes, TAG_INDEX, Some(&payload));
    match Pack::from_bytes(&crafted).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, detail } => {
            assert_eq!(section, "index");
            assert!(detail.contains("bitmaps"), "{detail}");
        }
        other => panic!("expected Corrupt index, got {other:?}"),
    }
}

#[test]
fn truncated_index_payload_with_valid_crc_is_corrupt() {
    // chop the tail off the index payload and re-checksum: the CRC
    // passes, so the codec's header-vs-length check must catch it
    let bytes = indexed_donor_bytes();
    let payload = section_payload(&bytes, TAG_INDEX);
    let cut = rewrite_section(&bytes, TAG_INDEX, Some(&payload[..payload.len() - 8]));
    match Pack::from_bytes(&cut).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, detail } => {
            assert_eq!(section, "index");
            assert!(detail.contains("header declares"), "{detail}");
        }
        other => panic!("expected Corrupt index, got {other:?}"),
    }
}

#[test]
fn index_of_a_different_table_is_a_mismatch() {
    // a structurally valid index whose dimensions disagree with the
    // table: swap in the index of a thinner table, re-checksummed
    let bytes = indexed_donor_bytes();
    let mut schema = Schema::new();
    schema.push("a", Domain::boolean());
    schema.push("pred", Domain::boolean());
    let mut t = Table::new(schema);
    for i in 0..10u32 {
        t.push_row(&[i % 2, (i / 2) % 2]).unwrap();
    }
    let foreign = lewis_index::TableIndex::build(&t, 3).unwrap();
    let swapped = rewrite_section(&bytes, TAG_INDEX, Some(&foreign.to_bytes()));
    let err = Pack::from_bytes(&swapped).map(|_| ()).unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err:?}");
}

/// Offset of the index flag from the end of a v5 config payload: the
/// surrogates flag (1 byte), surrogate capacity (8 bytes) and row-version
/// watermark (8 bytes) trail it.
const INDEX_FLAG_FROM_END: usize = 18;

#[test]
fn index_section_with_the_flag_off_is_a_mismatch() {
    // flip the config's index-enabled byte to 0 (re-CRC'd) while the
    // index section stays: the pack contradicts itself
    let bytes = indexed_donor_bytes();
    let mut config = section_payload(&bytes, TAG_CONFIG);
    let at = config.len() - INDEX_FLAG_FROM_END;
    assert_eq!(config[at], 1, "donor config has the index flag set");
    config[at] = 0;
    let contradicted = rewrite_section(&bytes, TAG_CONFIG, Some(&config));
    match Pack::from_bytes(&contradicted).map(|_| ()).unwrap_err() {
        StoreError::Mismatch(detail) => {
            assert!(detail.contains("disables the index"), "{detail}")
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

#[test]
fn invalid_index_flag_byte_is_corrupt() {
    let bytes = indexed_donor_bytes();
    let mut config = section_payload(&bytes, TAG_CONFIG);
    let at = config.len() - INDEX_FLAG_FROM_END;
    config[at] = 7; // neither 0 nor 1
    let bad = rewrite_section(&bytes, TAG_CONFIG, Some(&config));
    match Pack::from_bytes(&bad).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, detail } => {
            assert_eq!(section, "config");
            assert!(detail.contains("index flag"), "{detail}");
        }
        other => panic!("expected Corrupt config, got {other:?}"),
    }
}

#[test]
fn invalid_surrogates_flag_byte_is_corrupt() {
    let bytes = donor_bytes();
    let mut config = section_payload(&bytes, TAG_CONFIG);
    let at = config.len() - 17; // before the trailing capacity + watermark
    config[at] = 3; // neither 0 nor 1
    let bad = rewrite_section(&bytes, TAG_CONFIG, Some(&config));
    match Pack::from_bytes(&bad).map(|_| ()).unwrap_err() {
        StoreError::Corrupt { section, detail } => {
            assert_eq!(section, "config");
            assert!(detail.contains("surrogates flag"), "{detail}");
        }
        other => panic!("expected Corrupt config, got {other:?}"),
    }
}

#[test]
fn dropping_the_index_section_still_restores_an_indexed_engine() {
    // flag on, section gone (e.g. written by `strip_index`): the reader
    // rebuilds the index from the table — answers identical, bit for bit
    let donor = indexed_donor();
    let bytes = Pack::from_engine(&donor, PackMeta::default()).to_bytes();
    let stripped = rewrite_section(&bytes, TAG_INDEX, None);
    let (restored, _) = Pack::from_bytes(&stripped)
        .unwrap()
        .restore_engine()
        .unwrap();
    assert!(restored.index_enabled(), "rebuilt from the table");
    assert_eq!(
        format!("{:?}", restored.run(&ExplainRequest::Global).unwrap()),
        format!("{:?}", donor.run(&ExplainRequest::Global).unwrap()),
    );
}

#[test]
fn round_trip_is_lossless() {
    let engine = donor();
    let meta = PackMeta {
        source: "test:donor".into(),
        graph: "handmade dag".into(),
    };
    let pack = Pack::from_engine(&engine, meta.clone());
    let bytes = pack.to_bytes();
    let back = Pack::from_bytes(&bytes).unwrap();
    assert_eq!(back.meta, meta);
    assert_eq!(*back.snapshot.table, *pack.snapshot.table);
    assert_eq!(
        back.snapshot.graph.as_deref(),
        pack.snapshot.graph.as_deref()
    );
    assert_eq!(back.snapshot.orders, pack.snapshot.orders);
    assert_eq!(back.snapshot.cache, pack.snapshot.cache);
    assert_eq!(back.snapshot.alpha.to_bits(), pack.snapshot.alpha.to_bits());
    // and the re-serialization is byte-identical (deterministic format)
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn strip_cache_restores_a_cold_engine() {
    let engine = donor();
    let mut pack = Pack::from_engine(&engine, PackMeta::default());
    pack.strip_cache();
    let (cold, _) = Pack::from_bytes(&pack.to_bytes())
        .unwrap()
        .restore_engine()
        .unwrap();
    assert_eq!(cold.cache_stats().entries, 0);
    // still answers identically, it just re-scans
    assert_eq!(
        format!("{:?}", cold.run(&ExplainRequest::Global).unwrap()),
        format!("{:?}", engine.run(&ExplainRequest::Global).unwrap()),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single flipped byte anywhere in the file either leaves the
    /// pack readable (flips in dead header space cannot happen — every
    /// byte is covered by magic, version, section headers or checksums)
    /// or yields a typed error. It must never panic, and a "successful"
    /// parse after corruption is only acceptable if it decodes to the
    /// donor's exact content (e.g. flipping a bit that the CRC itself
    /// compensates — impossible for single flips, so success means the
    /// reader caught nothing because nothing material changed).
    #[test]
    fn single_byte_corruption_never_panics(
        offset in 0usize..=usize::MAX,
        flip in 1u8..=255u8,
    ) {
        // cache the donor bytes across cases via a thread-local
        thread_local! {
            static BYTES: Vec<u8> = donor_bytes();
        }
        BYTES.with(|bytes| {
            let mut corrupted = bytes.clone();
            let at = offset % corrupted.len();
            corrupted[at] ^= flip;
            match Pack::from_bytes(&corrupted) {
                // CRC-32 detects all single-byte flips in payloads;
                // header flips hit magic/version/len/tag checks. A
                // clean parse is impossible because every byte of the
                // file is load-bearing.
                Ok(_) => prop_assert!(false, "corruption at {at} went unnoticed"),
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::MissingSection { .. }
                    | StoreError::DuplicateSection { .. }
                    | StoreError::Mismatch(_),
                ) => {}
                Err(other) => prop_assert!(false, "untyped failure at {at}: {other:?}"),
            }
            Ok(())
        })?;
    }

    /// The same guarantee for packs carrying the v4 surrogates section:
    /// every byte (coefficient bits included) is covered by a checksum
    /// or a header check, so single flips never pass and never panic.
    #[test]
    fn single_byte_corruption_of_surrogate_packs_never_panics(
        offset in 0usize..=usize::MAX,
        flip in 1u8..=255u8,
    ) {
        thread_local! {
            static BYTES: Vec<u8> = surrogate_donor_bytes();
        }
        BYTES.with(|bytes| {
            let mut corrupted = bytes.clone();
            let at = offset % corrupted.len();
            corrupted[at] ^= flip;
            match Pack::from_bytes(&corrupted) {
                Ok(_) => prop_assert!(false, "corruption at {at} went unnoticed"),
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::MissingSection { .. }
                    | StoreError::DuplicateSection { .. }
                    | StoreError::Mismatch(_),
                ) => {}
                Err(other) => prop_assert!(false, "untyped failure at {at}: {other:?}"),
            }
            Ok(())
        })?;
    }

    /// The same guarantee for v3 packs carrying the bitmap-index
    /// section: every byte (index words included) is covered by a
    /// checksum or a header check, so single flips never pass and
    /// never panic.
    #[test]
    fn single_byte_corruption_of_indexed_packs_never_panics(
        offset in 0usize..=usize::MAX,
        flip in 1u8..=255u8,
    ) {
        thread_local! {
            static BYTES: Vec<u8> = indexed_donor_bytes();
        }
        BYTES.with(|bytes| {
            let mut corrupted = bytes.clone();
            let at = offset % corrupted.len();
            corrupted[at] ^= flip;
            match Pack::from_bytes(&corrupted) {
                Ok(_) => prop_assert!(false, "corruption at {at} went unnoticed"),
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::MissingSection { .. }
                    | StoreError::DuplicateSection { .. }
                    | StoreError::Mismatch(_),
                ) => {}
                Err(other) => prop_assert!(false, "untyped failure at {at}: {other:?}"),
            }
            Ok(())
        })?;
    }
}
