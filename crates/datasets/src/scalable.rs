//! Parametric graphs for the recourse scalability experiment (§5.5).
//!
//! The paper scales recourse to "a causal graph with 100 variables" with
//! 5→100 actionable variables. This generator builds a star-shaped SCM:
//! two demographic roots, `n_actionable` binary actionable variables
//! influenced by the first root, and a binary outcome driven by all
//! actionable variables with slowly decaying weights — so every
//! actionable variable is marginally useful and the IP has real choices
//! to make.

use crate::mech::{noisy_logistic, uniform};
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema, Value};

/// Generator for the scalable recourse benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ScalableDataset {
    n_actionable: usize,
}

impl ScalableDataset {
    /// First demographic root.
    pub const ROOT_A: AttrId = AttrId(0);
    /// Second demographic root.
    pub const ROOT_B: AttrId = AttrId(1);

    /// Build a generator with `n_actionable` actionable variables
    /// (total graph size = `n_actionable + 3`).
    pub fn new(n_actionable: usize) -> Self {
        assert!(n_actionable >= 1);
        ScalableDataset { n_actionable }
    }

    /// Number of actionable variables.
    pub fn n_actionable(&self) -> usize {
        self.n_actionable
    }

    /// The id of the i-th actionable variable.
    pub fn actionable_attr(&self, i: usize) -> AttrId {
        assert!(i < self.n_actionable);
        AttrId(2 + i as u32)
    }

    /// The outcome attribute.
    pub fn outcome_attr(&self) -> AttrId {
        AttrId(2 + self.n_actionable as u32)
    }

    /// The schema.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        s.push("root_a", Domain::boolean());
        s.push("root_b", Domain::boolean());
        for i in 0..self.n_actionable {
            s.push(format!("action_{i}"), Domain::boolean());
        }
        s.push("outcome", Domain::boolean());
        s
    }

    /// The ground-truth SCM.
    pub fn scm(&self) -> Scm {
        let mut b = ScmBuilder::new(self.schema());
        b.mechanism(0, Mechanism::root(vec![0.5, 0.5])).unwrap();
        b.mechanism(1, Mechanism::root(vec![0.6, 0.4])).unwrap();
        for i in 0..self.n_actionable {
            let node = 2 + i;
            b.edge(0, node).unwrap();
            // mildly root-influenced coin
            b.mechanism(node, noisy_logistic(vec![0.6], -0.5, 8))
                .unwrap();
        }
        let out = 2 + self.n_actionable;
        for i in 0..self.n_actionable {
            b.edge(2 + i, out).unwrap();
        }
        b.edge(1, out).unwrap();
        let n = self.n_actionable;
        // decaying weights; the threshold scales so roughly a third of
        // the weight mass must be "on" for a positive outcome
        let weights: Vec<f64> = (0..n).map(|i| 2.0 / (1.0 + i as f64 * 0.08)).collect();
        let total: f64 = weights.iter().sum();
        let bias = -0.40 * total;
        b.mechanism(
            out,
            Mechanism::with_noise(uniform(16), move |pa: &[Value], u| {
                // parents: action_0..action_{n-1}, root_b
                let z: f64 = weights
                    .iter()
                    .zip(pa)
                    .map(|(w, &p)| w * f64::from(p))
                    .sum::<f64>()
                    + 0.5 * f64::from(pa[n])
                    + bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let t = (u as f64 + 0.5) / 16.0;
                Value::from(p > t)
            }),
        )
        .unwrap();
        b.build().expect("scalable SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed.
    pub fn generate(&self, n_rows: usize, seed: u64) -> Dataset {
        let actionable = (0..self.n_actionable)
            .map(|i| self.actionable_attr(i))
            .collect();
        Dataset::from_scm(
            "scalable",
            self.scm(),
            n_rows,
            seed,
            self.outcome_attr(),
            actionable,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn graph_size_scales() {
        for n in [5, 25, 100] {
            let d = ScalableDataset::new(n);
            let scm = d.scm();
            assert_eq!(scm.graph().n_nodes(), n + 3);
            assert_eq!(d.actionable_attr(0), AttrId(2));
            assert_eq!(d.outcome_attr(), AttrId(2 + n as u32));
        }
    }

    #[test]
    fn outcome_is_balanced_and_responsive() {
        let d = ScalableDataset::new(10).generate(5000, 12);
        let rate = d.table.probability(&Context::of([(d.outcome, 1)]));
        assert!((0.15..0.85).contains(&rate), "positive rate {rate}");
        // flipping action_0 raises the positive rate
        let p0 = d
            .table
            .conditional_probability(d.outcome, 1, &Context::of([(AttrId(2), 0)]), 0.0)
            .unwrap();
        let p1 = d
            .table
            .conditional_probability(d.outcome, 1, &Context::of([(AttrId(2), 1)]), 0.0)
            .unwrap();
        assert!(p1 > p0 + 0.05, "action effect {p0} -> {p1}");
    }

    #[test]
    fn hundred_variable_graph_generates() {
        let d = ScalableDataset::new(100).generate(2000, 13);
        assert_eq!(d.table.schema().len(), 103);
        assert_eq!(d.actionable.len(), 100);
    }
}
