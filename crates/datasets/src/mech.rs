//! Reusable structural-equation building blocks.
//!
//! All mechanisms use the *inverse-CDF trick* to stay deterministic in a
//! finite uniform noise level `u ∈ {0..K−1}`: a latent score is computed
//! from the parents, the noise picks a quantile threshold, and the output
//! is read off the comparison. This preserves the SCM contract (worlds
//! are deterministic given noise) while producing realistically noisy
//! marginals — and keeps logistic mechanisms *monotone per noise level*,
//! matching the paper's Proposition 4.2 setting.

use causal::Mechanism;
use tabular::Value;

/// A uniform prior over `k` noise levels.
pub fn uniform(k: usize) -> Vec<f64> {
    vec![1.0 / k as f64; k]
}

/// Binary mechanism with `Pr(1 | pa) ≈ sigmoid(bias + Σ wᵢ·paᵢ)`
/// quantized over `k` noise levels. Monotone in every parent whose
/// weight is positive.
pub fn noisy_logistic(weights: Vec<f64>, bias: f64, k: usize) -> Mechanism {
    assert!(k >= 1);
    Mechanism::with_noise(uniform(k), move |pa, u| {
        let z: f64 = bias
            + weights
                .iter()
                .zip(pa)
                .map(|(w, &p)| w * f64::from(p))
                .sum::<f64>();
        let p = 1.0 / (1.0 + (-z).exp());
        let t = (u as f64 + 0.5) / k as f64;
        Value::from(p > t)
    })
}

/// Ordinal mechanism: latent = `bias + Σ wᵢ·paᵢ + jitter(u)`, output =
/// number of `cutpoints` the latent exceeds (so cardinality =
/// `cutpoints.len() + 1`). Jitter spreads noise levels uniformly over
/// `[−jitter, +jitter]`.
pub fn noisy_ordinal(
    weights: Vec<f64>,
    bias: f64,
    cutpoints: Vec<f64>,
    jitter: f64,
    k: usize,
) -> Mechanism {
    assert!(k >= 1);
    assert!(
        cutpoints.windows(2).all(|w| w[0] < w[1]),
        "cutpoints must be ascending"
    );
    Mechanism::with_noise(uniform(k), move |pa, u| {
        let base: f64 = bias
            + weights
                .iter()
                .zip(pa)
                .map(|(w, &p)| w * f64::from(p))
                .sum::<f64>();
        let noise = if k == 1 {
            0.0
        } else {
            (u as f64 / (k - 1) as f64 - 0.5) * 2.0 * jitter
        };
        let z = base + noise;
        cutpoints.iter().filter(|&&c| z > c).count() as Value
    })
}

/// A latent score in `[0, 1]` quantized into `n_bins` equal bins —
/// used for regression-style outcomes (German-syn's credit score).
/// The caller's `score` maps parent codes to `[0, 1]`; noise adds a
/// uniform offset in `[−jitter, +jitter]` before clamping.
pub fn noisy_score(
    score: impl Fn(&[Value]) -> f64 + Send + Sync + 'static,
    jitter: f64,
    n_bins: usize,
    k: usize,
) -> Mechanism {
    assert!(n_bins >= 1 && k >= 1);
    Mechanism::with_noise(uniform(k), move |pa, u| {
        let noise = if k == 1 {
            0.0
        } else {
            (u as f64 / (k - 1) as f64 - 0.5) * 2.0 * jitter
        };
        let z = (score(pa) + noise).clamp(0.0, 1.0 - 1e-9);
        (z * n_bins as f64) as Value
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_rates_track_sigmoid() {
        let m = noisy_logistic(vec![2.0], -1.0, 100);
        // Pr(1 | pa = 1) ≈ sigmoid(1) ≈ 0.731
        let ones = (0..100).filter(|&u| (m.func)(&[1], u) == 1).count() as f64 / 100.0;
        assert!((ones - 0.731).abs() < 0.02, "rate {ones}");
        // monotone per level: pa=1 never below pa=0
        for u in 0..100 {
            assert!((m.func)(&[1], u) >= (m.func)(&[0], u));
        }
    }

    #[test]
    fn ordinal_covers_all_levels() {
        let m = noisy_ordinal(vec![1.0], 0.0, vec![0.5, 1.5], 1.0, 9);
        let mut seen = [false; 3];
        for pa in 0..3u32 {
            for u in 0..9 {
                let v = (m.func)(&[pa], u);
                assert!(v < 3);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn score_bins_in_range() {
        let m = noisy_score(|pa| f64::from(pa[0]) / 3.0, 0.2, 10, 7);
        for pa in 0..4u32 {
            for u in 0..7 {
                assert!((m.func)(&[pa], u) < 10);
            }
        }
        // higher parent ⇒ (weakly) higher score per level
        for u in 0..7 {
            assert!((m.func)(&[3], u) >= (m.func)(&[0], u));
        }
    }

    #[test]
    fn uniform_prior_sums_to_one() {
        let p = uniform(7);
        assert_eq!(p.len(), 7);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
