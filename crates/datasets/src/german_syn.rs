//! German-syn: the paper's fully synthetic German variant (§5.1, §5.5).
//!
//! Six attributes following the German causal graph: Age and Sex are
//! roots that influence Status, Saving and Housing; the outcome is a
//! **continuous credit score in [0, 1]** (binned to 10 levels) produced
//! by a known structural equation — so ground-truth explanation scores
//! are computable exactly via Pearl's three-step procedure (Fig. 11).
//! Crucially, Age and Sex have *no direct edge* to the score: methods
//! that capture only correlation rank them near zero, LEWIS must rank
//! them through their indirect influence (Fig. 11a).
//!
//! The [`GermanSynDataset::non_monotone`] variant adds a direct,
//! deliberately non-monotone Age effect to stress Proposition 4.2's
//! monotonicity assumption (§5.5).

use crate::mech::{noisy_ordinal, noisy_score};
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema, Value};

/// Generator for German-syn. Construct with [`GermanSynDataset::standard`]
/// or [`GermanSynDataset::non_monotone`].
#[derive(Debug, Clone, Copy)]
pub struct GermanSynDataset {
    /// Strength of the direct non-monotone Age→score effect (0 = the
    /// paper's standard monotone model).
    violation_strength: f64,
}

impl GermanSynDataset {
    /// Age band.
    pub const AGE: AttrId = AttrId(0);
    /// Sex.
    pub const SEX: AttrId = AttrId(1);
    /// Checking-account status.
    pub const STATUS: AttrId = AttrId(2);
    /// Savings bracket.
    pub const SAVING: AttrId = AttrId(3);
    /// Housing situation.
    pub const HOUSING: AttrId = AttrId(4);
    /// Credit score, binned into 10 levels of [0, 1].
    pub const SCORE: AttrId = AttrId(5);

    /// Number of score bins.
    pub const SCORE_BINS: usize = 10;

    /// The paper's standard (monotone) model.
    pub fn standard() -> Self {
        GermanSynDataset {
            violation_strength: 0.0,
        }
    }

    /// A variant whose Age affects the score directly and
    /// non-monotonically with the given strength (≥ 0); used for the
    /// §5.5 robustness experiment.
    pub fn non_monotone(violation_strength: f64) -> Self {
        assert!(violation_strength >= 0.0);
        GermanSynDataset { violation_strength }
    }

    /// The schema.
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("age", Domain::categorical(["young", "adult", "senior"]));
        s.push("sex", Domain::categorical(["female", "male"]));
        s.push(
            "status",
            Domain::categorical(["<0 DM", "0-200 DM", ">200 DM", "salary"]),
        );
        s.push(
            "saving",
            Domain::categorical(["<100", "100-500", "500-1000", ">1000"]),
        );
        s.push("housing", Domain::categorical(["free", "rent", "own"]));
        s.push(
            "score",
            Domain::binned((0..=Self::SCORE_BINS).map(|i| i as f64 / 10.0).collect()),
        );
        s
    }

    /// The ground-truth SCM for this variant.
    pub fn scm(&self) -> Scm {
        let mut b = ScmBuilder::new(Self::schema());
        let e = |b: &mut ScmBuilder, from: AttrId, to: AttrId| {
            b.edge(from.index(), to.index())
                .expect("acyclic by construction");
        };
        b.mechanism(Self::AGE.index(), Mechanism::root(vec![0.25, 0.5, 0.25]))
            .unwrap();
        b.mechanism(Self::SEX.index(), Mechanism::root(vec![0.45, 0.55]))
            .unwrap();
        // status <- age, sex. Jitter is chosen wide enough that every
        // status level has positive probability in every (age, sex)
        // stratum — the estimators need positivity/overlap, matching the
        // real data the paper uses.
        e(&mut b, Self::AGE, Self::STATUS);
        e(&mut b, Self::SEX, Self::STATUS);
        b.mechanism(
            Self::STATUS.index(),
            noisy_ordinal(vec![0.8, 0.3], 0.0, vec![0.5, 1.3, 2.1], 2.3, 7),
        )
        .unwrap();
        // saving <- age, sex
        e(&mut b, Self::AGE, Self::SAVING);
        e(&mut b, Self::SEX, Self::SAVING);
        b.mechanism(
            Self::SAVING.index(),
            noisy_ordinal(vec![0.7, 0.2], 0.0, vec![0.5, 1.3, 2.1], 2.3, 7),
        )
        .unwrap();
        // housing <- age
        e(&mut b, Self::AGE, Self::HOUSING);
        b.mechanism(
            Self::HOUSING.index(),
            noisy_ordinal(vec![0.6], 0.2, vec![0.5, 1.1], 1.4, 5),
        )
        .unwrap();
        // score <- status, saving, housing (+ optionally a direct
        // non-monotone age term)
        e(&mut b, Self::STATUS, Self::SCORE);
        e(&mut b, Self::SAVING, Self::SCORE);
        e(&mut b, Self::HOUSING, Self::SCORE);
        let strength = self.violation_strength;
        if strength > 0.0 {
            e(&mut b, Self::AGE, Self::SCORE);
            // parent order: status, saving, housing, age
            b.mechanism(
                Self::SCORE.index(),
                noisy_score(
                    move |pa: &[Value]| {
                        let base = 0.42 * f64::from(pa[0]) / 3.0
                            + 0.33 * f64::from(pa[1]) / 3.0
                            + 0.18 * f64::from(pa[2]) / 2.0;
                        // non-monotone: adults gain, seniors lose
                        let bump = match pa[3] {
                            1 => strength,
                            2 => -strength,
                            _ => 0.0,
                        };
                        (base + 0.05 + bump).clamp(0.0, 1.0)
                    },
                    0.06,
                    Self::SCORE_BINS,
                    5,
                ),
            )
            .unwrap();
        } else {
            b.mechanism(
                Self::SCORE.index(),
                noisy_score(
                    |pa: &[Value]| {
                        0.42 * f64::from(pa[0]) / 3.0
                            + 0.33 * f64::from(pa[1]) / 3.0
                            + 0.18 * f64::from(pa[2]) / 2.0
                            + 0.05
                    },
                    0.06,
                    Self::SCORE_BINS,
                    5,
                ),
            )
            .unwrap();
        }
        b.build().expect("German-syn SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed.
    pub fn generate(&self, n_rows: usize, seed: u64) -> Dataset {
        Dataset::from_scm(
            "german-syn",
            self.scm(),
            n_rows,
            seed,
            Self::SCORE,
            vec![Self::STATUS, Self::SAVING, Self::HOUSING],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn noise_space_is_exactly_enumerable() {
        let scm = GermanSynDataset::standard().scm();
        // 3·2·7·7·5·5 = 7350 joint noise assignments
        assert_eq!(scm.noise_space_size(), 7350);
        assert!(causal::CounterfactualEngine::exact(&scm).is_ok());
    }

    #[test]
    fn every_stratum_supports_every_mediator_value() {
        // positivity: the estimators require P(x | parents) > 0 for all
        // combinations — check empirically on a large sample
        let d = GermanSynDataset::standard().generate(30_000, 3);
        for (attr, card) in [
            (GermanSynDataset::STATUS, 4usize),
            (GermanSynDataset::SAVING, 4),
            (GermanSynDataset::HOUSING, 3),
        ] {
            for age in 0..3u32 {
                for sex in 0..2u32 {
                    for v in 0..card as u32 {
                        let ctx = Context::of([
                            (GermanSynDataset::AGE, age),
                            (GermanSynDataset::SEX, sex),
                            (attr, v),
                        ]);
                        assert!(
                            d.table.count(&ctx) > 0,
                            "no support for {attr}={v} in stratum (age={age}, sex={sex})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn age_and_sex_have_no_direct_score_edge_in_standard() {
        let scm = GermanSynDataset::standard().scm();
        let g = scm.graph();
        assert!(!g.has_edge(
            GermanSynDataset::AGE.index(),
            GermanSynDataset::SCORE.index()
        ));
        assert!(!g.has_edge(
            GermanSynDataset::SEX.index(),
            GermanSynDataset::SCORE.index()
        ));
        assert!(g.is_ancestor(
            GermanSynDataset::AGE.index(),
            GermanSynDataset::SCORE.index()
        ));
        // the violating variant adds the direct edge
        let scm_v = GermanSynDataset::non_monotone(0.2).scm();
        assert!(scm_v.graph().has_edge(
            GermanSynDataset::AGE.index(),
            GermanSynDataset::SCORE.index()
        ));
    }

    #[test]
    fn score_spans_both_halves() {
        let d = GermanSynDataset::standard().generate(5000, 9);
        // thresholding at bin 5 (score 0.5) must give a non-degenerate task
        let mut high = 0usize;
        for &v in d.table.column(GermanSynDataset::SCORE).unwrap() {
            if v >= 5 {
                high += 1;
            }
        }
        let rate = high as f64 / d.table.n_rows() as f64;
        assert!((0.1..0.9).contains(&rate), "high-score rate {rate}");
    }

    #[test]
    fn status_monotonically_raises_score() {
        let d = GermanSynDataset::standard().generate(8000, 10);
        let mean_score = |status: u32| {
            let rows = d
                .table
                .filter(&Context::of([(GermanSynDataset::STATUS, status)]));
            let col = d.table.column(GermanSynDataset::SCORE).unwrap();
            rows.iter().map(|&r| f64::from(col[r])).sum::<f64>() / rows.len().max(1) as f64
        };
        assert!(mean_score(3) > mean_score(0) + 1.0);
    }

    #[test]
    fn violation_strength_changes_age_effect() {
        let strong = GermanSynDataset::non_monotone(0.25).generate(8000, 11);
        let mean_by_age = |d: &Dataset, age: u32| {
            let rows = d.table.filter(&Context::of([(GermanSynDataset::AGE, age)]));
            let col = d.table.column(GermanSynDataset::SCORE).unwrap();
            rows.iter().map(|&r| f64::from(col[r])).sum::<f64>() / rows.len().max(1) as f64
        };
        let adult = mean_by_age(&strong, 1);
        let senior = mean_by_age(&strong, 2);
        // non-monotone: seniors fall below adults despite better
        // mediators
        assert!(adult > senior, "adult {adult} vs senior {senior}");
    }
}
