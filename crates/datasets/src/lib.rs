//! # datasets — SCM-based synthetic benchmark data
//!
//! The paper evaluates on four UCI/ProPublica datasets plus a synthetic
//! German variant. Real data is unavailable offline, so each dataset is
//! *simulated*: a structural causal model with the published causal
//! diagram (Chiappa 2019 for Adult/German; Nabi & Shpitser 2018 for
//! COMPAS; §5.2's description for Drug), realistic marginals, and effect
//! directions matching the domain intuitions the paper's analysis leans
//! on. Each module exposes the schema, the causal graph, a seeded
//! generator, and the ground-truth SCM (so estimators can be validated
//! exactly — something the real data could never offer).
//!
//! | module | paper dataset | rows (paper) | attrs |
//! |---|---|---|---|
//! | [`german`] | UCI German credit | 1k | 20 |
//! | [`adult`] | UCI Adult income | 48k | 14 |
//! | [`compas`] | ProPublica COMPAS | 5.2k | 7 |
//! | [`drug`] | UCI drug consumption | 1.9k | 13 |
//! | [`german_syn`] | German-syn (§5.1) | 10k | 6 |
//! | [`scalable`] | recourse scalability graph (§5.5) | any | parameterized |

pub mod adult;
pub mod compas;
pub mod drug;
pub mod german;
pub mod german_syn;
pub mod mech;
pub mod scalable;
pub mod scaled_syn;

pub use adult::AdultDataset;
pub use compas::CompasDataset;
pub use drug::DrugDataset;
pub use german::GermanDataset;
pub use german_syn::GermanSynDataset;
pub use scalable::ScalableDataset;
pub use scaled_syn::german_syn_scaled;

/// A generated dataset bundle: schema-bearing table, the SCM that
/// produced it, and bookkeeping about attribute roles.
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// The generated observational table (no prediction column yet).
    pub table: tabular::Table,
    /// The generating structural causal model (ground truth).
    pub scm: causal::Scm,
    /// The outcome attribute the prediction task targets.
    pub outcome: tabular::AttrId,
    /// The attributes used as model features.
    pub features: Vec<tabular::AttrId>,
    /// Actionable attributes for recourse experiments (empty when the
    /// paper performs no recourse on this dataset, e.g. COMPAS).
    pub actionable: Vec<tabular::AttrId>,
}

impl Dataset {
    /// Generate the bundle from an SCM plus role metadata.
    pub(crate) fn from_scm(
        name: &'static str,
        scm: causal::Scm,
        n_rows: usize,
        seed: u64,
        outcome: tabular::AttrId,
        actionable: Vec<tabular::AttrId>,
    ) -> Dataset {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = scm.generate(n_rows, &mut rng);
        let features = table
            .schema()
            .attr_ids()
            .filter(|&a| a != outcome)
            .collect();
        Dataset {
            name,
            table,
            scm,
            outcome,
            features,
            actionable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    /// Every dataset generates, has a sane outcome balance, an acyclic
    /// graph aligned with its schema, and deterministic seeding.
    #[test]
    fn all_datasets_generate_sane_data() {
        let bundles: Vec<Dataset> = vec![
            GermanDataset::generate(1000, 1),
            AdultDataset::generate(2000, 1),
            CompasDataset::generate(1500, 1),
            DrugDataset::generate(1500, 1),
            GermanSynDataset::standard().generate(2000, 1),
            ScalableDataset::new(20).generate(1000, 1),
        ];
        for d in &bundles {
            assert!(d.table.n_rows() > 0, "{}: empty table", d.name);
            assert_eq!(
                d.scm.graph().n_nodes(),
                d.table.schema().len(),
                "{}: graph/schema mismatch",
                d.name
            );
            assert!(
                !d.features.contains(&d.outcome),
                "{}: outcome leaked",
                d.name
            );
            // outcome balance: not degenerate
            let card = d.table.schema().cardinality(d.outcome).unwrap();
            let mut rates = Vec::new();
            for v in 0..card as u32 {
                let rate = d.table.probability(&Context::of([(d.outcome, v)]));
                rates.push(rate);
            }
            let max_rate = rates.iter().cloned().fold(0.0, f64::max);
            assert!(
                max_rate < 0.97,
                "{}: outcome degenerate, rates {rates:?}",
                d.name
            );
            // actionable attrs are features
            for &a in &d.actionable {
                assert!(
                    d.features.contains(&a),
                    "{}: actionable non-feature",
                    d.name
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GermanDataset::generate(200, 7);
        let b = GermanDataset::generate(200, 7);
        assert_eq!(a.table, b.table);
        let c = GermanDataset::generate(200, 8);
        assert_ne!(a.table, c.table);
    }
}
