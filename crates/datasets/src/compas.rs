//! Synthetic COMPAS data (ProPublica substitute).
//!
//! Offender attributes plus **two** outcome columns: the COMPAS
//! software's risk score (the proprietary decile, binarized high/low —
//! the paper's "Software score" target for Figs. 3c, 4c/d, 9c) and the
//! actual two-year recidivism flag. The score mechanism encodes the
//! documented bias: race shifts the baseline so that prior/juvenile
//! counts push Black defendants past the high-risk threshold more easily
//! than White defendants (the Fig. 4c/d sufficiency gap).

use crate::mech::{noisy_logistic, noisy_ordinal};
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema};

/// Generator for the synthetic COMPAS dataset.
pub struct CompasDataset;

impl CompasDataset {
    /// Age category.
    pub const AGE_CAT: AttrId = AttrId(0);
    /// Race (White / Black, as in the ProPublica analysis).
    pub const RACE: AttrId = AttrId(1);
    /// Sex.
    pub const SEX: AttrId = AttrId(2);
    /// Juvenile felony count bracket.
    pub const JUV_FEL: AttrId = AttrId(3);
    /// Prior crimes count bracket.
    pub const PRIORS: AttrId = AttrId(4);
    /// Charge degree of the current offence.
    pub const CHARGE: AttrId = AttrId(5);
    /// COMPAS software score, binarized (1 = high risk).
    pub const SCORE: AttrId = AttrId(6);
    /// Actual two-year recidivism.
    pub const RECID: AttrId = AttrId(7);

    /// The schema of the synthetic COMPAS data.
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("age_cat", Domain::categorical(["<25", "25-45", ">45"]));
        s.push("race", Domain::categorical(["white", "black"]));
        s.push("sex", Domain::categorical(["female", "male"]));
        s.push("juv_fel_count", Domain::categorical(["0", "1", "2+"]));
        s.push(
            "priors_count",
            Domain::categorical(["0", "1-3", "4-9", "10+"]),
        );
        s.push(
            "charge_degree",
            Domain::categorical(["misdemeanor", "felony"]),
        );
        s.push("score_high", Domain::boolean());
        s.push("two_year_recid", Domain::boolean());
        s
    }

    /// The ground-truth SCM.
    pub fn scm() -> Scm {
        let mut b = ScmBuilder::new(Self::schema());
        let e = |b: &mut ScmBuilder, from: AttrId, to: AttrId| {
            b.edge(from.index(), to.index())
                .expect("acyclic by construction");
        };
        b.mechanism(
            Self::AGE_CAT.index(),
            Mechanism::root(vec![0.25, 0.55, 0.20]),
        )
        .unwrap();
        b.mechanism(Self::RACE.index(), Mechanism::root(vec![0.45, 0.55]))
            .unwrap();
        b.mechanism(Self::SEX.index(), Mechanism::root(vec![0.2, 0.8]))
            .unwrap();
        // juv_fel <- age (younger: more juvenile record visibility), race
        e(&mut b, Self::AGE_CAT, Self::JUV_FEL);
        e(&mut b, Self::RACE, Self::JUV_FEL);
        b.mechanism(
            Self::JUV_FEL.index(),
            noisy_ordinal(vec![-0.5, 0.4], 0.0, vec![0.0, 0.6], 1.7, 9),
        )
        .unwrap();
        // priors <- age (older accumulate more), race, sex, juv_fel
        e(&mut b, Self::AGE_CAT, Self::PRIORS);
        e(&mut b, Self::RACE, Self::PRIORS);
        e(&mut b, Self::SEX, Self::PRIORS);
        e(&mut b, Self::JUV_FEL, Self::PRIORS);
        b.mechanism(
            Self::PRIORS.index(),
            noisy_ordinal(vec![0.4, 0.5, 0.3, 0.6], -0.3, vec![0.4, 1.2, 2.0], 2.4, 9),
        )
        .unwrap();
        // charge <- priors
        e(&mut b, Self::PRIORS, Self::CHARGE);
        b.mechanism(Self::CHARGE.index(), noisy_logistic(vec![0.4], -0.6, 20))
            .unwrap();
        // COMPAS score <- priors, juv_fel, age (younger = riskier), race
        // (the documented bias), charge
        for p in [
            Self::PRIORS,
            Self::JUV_FEL,
            Self::AGE_CAT,
            Self::RACE,
            Self::CHARGE,
        ] {
            e(&mut b, p, Self::SCORE);
        }
        b.mechanism(
            Self::SCORE.index(),
            noisy_logistic(vec![0.9, 0.7, -0.7, 0.8, 0.3], -1.6, 50),
        )
        .unwrap();
        // actual recidivism <- priors, juv_fel, age, charge (no direct
        // race effect: the bias lives in the score, not the world)
        for p in [Self::PRIORS, Self::JUV_FEL, Self::AGE_CAT, Self::CHARGE] {
            e(&mut b, p, Self::RECID);
        }
        b.mechanism(
            Self::RECID.index(),
            noisy_logistic(vec![0.7, 0.5, -0.5, 0.3], -1.3, 50),
        )
        .unwrap();
        b.build().expect("COMPAS SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed. The dataset's
    /// prediction target is the **software score**; `two_year_recid` is
    /// excluded from the feature set.
    pub fn generate(n_rows: usize, seed: u64) -> Dataset {
        let mut d = Dataset::from_scm(
            "compas",
            Self::scm(),
            n_rows,
            seed,
            Self::SCORE,
            Vec::new(), // §5.3: criminal history is not actionable
        );
        d.features = vec![
            Self::AGE_CAT,
            Self::RACE,
            Self::SEX,
            Self::JUV_FEL,
            Self::PRIORS,
            Self::CHARGE,
        ];
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn schema_shape() {
        let s = CompasDataset::schema();
        assert_eq!(s.len(), 8);
        assert_eq!(s.name(CompasDataset::SCORE), "score_high");
    }

    #[test]
    fn recid_is_not_a_feature() {
        let d = CompasDataset::generate(1000, 1);
        assert!(!d.features.contains(&CompasDataset::RECID));
        assert!(!d.features.contains(&CompasDataset::SCORE));
        assert!(
            d.actionable.is_empty(),
            "criminal history is not actionable"
        );
    }

    #[test]
    fn priors_drive_the_score() {
        let d = CompasDataset::generate(8000, 2);
        let lo = d
            .table
            .conditional_probability(
                CompasDataset::SCORE,
                1,
                &Context::of([(CompasDataset::PRIORS, 0)]),
                0.0,
            )
            .unwrap();
        let hi = d
            .table
            .conditional_probability(
                CompasDataset::SCORE,
                1,
                &Context::of([(CompasDataset::PRIORS, 3)]),
                0.0,
            )
            .unwrap();
        assert!(hi - lo > 0.3, "priors effect {lo} -> {hi}");
    }

    #[test]
    fn score_is_racially_biased_but_recid_is_not_directly() {
        let d = CompasDataset::generate(20_000, 3);
        // score gap at identical criminal history
        let ctx = Context::of([
            (CompasDataset::PRIORS, 1),
            (CompasDataset::JUV_FEL, 0),
            (CompasDataset::AGE_CAT, 1),
        ]);
        let white = d
            .table
            .conditional_probability(
                CompasDataset::SCORE,
                1,
                &ctx.with(CompasDataset::RACE, 0),
                0.0,
            )
            .unwrap();
        let black = d
            .table
            .conditional_probability(
                CompasDataset::SCORE,
                1,
                &ctx.with(CompasDataset::RACE, 1),
                0.0,
            )
            .unwrap();
        assert!(
            black - white > 0.1,
            "score bias: white {white}, black {black}"
        );
        // the graph has no race -> recid edge
        assert!(!CompasDataset::scm()
            .graph()
            .has_edge(CompasDataset::RACE.index(), CompasDataset::RECID.index()));
    }
}
