//! Synthetic Adult income data (UCI Adult substitute).
//!
//! 14 attributes + the `income > 50K` outcome, generated from an SCM
//! following Chiappa (2019): age/sex/race/country are roots; education,
//! marital status and occupation mediate; the outcome leans heavily on
//! marital status (the dataset's well-documented household-income quirk,
//! §5.3) and working hours. Sex affects the outcome both directly (the
//! reported bias) and through mediators.

use crate::mech::{noisy_logistic, noisy_ordinal};
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema};

/// Generator for the synthetic Adult income dataset.
pub struct AdultDataset;

impl AdultDataset {
    /// Age group.
    pub const AGE: AttrId = AttrId(0);
    /// Sex.
    pub const SEX: AttrId = AttrId(1);
    /// Race (binarized as in the paper's fairness analyses).
    pub const RACE: AttrId = AttrId(2);
    /// Native country (US / other).
    pub const COUNTRY: AttrId = AttrId(3);
    /// Education level.
    pub const EDU: AttrId = AttrId(4);
    /// Marital status.
    pub const MARITAL: AttrId = AttrId(5);
    /// Relationship in household.
    pub const RELATIONSHIP: AttrId = AttrId(6);
    /// Occupation family.
    pub const OCCUP: AttrId = AttrId(7);
    /// Work class (employer type).
    pub const CLASS: AttrId = AttrId(8);
    /// Weekly working hours bracket.
    pub const HOURS: AttrId = AttrId(9);
    /// Capital gains flag.
    pub const CAPGAIN: AttrId = AttrId(10);
    /// Capital losses flag.
    pub const CAPLOSS: AttrId = AttrId(11);
    /// Census sampling weight bucket (pure noise feature).
    pub const FNLWGT: AttrId = AttrId(12);
    /// Industry sector.
    pub const INDUSTRY: AttrId = AttrId(13);
    /// Binary income outcome (1 = >50K).
    pub const OUTCOME: AttrId = AttrId(14);

    /// The schema of the synthetic Adult data.
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("age", Domain::categorical(["young", "mid", "senior"]));
        s.push("sex", Domain::categorical(["female", "male"]));
        s.push("race", Domain::categorical(["nonwhite", "white"]));
        s.push("country", Domain::categorical(["other", "us"]));
        s.push(
            "edu",
            Domain::categorical(["dropout", "hs_grad", "bachelors", "advanced"]),
        );
        s.push(
            "marital",
            Domain::categorical(["never", "divorced", "married"]),
        );
        s.push(
            "relationship",
            Domain::categorical(["own_child", "not_in_family", "spouse"]),
        );
        s.push(
            "occup",
            Domain::categorical(["service", "blue_collar", "sales", "professional"]),
        );
        s.push("class", Domain::categorical(["gov", "private", "self_emp"]));
        s.push(
            "hours",
            Domain::categorical(["part_time", "full_time", "overtime"]),
        );
        s.push("capgain", Domain::categorical(["none", "some"]));
        s.push("caploss", Domain::categorical(["none", "some"]));
        s.push("fnlwgt", Domain::categorical(["low", "high"]));
        s.push(
            "industry",
            Domain::categorical(["primary", "manufacturing", "services"]),
        );
        s.push("income", Domain::boolean());
        s
    }

    /// The ground-truth SCM.
    pub fn scm() -> Scm {
        let mut b = ScmBuilder::new(Self::schema());
        let e = |b: &mut ScmBuilder, from: AttrId, to: AttrId| {
            b.edge(from.index(), to.index())
                .expect("acyclic by construction");
        };
        b.mechanism(Self::AGE.index(), Mechanism::root(vec![0.3, 0.45, 0.25]))
            .unwrap();
        b.mechanism(Self::SEX.index(), Mechanism::root(vec![0.33, 0.67]))
            .unwrap();
        b.mechanism(Self::RACE.index(), Mechanism::root(vec![0.15, 0.85]))
            .unwrap();
        b.mechanism(Self::COUNTRY.index(), Mechanism::root(vec![0.1, 0.9]))
            .unwrap();
        // edu <- age, sex, country
        e(&mut b, Self::AGE, Self::EDU);
        e(&mut b, Self::SEX, Self::EDU);
        e(&mut b, Self::COUNTRY, Self::EDU);
        b.mechanism(
            Self::EDU.index(),
            noisy_ordinal(vec![0.4, 0.15, 0.3], 0.0, vec![0.3, 1.0, 1.7], 1.8, 9),
        )
        .unwrap();
        // marital <- age, sex
        e(&mut b, Self::AGE, Self::MARITAL);
        e(&mut b, Self::SEX, Self::MARITAL);
        b.mechanism(
            Self::MARITAL.index(),
            noisy_ordinal(vec![0.9, 0.4], -0.2, vec![0.6, 1.2], 1.5, 9),
        )
        .unwrap();
        // relationship <- marital, sex
        e(&mut b, Self::MARITAL, Self::RELATIONSHIP);
        e(&mut b, Self::SEX, Self::RELATIONSHIP);
        b.mechanism(
            Self::RELATIONSHIP.index(),
            noisy_ordinal(vec![0.8, 0.2], 0.0, vec![0.5, 1.4], 1.5, 7),
        )
        .unwrap();
        // occup <- edu, sex
        e(&mut b, Self::EDU, Self::OCCUP);
        e(&mut b, Self::SEX, Self::OCCUP);
        b.mechanism(
            Self::OCCUP.index(),
            noisy_ordinal(vec![0.8, 0.3], -0.1, vec![0.6, 1.4, 2.2], 2.3, 9),
        )
        .unwrap();
        // class <- edu, country, sex (the Fig 8b neural-network story)
        e(&mut b, Self::EDU, Self::CLASS);
        e(&mut b, Self::COUNTRY, Self::CLASS);
        e(&mut b, Self::SEX, Self::CLASS);
        b.mechanism(
            Self::CLASS.index(),
            noisy_ordinal(vec![0.3, 0.3, 0.2], 0.0, vec![0.4, 1.6], 1.7, 7),
        )
        .unwrap();
        // hours <- occup, sex, marital
        e(&mut b, Self::OCCUP, Self::HOURS);
        e(&mut b, Self::SEX, Self::HOURS);
        e(&mut b, Self::MARITAL, Self::HOURS);
        b.mechanism(
            Self::HOURS.index(),
            noisy_ordinal(vec![0.3, 0.4, 0.2], 0.0, vec![0.5, 1.6], 1.7, 9),
        )
        .unwrap();
        // capgain <- edu, class; caploss <- edu
        e(&mut b, Self::EDU, Self::CAPGAIN);
        e(&mut b, Self::CLASS, Self::CAPGAIN);
        b.mechanism(
            Self::CAPGAIN.index(),
            noisy_logistic(vec![0.5, 0.4], -3.0, 20),
        )
        .unwrap();
        e(&mut b, Self::EDU, Self::CAPLOSS);
        b.mechanism(Self::CAPLOSS.index(), noisy_logistic(vec![0.3], -3.0, 20))
            .unwrap();
        // fnlwgt: pure noise
        b.mechanism(Self::FNLWGT.index(), Mechanism::root(vec![0.5, 0.5]))
            .unwrap();
        // industry <- class
        e(&mut b, Self::CLASS, Self::INDUSTRY);
        b.mechanism(
            Self::INDUSTRY.index(),
            noisy_ordinal(vec![0.5], 0.2, vec![0.4, 1.0], 0.9, 7),
        )
        .unwrap();
        // income <- marital (dominant), edu, occup, hours, age, capgain,
        // class, sex (direct bias), relationship
        for p in [
            Self::MARITAL,
            Self::EDU,
            Self::OCCUP,
            Self::HOURS,
            Self::AGE,
            Self::CAPGAIN,
            Self::CLASS,
            Self::SEX,
            Self::RELATIONSHIP,
        ] {
            e(&mut b, p, Self::OUTCOME);
        }
        b.mechanism(
            Self::OUTCOME.index(),
            noisy_logistic(vec![1.1, 0.8, 0.5, 0.7, 0.5, 1.2, 0.2, 0.3, 0.3], -6.4, 50),
        )
        .unwrap();
        b.build().expect("Adult SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed.
    pub fn generate(n_rows: usize, seed: u64) -> Dataset {
        Dataset::from_scm(
            "adult",
            Self::scm(),
            n_rows,
            seed,
            Self::OUTCOME,
            vec![Self::EDU, Self::HOURS, Self::CLASS, Self::OCCUP],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn schema_shape() {
        let s = AdultDataset::schema();
        assert_eq!(s.len(), 15); // 14 features + outcome
        assert_eq!(s.name(AdultDataset::MARITAL), "marital");
    }

    #[test]
    fn income_rate_matches_adult() {
        // UCI Adult has ~24% high earners.
        let d = AdultDataset::generate(10_000, 2);
        let rate = d
            .table
            .probability(&Context::of([(AdultDataset::OUTCOME, 1)]));
        assert!((0.1..0.45).contains(&rate), "high-income rate {rate}");
    }

    #[test]
    fn marital_dominates_income() {
        let d = AdultDataset::generate(10_000, 3);
        let married = d
            .table
            .conditional_probability(
                AdultDataset::OUTCOME,
                1,
                &Context::of([(AdultDataset::MARITAL, 2)]),
                0.0,
            )
            .unwrap();
        let never = d
            .table
            .conditional_probability(
                AdultDataset::OUTCOME,
                1,
                &Context::of([(AdultDataset::MARITAL, 0)]),
                0.0,
            )
            .unwrap();
        assert!(
            married - never > 0.15,
            "marital effect {never} -> {married}"
        );
    }

    #[test]
    fn fnlwgt_is_noise() {
        let d = AdultDataset::generate(10_000, 4);
        let hi = d
            .table
            .conditional_probability(
                AdultDataset::OUTCOME,
                1,
                &Context::of([(AdultDataset::FNLWGT, 1)]),
                0.0,
            )
            .unwrap();
        let lo = d
            .table
            .conditional_probability(
                AdultDataset::OUTCOME,
                1,
                &Context::of([(AdultDataset::FNLWGT, 0)]),
                0.0,
            )
            .unwrap();
        assert!((hi - lo).abs() < 0.03, "fnlwgt leaks: {lo} vs {hi}");
    }

    #[test]
    fn sex_reaches_income_directly_and_via_class() {
        let g = AdultDataset::scm();
        let graph = g.graph();
        assert!(graph.has_edge(AdultDataset::SEX.index(), AdultDataset::OUTCOME.index()));
        assert!(graph.has_edge(AdultDataset::SEX.index(), AdultDataset::CLASS.index()));
        assert!(graph.has_edge(AdultDataset::COUNTRY.index(), AdultDataset::CLASS.index()));
    }
}
