//! A data-scale workload: German-syn at millions of rows.
//!
//! The ROADMAP's north star is serving datasets far beyond the paper's
//! 48k-row Adult ceiling, and the row-sharded counting engine needs a
//! workload that actually exercises that scale. [`german_syn_scaled`]
//! generates the *same distribution* as [`crate::GermanSynDataset`]
//! (identical schema, SCM and mechanisms) but in fixed-size chunks that
//! fan out across threads via the rayon shim, so a seeded 1M-row table
//! materializes in seconds instead of minutes.
//!
//! Determinism guarantees:
//!
//! * **seed-determined** — each chunk is generated from an RNG derived
//!   only from `(seed, chunk index)`, so the output is identical for
//!   any thread count;
//! * **prefix-stable** — `german_syn_scaled(n, seed)` is row-for-row
//!   the first `n` rows of `german_syn_scaled(m, seed)` for any
//!   `m ≥ n`, because rows are drawn chunk-locally in row order. A
//!   smoke test at 10k rows therefore sees a literal prefix of the
//!   1M-row benchmark table.

use crate::german_syn::GermanSynDataset;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use tabular::Table;

/// Rows generated per chunk (one unit of parallel work).
const CHUNK_ROWS: usize = 65_536;

/// Mix a chunk index into the user seed (splitmix64 finalizer) so chunk
/// streams are decorrelated but fully determined by `(seed, chunk)`.
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generate `rows` observations of the standard (monotone) German-syn
/// model, chunk-parallel and prefix-stable — see the module docs for
/// the exact guarantees. The returned [`Dataset`] carries the same
/// ground-truth SCM, outcome and actionable roles as
/// [`GermanSynDataset::generate`].
pub fn german_syn_scaled(rows: usize, seed: u64) -> Dataset {
    let generator = GermanSynDataset::standard();
    let scm = generator.scm();
    let n_chunks = rows.div_ceil(CHUNK_ROWS).max(1);
    let chunks: Vec<usize> = (0..n_chunks).collect();
    let chunk_tables: Vec<Table> = chunks
        .par_iter()
        .map(|&i| {
            let start = i * CHUNK_ROWS;
            let len = CHUNK_ROWS.min(rows - start);
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, i as u64));
            scm.generate(len, &mut rng)
        })
        .collect();
    // Concatenate columns in chunk order (chunk tables share the schema
    // by construction, so this cannot fail).
    let schema = GermanSynDataset::schema();
    let mut columns: Vec<Vec<tabular::Value>> = (0..schema.len())
        .map(|_| Vec::with_capacity(rows))
        .collect();
    for chunk in &chunk_tables {
        for (dst, src) in columns.iter_mut().zip(chunk.columns()) {
            dst.extend_from_slice(src);
        }
    }
    let table = Table::from_columns(schema, columns).expect("chunks share the schema");
    Dataset {
        name: "german_syn_scaled",
        table,
        scm,
        outcome: GermanSynDataset::SCORE,
        features: GermanSynDataset::schema()
            .attr_ids()
            .filter(|&a| a != GermanSynDataset::SCORE)
            .collect(),
        actionable: vec![
            GermanSynDataset::STATUS,
            GermanSynDataset::SAVING,
            GermanSynDataset::HOUSING,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn is_deterministic_and_seed_sensitive() {
        let a = german_syn_scaled(3000, 9);
        let b = german_syn_scaled(3000, 9);
        assert_eq!(a.table, b.table);
        let c = german_syn_scaled(3000, 10);
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn is_prefix_stable_across_row_counts() {
        // crosses a chunk boundary on purpose
        let small = german_syn_scaled(CHUNK_ROWS + 100, 4);
        let large = german_syn_scaled(CHUNK_ROWS + 5000, 4);
        for attr in small.table.schema().attr_ids() {
            let s = small.table.column(attr).unwrap();
            let l = large.table.column(attr).unwrap();
            assert_eq!(s, &l[..s.len()], "column {attr} is not a prefix");
        }
    }

    #[test]
    fn distribution_matches_german_syn_roles() {
        let d = german_syn_scaled(20_000, 3);
        assert_eq!(d.table.n_rows(), 20_000);
        assert_eq!(d.table.schema().len(), 6);
        assert_eq!(d.outcome, GermanSynDataset::SCORE);
        assert_eq!(d.scm.graph().n_nodes(), 6);
        // outcome balance at the serving pivot (score bin >= 5)
        let mut high = 0usize;
        for &v in d.table.column(GermanSynDataset::SCORE).unwrap() {
            if v >= 5 {
                high += 1;
            }
        }
        let rate = high as f64 / d.table.n_rows() as f64;
        assert!((0.1..0.9).contains(&rate), "high-score rate {rate}");
        // positivity in the strata the estimators condition on
        for age in 0..3u32 {
            for sex in 0..2u32 {
                let ctx = Context::of([(GermanSynDataset::AGE, age), (GermanSynDataset::SEX, sex)]);
                assert!(d.table.count(&ctx) > 0, "empty stratum ({age}, {sex})");
            }
        }
    }

    #[test]
    fn zero_rows_is_a_valid_empty_workload() {
        let d = german_syn_scaled(0, 1);
        assert_eq!(d.table.n_rows(), 0);
        assert_eq!(d.table.schema().len(), 6);
    }
}
