//! Synthetic drug-consumption data (UCI drug substitute).
//!
//! Demographics (country, age, gender, ethnicity) and NEO-FFI-style
//! personality traits, with a **three-class ordinal outcome**: when the
//! respondent last used magic mushrooms (never / more than a decade ago /
//! within the last decade) — the paper's multi-class task (§5.1). Per
//! §5.2, the demographic roots affect both the traits and the outcome;
//! country and sensation-seeking dominate (Fig. 3d), higher education
//! suppresses use (Fig. 7).

use crate::mech::noisy_ordinal;
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema};

/// Generator for the synthetic drug-consumption dataset.
pub struct DrugDataset;

impl DrugDataset {
    /// Country of residence.
    pub const COUNTRY: AttrId = AttrId(0);
    /// Age band.
    pub const AGE: AttrId = AttrId(1);
    /// Gender.
    pub const GENDER: AttrId = AttrId(2);
    /// Ethnicity.
    pub const ETHNICITY: AttrId = AttrId(3);
    /// Education level.
    pub const EDU: AttrId = AttrId(4);
    /// Openness to experience (binned z-score).
    pub const OPENNESS: AttrId = AttrId(5);
    /// Conscientiousness.
    pub const CONSCIENTIOUS: AttrId = AttrId(6);
    /// Extraversion.
    pub const EXTRAVERSION: AttrId = AttrId(7);
    /// Agreeableness.
    pub const AGREEABLE: AttrId = AttrId(8);
    /// Neuroticism.
    pub const NEUROTICISM: AttrId = AttrId(9);
    /// Impulsivity.
    pub const IMPULSIVE: AttrId = AttrId(10);
    /// Sensation seeking.
    pub const SENSATION: AttrId = AttrId(11);
    /// Assertiveness-style auxiliary score (the "ascore" of Fig. 9d).
    pub const ASCORE: AttrId = AttrId(12);
    /// Ordinal consumption outcome.
    pub const OUTCOME: AttrId = AttrId(13);

    /// The schema of the synthetic drug data.
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("country", Domain::categorical(["rest_of_world", "uk_us"]));
        s.push("age", Domain::categorical(["18-24", "25-44", "45+"]));
        s.push("gender", Domain::categorical(["female", "male"]));
        s.push("ethnicity", Domain::categorical(["other", "white"]));
        s.push(
            "edu",
            Domain::categorical(["left_school", "some_college", "bachelors", "masters+"]),
        );
        let trait_dom = || Domain::categorical(["low", "mid", "high"]);
        s.push("openness", trait_dom());
        s.push("conscientious", trait_dom());
        s.push("extraversion", trait_dom());
        s.push("agreeable", trait_dom());
        s.push("neuroticism", trait_dom());
        s.push("impulsive", trait_dom());
        s.push("sensation", trait_dom());
        s.push("ascore", trait_dom());
        s.push(
            "usage",
            Domain::categorical(["never", "over_decade_ago", "last_decade"]),
        );
        s
    }

    /// The ground-truth SCM.
    pub fn scm() -> Scm {
        let mut b = ScmBuilder::new(Self::schema());
        let e = |b: &mut ScmBuilder, from: AttrId, to: AttrId| {
            b.edge(from.index(), to.index())
                .expect("acyclic by construction");
        };
        b.mechanism(Self::COUNTRY.index(), Mechanism::root(vec![0.45, 0.55]))
            .unwrap();
        b.mechanism(Self::AGE.index(), Mechanism::root(vec![0.35, 0.45, 0.20]))
            .unwrap();
        b.mechanism(Self::GENDER.index(), Mechanism::root(vec![0.5, 0.5]))
            .unwrap();
        b.mechanism(Self::ETHNICITY.index(), Mechanism::root(vec![0.1, 0.9]))
            .unwrap();
        // edu <- age, gender, country
        e(&mut b, Self::AGE, Self::EDU);
        e(&mut b, Self::GENDER, Self::EDU);
        e(&mut b, Self::COUNTRY, Self::EDU);
        b.mechanism(
            Self::EDU.index(),
            noisy_ordinal(vec![0.7, -0.2, 0.3], 0.0, vec![0.3, 1.0, 1.7], 2.0, 9),
        )
        .unwrap();
        // traits <- demographics
        let trait_mech = |w_age: f64, w_gender: f64| {
            noisy_ordinal(vec![w_age, w_gender], 0.4, vec![0.3, 0.9], 1.3, 9)
        };
        e(&mut b, Self::AGE, Self::OPENNESS);
        e(&mut b, Self::GENDER, Self::OPENNESS);
        b.mechanism(Self::OPENNESS.index(), trait_mech(-0.3, 0.1))
            .unwrap();
        e(&mut b, Self::AGE, Self::CONSCIENTIOUS);
        e(&mut b, Self::GENDER, Self::CONSCIENTIOUS);
        b.mechanism(Self::CONSCIENTIOUS.index(), trait_mech(0.4, -0.1))
            .unwrap();
        e(&mut b, Self::GENDER, Self::EXTRAVERSION);
        b.mechanism(
            Self::EXTRAVERSION.index(),
            noisy_ordinal(vec![0.1], 0.5, vec![0.3, 0.9], 1.1, 9),
        )
        .unwrap();
        e(&mut b, Self::GENDER, Self::AGREEABLE);
        b.mechanism(
            Self::AGREEABLE.index(),
            noisy_ordinal(vec![-0.2], 0.7, vec![0.3, 0.9], 1.2, 9),
        )
        .unwrap();
        e(&mut b, Self::AGE, Self::NEUROTICISM);
        b.mechanism(
            Self::NEUROTICISM.index(),
            noisy_ordinal(vec![-0.2], 0.7, vec![0.3, 0.9], 1.2, 9),
        )
        .unwrap();
        e(&mut b, Self::AGE, Self::IMPULSIVE);
        e(&mut b, Self::GENDER, Self::IMPULSIVE);
        b.mechanism(Self::IMPULSIVE.index(), trait_mech(-0.5, 0.2))
            .unwrap();
        e(&mut b, Self::AGE, Self::SENSATION);
        e(&mut b, Self::GENDER, Self::SENSATION);
        b.mechanism(Self::SENSATION.index(), trait_mech(-0.6, 0.3))
            .unwrap();
        e(&mut b, Self::AGE, Self::ASCORE);
        b.mechanism(
            Self::ASCORE.index(),
            noisy_ordinal(vec![0.2], 0.5, vec![0.3, 0.9], 1.1, 9),
        )
        .unwrap();
        // usage <- country (dominant, Fig 3d), age (younger use more),
        // sensation, openness, impulsive, edu (suppresses), gender,
        // conscientiousness (suppresses), ethnicity (weak)
        for p in [
            Self::COUNTRY,
            Self::AGE,
            Self::SENSATION,
            Self::OPENNESS,
            Self::IMPULSIVE,
            Self::EDU,
            Self::GENDER,
            Self::CONSCIENTIOUS,
            Self::ETHNICITY,
        ] {
            e(&mut b, p, Self::OUTCOME);
        }
        b.mechanism(
            Self::OUTCOME.index(),
            noisy_ordinal(
                vec![1.9, -0.55, 0.7, 0.5, 0.4, -0.35, 0.25, -0.3, 0.1],
                -0.3,
                vec![0.35, 1.15],
                1.2,
                15,
            ),
        )
        .unwrap();
        b.build().expect("Drug SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed.
    pub fn generate(n_rows: usize, seed: u64) -> Dataset {
        Dataset::from_scm(
            "drug",
            Self::scm(),
            n_rows,
            seed,
            Self::OUTCOME,
            Vec::new(), // personality traits are not actionable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn schema_shape() {
        let s = DrugDataset::schema();
        assert_eq!(s.len(), 14); // 13 features + outcome
        assert_eq!(s.cardinality(DrugDataset::OUTCOME).unwrap(), 3);
    }

    #[test]
    fn all_three_classes_occur() {
        let d = DrugDataset::generate(5000, 6);
        for v in 0..3u32 {
            let rate = d
                .table
                .probability(&Context::of([(DrugDataset::OUTCOME, v)]));
            assert!(rate > 0.05, "class {v} rate {rate}");
        }
    }

    #[test]
    fn country_dominates_usage() {
        let d = DrugDataset::generate(8000, 7);
        // Pr(used at least once) = Pr(usage >= 1)
        let p = |country: u32| {
            let ctx = Context::of([(DrugDataset::COUNTRY, country)]);
            1.0 - d
                .table
                .conditional_probability(DrugDataset::OUTCOME, 0, &ctx, 0.0)
                .unwrap()
        };
        assert!(p(1) - p(0) > 0.2, "country effect: {} vs {}", p(0), p(1));
    }

    #[test]
    fn education_suppresses_usage() {
        let d = DrugDataset::generate(8000, 8);
        let low_edu = 1.0
            - d.table
                .conditional_probability(
                    DrugDataset::OUTCOME,
                    0,
                    &Context::of([(DrugDataset::EDU, 0)]),
                    0.0,
                )
                .unwrap();
        let high_edu = 1.0
            - d.table
                .conditional_probability(
                    DrugDataset::OUTCOME,
                    0,
                    &Context::of([(DrugDataset::EDU, 3)]),
                    0.0,
                )
                .unwrap();
        assert!(
            low_edu > high_edu + 0.05,
            "edu effect: {low_edu} vs {high_edu}"
        );
    }
}
