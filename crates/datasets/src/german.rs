//! Synthetic German credit data (UCI German substitute).
//!
//! 20 attributes + a binary credit-risk outcome, generated from an SCM
//! whose diagram follows Chiappa (2019): demographics (sex, age, foreign
//! worker) drive employment/skill, which drive financial standing
//! (checking-account status, savings, credit history, housing,
//! property), which drives the loan's shape (purpose, amount, duration,
//! installment rate) and ultimately the credit decision. Effect
//! directions mirror the paper's analysis of Fig. 3a: checking status
//! and credit history dominate; housing is correlated-but-skewed (the
//! Feat failure case of Fig. 9a); age matters mostly indirectly.

use crate::mech::{noisy_logistic, noisy_ordinal};
use crate::Dataset;
use causal::{Mechanism, Scm, ScmBuilder};
use tabular::{AttrId, Domain, Schema};

/// Generator for the synthetic German credit dataset.
pub struct GermanDataset;

impl GermanDataset {
    /// Sex of the applicant.
    pub const SEX: AttrId = AttrId(0);
    /// Age group.
    pub const AGE: AttrId = AttrId(1);
    /// Foreign-worker flag.
    pub const FOREIGN: AttrId = AttrId(2);
    /// Employment seniority.
    pub const EMPLOYMENT: AttrId = AttrId(3);
    /// Skill level (job qualification).
    pub const SKILL: AttrId = AttrId(4);
    /// Checking-account status.
    pub const STATUS: AttrId = AttrId(5);
    /// Savings bracket.
    pub const SAVINGS: AttrId = AttrId(6);
    /// Credit history quality.
    pub const CREDIT_HIST: AttrId = AttrId(7);
    /// Housing situation.
    pub const HOUSING: AttrId = AttrId(8);
    /// Property ownership.
    pub const PROPERTY: AttrId = AttrId(9);
    /// Loan purpose.
    pub const PURPOSE: AttrId = AttrId(10);
    /// Credit amount bracket.
    pub const CREDIT_AMOUNT: AttrId = AttrId(11);
    /// Repayment duration (months bracket).
    pub const MONTH: AttrId = AttrId(12);
    /// Installment rate bracket.
    pub const INVEST: AttrId = AttrId(13);
    /// Other debtors / co-applicants.
    pub const DEBTORS: AttrId = AttrId(14);
    /// Years at current residence.
    pub const RESIDENCE: AttrId = AttrId(15);
    /// Other installment plans.
    pub const OTHER_INSTALL: AttrId = AttrId(16);
    /// Number of existing credits.
    pub const EXISTING_CREDITS: AttrId = AttrId(17);
    /// Telephone registered.
    pub const TELEPHONE: AttrId = AttrId(18);
    /// Number of dependents.
    pub const MAINTENANCE: AttrId = AttrId(19);
    /// Binary credit-risk outcome (1 = good).
    pub const OUTCOME: AttrId = AttrId(20);

    /// The schema of the synthetic German data.
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.push("sex", Domain::categorical(["female", "male"]));
        s.push("age", Domain::categorical(["young", "adult", "senior"]));
        s.push("foreign", Domain::categorical(["yes", "no"]));
        s.push(
            "employment",
            Domain::categorical(["unemployed", "<1yr", "1-4yr", ">4yr"]),
        );
        s.push(
            "skill",
            Domain::categorical(["unskilled", "skilled", "highly_qualified"]),
        );
        s.push(
            "status",
            Domain::categorical(["<0 DM", "0-200 DM", ">200 DM", "salary_account"]),
        );
        s.push(
            "savings",
            Domain::categorical(["<100 DM", "100-500 DM", "500-1000 DM", ">1000 DM"]),
        );
        s.push(
            "credit_hist",
            Domain::categorical(["delay_in_past", "existing_paid", "all_paid"]),
        );
        s.push("housing", Domain::categorical(["free", "rent", "own"]));
        s.push(
            "property",
            Domain::categorical(["none", "car", "real_estate"]),
        );
        s.push(
            "purpose",
            Domain::categorical(["repairs", "education", "furniture", "business"]),
        );
        s.push(
            "credit_amount",
            Domain::categorical(["<2000 DM", "2000-5000 DM", ">5000 DM"]),
        );
        s.push("month", Domain::categorical(["<12", "12-24", ">24"]));
        s.push("invest", Domain::categorical(["<2%", "2-3%", ">3%"]));
        s.push("debtors", Domain::categorical(["none", "co_applicant"]));
        s.push("residence", Domain::categorical(["<1yr", "1-4yr", ">4yr"]));
        s.push("other_install", Domain::categorical(["none", "yes"]));
        s.push("existing_credits", Domain::categorical(["one", "several"]));
        s.push("telephone", Domain::categorical(["none", "yes"]));
        s.push("maintenance", Domain::categorical(["0-1", "2+"]));
        s.push("good_credit", Domain::boolean());
        s
    }

    /// The ground-truth SCM.
    pub fn scm() -> Scm {
        let mut b = ScmBuilder::new(Self::schema());
        let e = |b: &mut ScmBuilder, from: AttrId, to: AttrId| {
            b.edge(from.index(), to.index())
                .expect("acyclic by construction");
        };
        // demographics
        b.mechanism(Self::SEX.index(), Mechanism::root(vec![0.45, 0.55]))
            .unwrap();
        b.mechanism(Self::AGE.index(), Mechanism::root(vec![0.20, 0.55, 0.25]))
            .unwrap();
        b.mechanism(Self::FOREIGN.index(), Mechanism::root(vec![0.15, 0.85]))
            .unwrap();
        // employment <- age, sex
        e(&mut b, Self::AGE, Self::EMPLOYMENT);
        e(&mut b, Self::SEX, Self::EMPLOYMENT);
        b.mechanism(
            Self::EMPLOYMENT.index(),
            noisy_ordinal(vec![0.9, 0.15], 0.0, vec![0.5, 1.2, 2.0], 2.1, 9),
        )
        .unwrap();
        // skill <- age, sex
        e(&mut b, Self::AGE, Self::SKILL);
        e(&mut b, Self::SEX, Self::SKILL);
        b.mechanism(
            Self::SKILL.index(),
            noisy_ordinal(vec![0.5, 0.2], 0.0, vec![0.4, 1.3], 1.4, 7),
        )
        .unwrap();
        // status <- age, employment
        e(&mut b, Self::AGE, Self::STATUS);
        e(&mut b, Self::EMPLOYMENT, Self::STATUS);
        b.mechanism(
            Self::STATUS.index(),
            noisy_ordinal(vec![0.35, 0.6], 0.0, vec![0.6, 1.5, 2.4], 2.5, 9),
        )
        .unwrap();
        // savings <- age, employment
        e(&mut b, Self::AGE, Self::SAVINGS);
        e(&mut b, Self::EMPLOYMENT, Self::SAVINGS);
        b.mechanism(
            Self::SAVINGS.index(),
            noisy_ordinal(vec![0.4, 0.5], 0.0, vec![0.7, 1.6, 2.4], 2.5, 9),
        )
        .unwrap();
        // credit history <- age
        e(&mut b, Self::AGE, Self::CREDIT_HIST);
        b.mechanism(
            Self::CREDIT_HIST.index(),
            noisy_ordinal(vec![0.7], 0.0, vec![0.4, 1.2], 1.4, 9),
        )
        .unwrap();
        // housing <- age, skill — skewed: most adults own (Fig 9a case)
        e(&mut b, Self::AGE, Self::HOUSING);
        e(&mut b, Self::SKILL, Self::HOUSING);
        b.mechanism(
            Self::HOUSING.index(),
            noisy_ordinal(vec![0.6, 0.5], 0.4, vec![0.5, 1.0], 2.2, 7),
        )
        .unwrap();
        // property <- housing, savings
        e(&mut b, Self::HOUSING, Self::PROPERTY);
        e(&mut b, Self::SAVINGS, Self::PROPERTY);
        b.mechanism(
            Self::PROPERTY.index(),
            noisy_ordinal(vec![0.5, 0.4], 0.0, vec![0.7, 1.8], 1.9, 7),
        )
        .unwrap();
        // purpose <- age
        e(&mut b, Self::AGE, Self::PURPOSE);
        b.mechanism(
            Self::PURPOSE.index(),
            noisy_ordinal(vec![0.35], 0.0, vec![0.3, 0.8, 1.3], 1.4, 9),
        )
        .unwrap();
        // credit amount <- purpose, savings
        e(&mut b, Self::PURPOSE, Self::CREDIT_AMOUNT);
        e(&mut b, Self::SAVINGS, Self::CREDIT_AMOUNT);
        b.mechanism(
            Self::CREDIT_AMOUNT.index(),
            noisy_ordinal(vec![0.35, 0.3], 0.0, vec![0.6, 1.5], 1.6, 7),
        )
        .unwrap();
        // month <- credit amount, purpose
        e(&mut b, Self::CREDIT_AMOUNT, Self::MONTH);
        e(&mut b, Self::PURPOSE, Self::MONTH);
        b.mechanism(
            Self::MONTH.index(),
            noisy_ordinal(vec![0.6, 0.2], 0.0, vec![0.5, 1.3], 1.5, 7),
        )
        .unwrap();
        // invest <- credit amount
        e(&mut b, Self::CREDIT_AMOUNT, Self::INVEST);
        b.mechanism(
            Self::INVEST.index(),
            noisy_ordinal(vec![0.6], 0.0, vec![0.4, 1.1], 1.2, 7),
        )
        .unwrap();
        // debtors <- age
        e(&mut b, Self::AGE, Self::DEBTORS);
        b.mechanism(Self::DEBTORS.index(), noisy_logistic(vec![0.3], -1.5, 20))
            .unwrap();
        // residence <- age
        e(&mut b, Self::AGE, Self::RESIDENCE);
        b.mechanism(
            Self::RESIDENCE.index(),
            noisy_ordinal(vec![0.6], 0.0, vec![0.4, 1.2], 1.3, 7),
        )
        .unwrap();
        // other installments (root)
        b.mechanism(Self::OTHER_INSTALL.index(), Mechanism::root(vec![0.8, 0.2]))
            .unwrap();
        // existing credits <- age
        e(&mut b, Self::AGE, Self::EXISTING_CREDITS);
        b.mechanism(
            Self::EXISTING_CREDITS.index(),
            noisy_logistic(vec![0.5], -1.0, 20),
        )
        .unwrap();
        // telephone <- skill
        e(&mut b, Self::SKILL, Self::TELEPHONE);
        b.mechanism(Self::TELEPHONE.index(), noisy_logistic(vec![0.8], -1.0, 20))
            .unwrap();
        // maintenance <- sex
        e(&mut b, Self::SEX, Self::MAINTENANCE);
        b.mechanism(
            Self::MAINTENANCE.index(),
            noisy_logistic(vec![0.6], -1.2, 20),
        )
        .unwrap();
        // outcome — weights encode the Fig 3a story: status and credit
        // history dominate, duration and amount hurt, age is mild
        for p in [
            Self::STATUS,
            Self::CREDIT_HIST,
            Self::SAVINGS,
            Self::MONTH,
            Self::CREDIT_AMOUNT,
            Self::EMPLOYMENT,
            Self::AGE,
            Self::PURPOSE,
            Self::HOUSING,
            Self::INVEST,
            Self::PROPERTY,
        ] {
            e(&mut b, p, Self::OUTCOME);
        }
        b.mechanism(
            Self::OUTCOME.index(),
            noisy_logistic(
                vec![0.9, 1.0, 0.5, -0.7, -0.4, 0.3, 0.15, 0.2, 0.25, -0.2, 0.2],
                -2.6,
                50,
            ),
        )
        .unwrap();
        b.build().expect("German SCM is well-formed")
    }

    /// Generate `n_rows` observations with the given seed.
    pub fn generate(n_rows: usize, seed: u64) -> Dataset {
        Dataset::from_scm(
            "german",
            Self::scm(),
            n_rows,
            seed,
            Self::OUTCOME,
            vec![
                Self::PURPOSE,
                Self::CREDIT_AMOUNT,
                Self::SAVINGS,
                Self::MONTH,
                Self::STATUS,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Context;

    #[test]
    fn schema_has_twenty_features() {
        let s = GermanDataset::schema();
        assert_eq!(s.len(), 21); // 20 features + outcome
        assert_eq!(s.name(GermanDataset::STATUS), "status");
        assert_eq!(s.name(GermanDataset::OUTCOME), "good_credit");
    }

    #[test]
    fn outcome_rate_is_realistic() {
        // UCI German has 70% good credit; ours should be in that region.
        let d = GermanDataset::generate(5000, 3);
        let rate = d
            .table
            .probability(&Context::of([(GermanDataset::OUTCOME, 1)]));
        assert!((0.4..0.9).contains(&rate), "good-credit rate {rate}");
    }

    #[test]
    fn status_strongly_separates_outcomes() {
        let d = GermanDataset::generate(5000, 4);
        let p_low = d
            .table
            .conditional_probability(
                GermanDataset::OUTCOME,
                1,
                &Context::of([(GermanDataset::STATUS, 0)]),
                0.0,
            )
            .unwrap();
        let p_high = d
            .table
            .conditional_probability(
                GermanDataset::OUTCOME,
                1,
                &Context::of([(GermanDataset::STATUS, 3)]),
                0.0,
            )
            .unwrap();
        assert!(p_high - p_low > 0.25, "status effect: {p_low} -> {p_high}");
    }

    #[test]
    fn housing_is_skewed_toward_own() {
        // the Fig 9a story needs housing=own to dominate the marginal
        let d = GermanDataset::generate(5000, 5);
        let own = d
            .table
            .probability(&Context::of([(GermanDataset::HOUSING, 2)]));
        assert!(own > 0.5, "own-rate {own}");
    }

    #[test]
    fn graph_wiring_matches_story() {
        let scm = GermanDataset::scm();
        let g = scm.graph();
        assert!(g.has_edge(
            GermanDataset::AGE.index(),
            GermanDataset::EMPLOYMENT.index()
        ));
        assert!(g.has_edge(
            GermanDataset::STATUS.index(),
            GermanDataset::OUTCOME.index()
        ));
        assert!(!g.has_edge(GermanDataset::SEX.index(), GermanDataset::OUTCOME.index()));
        // sex influences the outcome only through mediators
        assert!(g.is_ancestor(GermanDataset::SEX.index(), GermanDataset::OUTCOME.index()));
    }
}
