//! # lewis-jobs — a bounded async job lane for explanation servers
//!
//! Most LEWIS queries answer in microseconds from warm counting passes,
//! but some — a cold recourse fit over a million rows, a wide batch —
//! are long enough that holding an HTTP connection open is the wrong
//! contract. This crate provides the serving layer's job lane: submit
//! work, get a ticket immediately, poll for the result.
//!
//! * **Bounded admission** — the queue holds at most
//!   [`JobConfig::capacity`] pending jobs; past that, [`submit`]
//!   returns [`QueueFull`] so the server can answer a typed `429`
//!   instead of buffering unboundedly.
//! * **Observable lifecycle** — every job moves `Queued → Running →
//!   Done(T) | Failed`, with per-job queue-wait and run timings for
//!   `/metrics`.
//! * **Self-cleaning** — finished jobs are evicted once they have been
//!   terminal for [`JobConfig::ttl`]; a polled-then-forgotten job
//!   cannot leak memory forever.
//! * **Panic-isolated** — a panicking job is recorded as
//!   [`JobState::Failed`]; the worker thread survives and keeps
//!   draining the queue.
//! * **Std-only** — a mutex, a condvar and plain threads; no runtime.
//!
//! Submit and poll:
//!
//! ```
//! use lewis_jobs::{JobConfig, JobManager, JobState};
//! use std::time::Duration;
//!
//! let jobs: JobManager<u32> = JobManager::new(JobConfig {
//!     capacity: 8,
//!     workers: 2,
//!     ttl: Duration::from_secs(60),
//! });
//! let id = jobs.submit(|| 6 * 7).expect("queue has room");
//! let answer = loop {
//!     match jobs.status(id).expect("within the TTL").state {
//!         JobState::Done(v) => break v,
//!         JobState::Failed(e) => panic!("job failed: {e}"),
//!         JobState::Queued | JobState::Running => std::thread::yield_now(),
//!     }
//! };
//! assert_eq!(answer, 42);
//! ```
//!
//! [`submit`]: JobManager::submit

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Opaque job ticket, unique per [`JobManager`] for its lifetime.
/// Formats as a plain decimal (`job-42` style prefixes are the
/// server's business), parses back with [`str::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse().map(JobId)
    }
}

/// Sizing and retention knobs for a [`JobManager`].
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Most jobs allowed to sit queued (running and finished jobs do
    /// not count). `0` rejects every submission — useful for tests and
    /// for disabling the lane without a second code path.
    pub capacity: usize,
    /// Worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// How long a finished job stays pollable. Eviction is lazy — it
    /// happens on the next [`JobManager::submit`] or
    /// [`JobManager::status`] call after expiry.
    pub ttl: Duration,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            capacity: 64,
            workers: 2,
            ttl: Duration::from_secs(300),
        }
    }
}

/// The queue is at capacity; the caller should shed load (HTTP `429`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is at capacity")
    }
}

impl std::error::Error for QueueFull {}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState<T> {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the payload is the job's result.
    Done(T),
    /// The job panicked; the payload describes the failure.
    Failed(String),
}

impl<T> JobState<T> {
    /// Done or Failed — the job will never change state again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }

    /// The lifecycle stage as a lowercase wire word.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// A point-in-time view of one job, as returned by
/// [`JobManager::status`].
#[derive(Debug, Clone)]
pub struct JobView<T> {
    /// Current lifecycle state (result included when `Done`).
    pub state: JobState<T>,
    /// Time spent queued (final once the job starts running).
    pub waited: Duration,
    /// Time spent executing so far (final once terminal); `None` while
    /// still queued.
    pub ran: Option<Duration>,
}

/// Lifetime counters, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounters {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Submissions rejected with [`QueueFull`].
    pub rejected: u64,
    /// Finished jobs evicted after their TTL.
    pub expired: u64,
}

/// One job's record: its state plus the instants bounding each stage.
struct JobRecord<T> {
    state: JobState<T>,
    queued_at: Instant,
    started_at: Option<Instant>,
    finished_at: Option<Instant>,
}

type BoxedJob<T> = Box<dyn FnOnce() -> T + Send + 'static>;

struct State<T> {
    queue: VecDeque<(JobId, BoxedJob<T>)>,
    jobs: HashMap<JobId, JobRecord<T>>,
    counters: JobCounters,
    next_id: u64,
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    wake: Condvar,
    capacity: usize,
    ttl: Duration,
}

impl<T> Shared<T> {
    /// Lock the state, recovering from a poisoned mutex: the state is
    /// a queue plus per-job records, every transition of which is a
    /// single-field write — a panic between fields cannot leave it
    /// unsound, only a job stuck, and the panicking worker already
    /// recorded the job as failed or will never touch it again.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Drop finished records whose TTL has elapsed. Lazy: called under
    /// the lock from submit/status, never from a timer thread.
    fn evict_expired(&self, state: &mut State<T>, now: Instant) {
        let ttl = self.ttl;
        let before = state.jobs.len();
        state.jobs.retain(|_, job| {
            job.finished_at
                .is_none_or(|at| now.duration_since(at) < ttl)
        });
        state.counters.expired += (before - state.jobs.len()) as u64;
    }
}

/// A bounded job queue with `workers` threads draining it. `T` is the
/// job result type — the serving layer uses a status-code/body pair so
/// a finished job replays exactly like a synchronous response.
///
/// Dropping the manager shuts the lane down: queued-but-unstarted jobs
/// are abandoned and the worker threads are joined.
pub struct JobManager<T> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> JobManager<T> {
    /// Start a manager with `config.workers` (at least one) threads.
    pub fn new(config: JobConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                counters: JobCounters::default(),
                next_id: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            capacity: config.capacity,
            ttl: config.ttl,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lewis-job-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| {
                        // lint:allow(no-panic-on-input): spawn fails only
                        // on resource exhaustion at process start, never
                        // from request bytes.
                        panic!("spawning job worker: {e}")
                    })
            })
            .collect();
        JobManager { shared, workers }
    }

    /// Queue `job` and return its ticket, or [`QueueFull`] when
    /// `capacity` jobs are already waiting.
    pub fn submit(&self, job: impl FnOnce() -> T + Send + 'static) -> Result<JobId, QueueFull> {
        let now = Instant::now();
        let mut state = self.shared.lock();
        self.shared.evict_expired(&mut state, now);
        if state.queue.len() >= self.shared.capacity {
            state.counters.rejected += 1;
            return Err(QueueFull);
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobRecord {
                state: JobState::Queued,
                queued_at: now,
                started_at: None,
                finished_at: None,
            },
        );
        state.queue.push_back((id, Box::new(job)));
        state.counters.submitted += 1;
        drop(state);
        self.shared.wake.notify_one();
        Ok(id)
    }

    /// The job's current state and timings, or `None` when the id was
    /// never issued or the job expired (the server answers `404` for
    /// both — an expired ticket is indistinguishable from a bogus one
    /// by design, so retention is a pure sizing knob).
    pub fn status(&self, id: JobId) -> Option<JobView<T>>
    where
        T: Clone,
    {
        let now = Instant::now();
        let mut state = self.shared.lock();
        self.shared.evict_expired(&mut state, now);
        let job = state.jobs.get(&id)?;
        let started = job.started_at;
        Some(JobView {
            state: job.state.clone(),
            waited: started.unwrap_or(now).duration_since(job.queued_at),
            ran: started.map(|s| job.finished_at.unwrap_or(now).duration_since(s)),
        })
    }

    /// Jobs queued right now (the admission bound applies to this).
    pub fn depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> JobCounters {
        self.shared.lock().counters
    }
}

impl<T> Drop for JobManager<T> {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            state.queue.clear();
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(shared: &Shared<T>) {
    loop {
        let (id, job) = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(next) = state.queue.pop_front() {
                    break next;
                }
                state = shared.wake.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        };
        let started = Instant::now();
        {
            let mut state = shared.lock();
            if let Some(record) = state.jobs.get_mut(&id) {
                record.state = JobState::Running;
                record.started_at = Some(started);
            }
        }
        // Isolate panics: a failing job must not take the worker (and
        // every job queued behind it) down with it.
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let finished = Instant::now();
        let mut state = shared.lock();
        match outcome {
            Ok(value) => {
                state.counters.completed += 1;
                if let Some(record) = state.jobs.get_mut(&id) {
                    record.state = JobState::Done(value);
                    record.finished_at = Some(finished);
                }
            }
            Err(panic) => {
                state.counters.failed += 1;
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_string());
                if let Some(record) = state.jobs.get_mut(&id) {
                    record.state = JobState::Failed(detail);
                    record.finished_at = Some(finished);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T: Clone + Send + 'static>(jobs: &JobManager<T>, id: JobId) -> JobState<T> {
        loop {
            let view = jobs.status(id).expect("job evaporated while polling");
            if view.state.is_terminal() {
                return view.state;
            }
            std::thread::yield_now();
        }
    }

    fn manager(capacity: usize, ttl: Duration) -> JobManager<u32> {
        JobManager::new(JobConfig {
            capacity,
            workers: 2,
            ttl,
        })
    }

    #[test]
    fn submit_poll_done_carries_the_result() {
        let jobs = manager(8, Duration::from_secs(60));
        let id = jobs.submit(|| 41 + 1).unwrap();
        assert_eq!(drain(&jobs, id), JobState::Done(42));
        let view = jobs.status(id).unwrap();
        assert_eq!(view.state.name(), "done");
        assert!(view.ran.is_some(), "terminal jobs report a run time");
        let c = jobs.counters();
        assert_eq!((c.submitted, c.completed, c.failed), (1, 1, 0));
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        let jobs = manager(8, Duration::from_secs(60));
        let ids: Vec<_> = (0..6u32)
            .map(|i| jobs.submit(move || i * i).unwrap())
            .collect();
        for (i, id) in ids.into_iter().enumerate() {
            let i = i as u32;
            assert_eq!(drain(&jobs, id), JobState::Done(i * i));
        }
        assert_eq!(jobs.depth(), 0);
    }

    #[test]
    fn zero_capacity_rejects_every_submission() {
        let jobs = manager(0, Duration::from_secs(60));
        assert_eq!(jobs.submit(|| 1).unwrap_err(), QueueFull);
        assert_eq!(jobs.counters().rejected, 1);
    }

    #[test]
    fn overflow_is_a_typed_rejection() {
        let jobs = manager(1, Duration::from_secs(60));
        // wedge both workers so the queue backs up
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let mut wedged = Vec::new();
        for _ in 0..2 {
            // capacity is 1, so wait for the previous wedge job to be
            // picked up before queueing the next (the queue drains at
            // scheduler speed, which is arbitrary under test load)
            while jobs.depth() > 0 {
                std::thread::yield_now();
            }
            let gate = Arc::clone(&gate);
            wedged.push(
                jobs.submit(move || {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    0
                })
                .unwrap(),
            );
        }
        // wait until both are off the queue and running
        while jobs.depth() > 0 {
            std::thread::yield_now();
        }
        let queued = jobs.submit(|| 7).unwrap();
        assert_eq!(jobs.submit(|| 8).unwrap_err(), QueueFull);
        // release the wedge; everything accepted still finishes
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        for id in wedged {
            assert_eq!(drain(&jobs, id), JobState::Done(0));
        }
        assert_eq!(drain(&jobs, queued), JobState::Done(7));
        assert_eq!(jobs.counters().rejected, 1);
    }

    #[test]
    fn panicking_jobs_fail_and_the_worker_survives() {
        let jobs = manager(8, Duration::from_secs(60));
        let bad = jobs.submit(|| panic!("surrogate exploded")).unwrap();
        match drain(&jobs, bad) {
            JobState::Failed(detail) => assert!(detail.contains("surrogate exploded")),
            other => panic!("expected Failed, got {other:?}"),
        }
        // the lane still works
        let good = jobs.submit(|| 5).unwrap();
        assert_eq!(drain(&jobs, good), JobState::Done(5));
        let c = jobs.counters();
        assert_eq!((c.completed, c.failed), (1, 1));
    }

    #[test]
    fn finished_jobs_expire_after_the_ttl() {
        let jobs = manager(8, Duration::from_millis(20));
        let id = jobs.submit(|| 1).unwrap();
        assert!(drain(&jobs, id).is_terminal());
        std::thread::sleep(Duration::from_millis(40));
        assert!(jobs.status(id).is_none(), "expired jobs read as unknown");
        assert_eq!(jobs.counters().expired, 1);
    }

    #[test]
    fn unknown_ids_are_none() {
        let jobs = manager(8, Duration::from_secs(60));
        assert!(jobs.status(JobId(999)).is_none());
    }

    #[test]
    fn job_ids_round_trip_through_strings() {
        let id = JobId(17);
        assert_eq!(id.to_string().parse::<JobId>().unwrap(), id);
        assert!("not-a-job".parse::<JobId>().is_err());
    }

    #[test]
    fn drop_joins_workers_and_abandons_the_queue() {
        let jobs = manager(64, Duration::from_secs(60));
        for i in 0..32u32 {
            let _ = jobs.submit(move || i);
        }
        drop(jobs); // must not hang
    }
}
