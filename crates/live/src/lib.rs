//! # lewis-live — streaming ingestion over frozen LEWIS engines
//!
//! Every engine in this workspace is built from a *frozen* table: the
//! counting passes, bitmap indexes and surrogate fits all assume the
//! rows they saw at build time are the rows forever. `lewis-live` turns
//! such an engine into a **live table** without giving up the repo's
//! bit-identical-results guarantee:
//!
//! - appended rows land in a **write-side delta shard**, dictionary
//!   coded against the existing schema — a batch is validated in full
//!   before any row lands, so a bad row rejects the whole batch and the
//!   table never holds half an append;
//! - counters are maintained **incrementally**: the engine merges delta
//!   partial counts after base counts in shard-index order, so a query
//!   against the live view answers byte-for-byte what a cold build over
//!   the concatenated table would answer (property-tested in
//!   `tests/live_parity.rs` at the workspace root);
//! - the counting-pass cache is invalidated *precisely* — only passes
//!   whose context matches an appended row go cold — and fitted
//!   recourse surrogates are marked stale rather than flushed, so their
//!   keys refit lazily instead of vanishing;
//! - once the delta grows past a row threshold, a **background
//!   compactor** folds it into the sharded base behind an atomic
//!   [`Arc<Engine>`] swap. Readers never block on compaction and never
//!   observe a half-folded table; rows appended *during* the fold
//!   simply re-seed the next delta.
//!
//! Compaction triggers on delta *size*, never on wall-clock time: the
//! crate does no time reads at all, keeping replay deterministic.
//!
//! ## Append → query → compact
//!
//! ```
//! use lewis_core::{Engine, ExplainRequest};
//! use lewis_live::LiveEngine;
//! use std::sync::Arc;
//! use tabular::{AttrId, Domain, Schema, Table};
//!
//! // a tiny labelled table: savings drives approval
//! let mut schema = Schema::new();
//! schema.push("savings", Domain::categorical(["low", "high"]));
//! schema.push("pred", Domain::boolean());
//! let mut table = Table::new(schema);
//! for row in [[0, 0], [0, 0], [0, 1], [1, 1], [1, 1], [1, 0]] {
//!     table.push_row(&row).unwrap();
//! }
//! let engine = Engine::builder(table)
//!     .prediction(AttrId(1), 1)
//!     .features(&[AttrId(0)])
//!     .build()
//!     .unwrap();
//!
//! let live = LiveEngine::new(Arc::new(engine));
//!
//! // append two approved high-savings rows; the batch is atomic
//! let receipt = live.append_rows(&[vec![1, 1], vec![1, 1]]).unwrap();
//! assert_eq!((receipt.appended, receipt.total_rows), (2, 8));
//! assert_eq!(receipt.pending_delta_rows, 2);
//!
//! // queries see base + delta immediately
//! let warm = live.engine().run(&ExplainRequest::Global).unwrap();
//!
//! // fold the delta into the base; answers do not change
//! let folded = live.compact().unwrap();
//! assert_eq!(folded.folded_rows, 2);
//! assert_eq!(live.status().pending_delta_rows, 0);
//! let after = live.engine().run(&ExplainRequest::Global).unwrap();
//! assert_eq!(format!("{warm:?}"), format!("{after:?}"));
//!
//! // a bad code rejects the whole batch — nothing landed
//! assert!(live.append_rows(&[vec![0, 1], vec![9, 0]]).is_err());
//! assert_eq!(live.status().total_rows, 8);
//! ```
//!
//! ## Concurrency model
//!
//! One mutex guards the writer state (the engine handle, the growing
//! delta table, the compacting flag). Appends serialise on it; readers
//! touch it only long enough to clone an [`Arc<Engine>`], then query
//! entirely lock-free on an immutable engine generation. The expensive
//! part of compaction — [`Engine::compacted`], which rebuilds the
//! folded table, shards and index — runs *outside* the lock; only the
//! final pointer swap re-takes it.

use lewis_core::{Engine, Result};
use std::sync::{Arc, Mutex, PoisonError};
use tabular::{Table, Value};

/// Delta rows that trigger [`LiveEngine::maybe_spawn_compaction`].
///
/// Appends are O(delta) thanks to incremental order statistics, so the
/// threshold bounds both per-append latency and the overlay's memory;
/// it is deliberately small next to the bases it shields.
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 8192;

/// Writer-side state, guarded by the one mutex in [`LiveEngine`].
struct State {
    /// The current engine generation; readers clone this handle.
    engine: Arc<Engine>,
    /// Every row appended since `engine`'s base froze. Mirrors the
    /// engine's delta overlay row-for-row; re-seeded at compaction.
    delta: Table,
    /// A compaction fold is running outside the lock.
    compacting: bool,
}

/// What an accepted append did. One receipt per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Rows this batch added (the whole batch, or the call errored).
    pub appended: usize,
    /// Logical rows now served (base + delta).
    pub total_rows: usize,
    /// The table's row-version watermark after this batch. Equal to
    /// `total_rows`: every append advances it, compaction never does.
    pub version: u64,
    /// Delta rows awaiting compaction.
    pub pending_delta_rows: usize,
}

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReceipt {
    /// Delta rows folded into the base (0 when skipped or idle).
    pub folded_rows: usize,
    /// Delta rows still pending — rows appended while the fold ran.
    pub pending_delta_rows: usize,
    /// Another fold was already in flight, so this call did nothing.
    pub skipped: bool,
}

/// A point-in-time view of a live table, for metrics and listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveStatus {
    /// Rows in the frozen base shards.
    pub base_rows: usize,
    /// Delta rows awaiting compaction.
    pub pending_delta_rows: usize,
    /// Logical rows served (base + delta).
    pub total_rows: usize,
    /// Row-version watermark (= `total_rows`).
    pub version: u64,
    /// A background fold is currently running.
    pub compacting: bool,
}

/// A frozen [`Engine`] promoted to an appendable live table.
///
/// See the [crate docs](self) for the data model and concurrency
/// story. Construct one per served table, share it behind an [`Arc`],
/// and hand readers [`LiveEngine::engine`] clones.
pub struct LiveEngine {
    state: Mutex<State>,
    threshold: usize,
}

/// A poisoned writer mutex means an append or fold panicked mid-swap.
/// Every mutation leaves `State` consistent before releasing the lock
/// (clone-then-swap, never in-place), so the inner value is still
/// coherent; recover it rather than propagating the poison.
fn recover<T>(r: std::result::Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl LiveEngine {
    /// Promote `engine` to a live table.
    ///
    /// The engine may already carry a delta overlay (an engine restored
    /// from a mid-stream v5 pack): appending resumes from its watermark
    /// as if the process had never restarted.
    pub fn new(engine: Arc<Engine>) -> LiveEngine {
        let delta = match engine.delta_table() {
            Some(delta) => (**delta).clone(),
            None => Table::new(engine.table().schema().clone()),
        };
        LiveEngine {
            state: Mutex::new(State {
                engine,
                delta,
                compacting: false,
            }),
            threshold: DEFAULT_COMPACTION_THRESHOLD,
        }
    }

    /// Replace the [`DEFAULT_COMPACTION_THRESHOLD`].
    ///
    /// `rows == usize::MAX` effectively disables automatic compaction;
    /// explicit [`LiveEngine::compact`] calls still fold.
    pub fn with_compaction_threshold(mut self, rows: usize) -> LiveEngine {
        self.threshold = rows.max(1);
        self
    }

    /// The delta-row threshold that arms background compaction.
    pub fn compaction_threshold(&self) -> usize {
        self.threshold
    }

    /// The current engine generation. The handle is immutable — queries
    /// on it never block appends or compaction, and later appends never
    /// change answers it already gave.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&recover(self.state.lock()).engine)
    }

    /// Row counts, watermark and compactor state, in one locked peek.
    pub fn status(&self) -> LiveStatus {
        let st = recover(self.state.lock());
        let total = st.engine.total_rows();
        LiveStatus {
            base_rows: st.engine.table().n_rows(),
            pending_delta_rows: st.engine.delta_rows(),
            total_rows: total,
            version: total as u64,
            compacting: st.compacting,
        }
    }

    /// Append a batch of dictionary-coded rows (schema order, including
    /// the prediction column).
    ///
    /// The batch is validated in full — arity and domain of every row —
    /// before any row lands; on error the table is untouched. On
    /// success the swapped-in engine generation answers every query
    /// kind exactly as a cold build over the concatenated table would,
    /// with only the counting passes an appended row actually matches
    /// invalidated and every fitted surrogate kept resident (stale,
    /// refit on next use).
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<AppendReceipt> {
        let mut st = recover(self.state.lock());
        if rows.is_empty() {
            let total = st.engine.total_rows();
            return Ok(AppendReceipt {
                appended: 0,
                total_rows: total,
                version: total as u64,
                pending_delta_rows: st.engine.delta_rows(),
            });
        }
        // Grow a copy first: push_row validates arity and domain, and
        // an error leaves the published state untouched (atomicity).
        let mut grown = st.delta.clone();
        for row in rows {
            grown.push_row(row)?;
        }
        let next = st.engine.with_delta(Arc::new(grown.clone()), rows)?;
        st.delta = grown;
        st.engine = Arc::new(next);
        let total = st.engine.total_rows();
        Ok(AppendReceipt {
            appended: rows.len(),
            total_rows: total,
            version: total as u64,
            pending_delta_rows: st.engine.delta_rows(),
        })
    }

    /// Fold the delta into the sharded base, synchronously.
    ///
    /// The fold itself runs without the writer lock, so appends and
    /// reads proceed while it works; the result is published with one
    /// atomic handle swap. Rows appended mid-fold become the next
    /// delta, with exactly the cache invalidation and surrogate
    /// staleness their append already implied. Answers never change
    /// across a fold — same logical rows, same integers.
    ///
    /// If another fold is already in flight the call is a no-op and the
    /// receipt says `skipped`.
    pub fn compact(&self) -> Result<CompactReceipt> {
        let (engine, folded_rows) = {
            let mut st = recover(self.state.lock());
            if st.compacting {
                return Ok(CompactReceipt {
                    folded_rows: 0,
                    pending_delta_rows: st.engine.delta_rows(),
                    skipped: true,
                });
            }
            st.compacting = true;
            (Arc::clone(&st.engine), st.engine.delta_rows())
        };

        // The expensive part — concatenating columns, re-sharding,
        // rebuilding the index — happens outside the lock.
        let folded = engine.compacted();

        let mut st = recover(self.state.lock());
        st.compacting = false;
        let folded = folded?;

        // Rows appended while the fold ran are the tail of the delta
        // beyond what we folded; they seed the next delta. Passing them
        // as `appended` re-applies their cache invalidation and
        // surrogate staleness on top of the folded engine's carried
        // state (the folded engine only knows about the first
        // `folded_rows` delta rows).
        let mut remaining = Table::new(st.delta.schema().clone());
        let mut appended_meanwhile = Vec::new();
        for r in folded_rows..st.delta.n_rows() {
            let row = st.delta.row(r)?;
            remaining.push_row(&row)?;
            appended_meanwhile.push(row);
        }
        let next = if appended_meanwhile.is_empty() {
            folded
        } else {
            folded.with_delta(Arc::new(remaining.clone()), &appended_meanwhile)?
        };
        st.delta = remaining;
        st.engine = Arc::new(next);
        Ok(CompactReceipt {
            folded_rows,
            pending_delta_rows: st.engine.delta_rows(),
            skipped: false,
        })
    }

    /// Spawn a background [`LiveEngine::compact`] if the delta has
    /// reached the threshold and no fold is already running. Returns
    /// whether a fold was spawned. Call after appends; never blocks.
    pub fn maybe_spawn_compaction(self: &Arc<Self>) -> bool {
        {
            let st = recover(self.state.lock());
            if st.compacting || st.engine.delta_rows() < self.threshold {
                return false;
            }
        }
        let live = Arc::clone(self);
        std::thread::spawn(move || {
            // compact() clears the compacting flag on every path; a
            // racing fold that got there first just reports `skipped`.
            let _ = live.compact();
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lewis_core::ExplainRequest;
    use tabular::{AttrId, Domain, Schema, Table};

    fn seed_engine() -> Arc<Engine> {
        let mut schema = Schema::new();
        schema.push("status", Domain::categorical(["none", "low", "high"]));
        schema.push("savings", Domain::categorical(["low", "high"]));
        schema.push("pred", Domain::boolean());
        let mut table = Table::new(schema);
        for row in [
            [0, 0, 0],
            [1, 0, 0],
            [2, 0, 1],
            [0, 1, 0],
            [1, 1, 1],
            [2, 1, 1],
            [2, 0, 1],
            [0, 1, 0],
        ] {
            table.push_row(&row).unwrap();
        }
        Arc::new(
            Engine::builder(table)
                .prediction(AttrId(2), 1)
                .features(&[AttrId(0), AttrId(1)])
                .build()
                .unwrap(),
        )
    }

    fn global(engine: &Engine) -> String {
        format!("{:?}", engine.run(&ExplainRequest::Global).unwrap())
    }

    #[test]
    fn appends_advance_the_watermark_and_the_answers() {
        let live = LiveEngine::new(seed_engine());
        let before = global(&live.engine());
        let receipt = live
            .append_rows(&[vec![2, 1, 1], vec![2, 1, 1], vec![0, 0, 0]])
            .unwrap();
        assert_eq!(receipt.appended, 3);
        assert_eq!(receipt.total_rows, 11);
        assert_eq!(receipt.version, 11);
        assert_eq!(receipt.pending_delta_rows, 3);
        let after = global(&live.engine());
        assert_ne!(before, after, "three skewed rows must move the scores");

        // cold build over the concatenated table answers identically
        let mut table = (*seed_engine().table()).clone();
        for row in [[2, 1, 1], [2, 1, 1], [0, 0, 0]] {
            table.push_row(&row).unwrap();
        }
        let cold = Engine::builder(table)
            .prediction(AttrId(2), 1)
            .features(&[AttrId(0), AttrId(1)])
            .build()
            .unwrap();
        assert_eq!(after, global(&cold));
    }

    #[test]
    fn a_bad_row_rejects_the_whole_batch() {
        let live = LiveEngine::new(seed_engine());
        let err = live.append_rows(&[vec![0, 0, 0], vec![3, 0, 0]]);
        assert!(err.is_err(), "code 3 is outside status's domain");
        let err = live.append_rows(&[vec![0, 0]]);
        assert!(err.is_err(), "arity 2 against a 3-column schema");
        let status = live.status();
        assert_eq!(
            (status.total_rows, status.pending_delta_rows),
            (8, 0),
            "failed batches must leave nothing behind"
        );
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let live = LiveEngine::new(seed_engine());
        let receipt = live.append_rows(&[]).unwrap();
        assert_eq!(receipt.appended, 0);
        assert_eq!(receipt.total_rows, 8);
        assert_eq!(live.status().version, 8);
    }

    #[test]
    fn compaction_folds_without_changing_answers_or_the_watermark() {
        let live = LiveEngine::new(seed_engine());
        live.append_rows(&[vec![2, 1, 1], vec![0, 0, 0]]).unwrap();
        let before = global(&live.engine());
        let receipt = live.compact().unwrap();
        assert_eq!(receipt.folded_rows, 2);
        assert_eq!(receipt.pending_delta_rows, 0);
        assert!(!receipt.skipped);
        let status = live.status();
        assert_eq!(status.base_rows, 10);
        assert_eq!(status.pending_delta_rows, 0);
        assert_eq!(
            status.version, 10,
            "compaction must not advance the version"
        );
        assert_eq!(before, global(&live.engine()));

        // idle compaction is harmless
        let receipt = live.compact().unwrap();
        assert_eq!(receipt.folded_rows, 0);
        assert!(!receipt.skipped);
    }

    #[test]
    fn appends_keep_flowing_after_compaction() {
        let live = LiveEngine::new(seed_engine());
        live.append_rows(&[vec![1, 1, 1]]).unwrap();
        live.compact().unwrap();
        let receipt = live.append_rows(&[vec![1, 0, 0]]).unwrap();
        assert_eq!(receipt.total_rows, 10);
        assert_eq!(receipt.pending_delta_rows, 1);

        let mut table = (*seed_engine().table()).clone();
        table.push_row(&[1, 1, 1]).unwrap();
        table.push_row(&[1, 0, 0]).unwrap();
        let cold = Engine::builder(table)
            .prediction(AttrId(2), 1)
            .features(&[AttrId(0), AttrId(1)])
            .build()
            .unwrap();
        assert_eq!(global(&live.engine()), global(&cold));
    }

    #[test]
    fn reader_handles_are_stable_across_appends() {
        let live = LiveEngine::new(seed_engine());
        let old = live.engine();
        let before = global(&old);
        live.append_rows(&[vec![2, 1, 1], vec![2, 1, 1]]).unwrap();
        assert_eq!(
            before,
            global(&old),
            "a generation handed out keeps answering from its snapshot"
        );
        assert_ne!(before, global(&live.engine()));
    }

    #[test]
    fn threshold_arms_background_compaction() {
        let live = Arc::new(LiveEngine::new(seed_engine()).with_compaction_threshold(2));
        live.append_rows(&[vec![0, 0, 0]]).unwrap();
        assert!(!live.maybe_spawn_compaction(), "1 < threshold 2");
        live.append_rows(&[vec![1, 1, 1]]).unwrap();
        assert!(live.maybe_spawn_compaction());
        // the fold runs on its own thread; wait for it to publish
        while live.status().pending_delta_rows > 0 || live.status().compacting {
            std::thread::yield_now();
        }
        assert_eq!(live.status().base_rows, 10);
        assert_eq!(live.status().total_rows, 10);
    }

    #[test]
    fn concurrent_appends_and_reads_stay_consistent() {
        let live = Arc::new(LiveEngine::new(seed_engine()).with_compaction_threshold(4));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        let status = (w + i) % 3;
                        live.append_rows(&[vec![status, 1, 1]]).unwrap();
                        live.maybe_spawn_compaction();
                        let _ = live.engine().run(&ExplainRequest::Global).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(live.status().total_rows, 8 + 32);
        // settle any in-flight fold, then a final fold must converge
        while live.status().compacting {
            std::thread::yield_now();
        }
        live.compact().unwrap();
        let status = live.status();
        assert_eq!(status.base_rows, 40);
        assert_eq!(status.pending_delta_rows, 0);
    }

    #[test]
    fn a_restored_mid_stream_engine_resumes_appending() {
        let live = LiveEngine::new(seed_engine());
        live.append_rows(&[vec![2, 1, 1]]).unwrap();
        let snapshot = live.engine().snapshot();
        let restored = Arc::new(Engine::restore(snapshot).unwrap());
        assert_eq!(restored.delta_rows(), 1);

        let resumed = LiveEngine::new(restored);
        assert_eq!(resumed.status().total_rows, 9);
        let receipt = resumed.append_rows(&[vec![0, 0, 0]]).unwrap();
        assert_eq!(receipt.total_rows, 10);
        assert_eq!(receipt.pending_delta_rows, 2);

        let mut table = (*seed_engine().table()).clone();
        table.push_row(&[2, 1, 1]).unwrap();
        table.push_row(&[0, 0, 0]).unwrap();
        let cold = Engine::builder(table)
            .prediction(AttrId(2), 1)
            .features(&[AttrId(0), AttrId(1)])
            .build()
            .unwrap();
        assert_eq!(global(&resumed.engine()), global(&cold));
    }
}
