//! Property-based tests for the tabular engine's own invariants.

use proptest::prelude::*;
use tabular::{read_csv_str, write_csv_string, Domain, Schema, Table};

/// Printable label strings including CSV-hostile characters.
fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ,\"\n]{1,12}").expect("valid regex")
}

proptest! {
    /// CSV round-trips preserve every cell's label, even with embedded
    /// commas, quotes and newlines.
    #[test]
    fn csv_roundtrip_preserves_labels(
        labels in proptest::collection::vec(arb_label(), 2..6),
        rows in proptest::collection::vec(0usize..6, 1..30),
    ) {
        // dedup labels (domains require distinct labels for lookup)
        let mut uniq: Vec<String> = Vec::new();
        for l in labels {
            if !uniq.contains(&l) {
                uniq.push(l);
            }
        }
        prop_assume!(uniq.len() >= 2);
        let mut schema = Schema::new();
        schema.push("col", Domain::categorical(uniq.clone()));
        let mut t = Table::new(schema);
        for r in rows {
            t.push_row(&[(r % uniq.len()) as u32]).unwrap();
        }
        let csv = write_csv_string(&t).expect("valid table exports");
        let back = read_csv_str(&csv).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            let orig = &uniq[t.get(r, tabular::AttrId(0)).unwrap() as usize];
            let new_code = back.get(r, tabular::AttrId(0)).unwrap();
            let new_label = back
                .schema()
                .domain(tabular::AttrId(0))
                .unwrap()
                .label(new_code);
            prop_assert_eq!(orig, &new_label, "row {}", r);
        }
    }

    /// Binned domains: bin_of is monotone and stays in range for any
    /// query point, including far outside the edges.
    #[test]
    fn bin_of_is_monotone_total(
        mut edges in proptest::collection::vec(-100.0f64..100.0, 2..8),
        queries in proptest::collection::vec(-1000.0f64..1000.0, 1..50),
    ) {
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        edges.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(edges.len() >= 2);
        let dom = Domain::binned(edges.clone());
        let card = dom.cardinality();
        let mut sorted = queries.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u32;
        for (i, &q) in sorted.iter().enumerate() {
            let bin = dom.bin_of(q).unwrap();
            prop_assert!((bin as usize) < card);
            if i > 0 {
                prop_assert!(bin >= prev, "monotonicity violated at {}", q);
            }
            prev = bin;
        }
        // midpoints fall inside their own bin
        for v in 0..card as u32 {
            let mid = dom.bin_midpoint(v).unwrap();
            prop_assert_eq!(dom.bin_of(mid).unwrap(), v);
        }
    }

    /// Select never reorders or corrupts cells.
    #[test]
    fn select_is_a_faithful_projection(
        data in proptest::collection::vec((0u32..4, 0u32..3), 1..40),
        pick in proptest::collection::vec(0usize..40, 0..20),
    ) {
        let mut schema = Schema::new();
        schema.push("a", Domain::categorical(["0", "1", "2", "3"]));
        schema.push("b", Domain::categorical(["x", "y", "z"]));
        let mut t = Table::new(schema);
        for &(a, b) in &data {
            t.push_row(&[a, b]).unwrap();
        }
        let picks: Vec<usize> = pick.into_iter().filter(|&i| i < t.n_rows()).collect();
        let s = t.select(&picks).unwrap();
        prop_assert_eq!(s.n_rows(), picks.len());
        for (new_r, &old_r) in picks.iter().enumerate() {
            prop_assert_eq!(s.row(new_r).unwrap(), t.row(old_r).unwrap());
        }
    }
}
