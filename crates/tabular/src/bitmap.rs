//! Fixed-length row bitmaps: the building block of bitmap indexes.
//!
//! A [`Bitmap`] is a set of row positions over a fixed row range,
//! packed 64 rows per `u64` word. Conjunctive row predicates over
//! dictionary-coded columns — exactly the shape of every LEWIS
//! counting query — reduce to word-wise `AND` plus `popcount`, which
//! is why the `lewis-index` crate stores one bitmap per
//! `(attribute, code)` pair.
//!
//! Bit `i` of word `i / 64` (bit position `i % 64`) corresponds to row
//! `i` of the covered range. Trailing bits past `len` are always zero —
//! an invariant [`Bitmap::from_words`] enforces on untrusted input so
//! popcounts can never over-report.

use crate::domain::Value;
use crate::error::TabularError;
use crate::Result;

/// A fixed-length bit set over row positions `0..len`, packed into
/// `u64` words (least-significant bit first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

/// Number of `u64` words needed to hold `len` bits.
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitmap {
    /// An all-zero bitmap over `len` rows.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0u64; words_for(len)],
            len,
        }
    }

    /// An all-one bitmap over `len` rows (trailing bits zero).
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Reassemble a bitmap from raw words (the deserialization path).
    /// Rejects a word count that does not match `len` and any set bit
    /// past `len` — both would silently corrupt downstream popcounts.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Bitmap> {
        if words.len() != words_for(len) {
            return Err(TabularError::InvalidArgument(format!(
                "bitmap of {len} rows needs {} words, got {}",
                words_for(len),
                words.len()
            )));
        }
        let b = Bitmap { words, len };
        if let Some(&last) = b.words.last() {
            let used = b.len - (b.words.len() - 1) * 64;
            if used < 64 && last >> used != 0 {
                return Err(TabularError::InvalidArgument(
                    "bitmap has set bits past its row count".into(),
                ));
            }
        }
        Ok(b)
    }

    /// Number of rows covered (bits, not set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words, least-significant bit = lowest row.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Set the bit for row `i`.
    ///
    /// # Panics
    /// Panics (debug) if `i >= len` — construction code controls `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of {} rows", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether the bit for row `i` is set (`false` past the end).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if hw_popcnt() {
            // SAFETY: `hw_popcnt` verified the `popcnt` CPU feature the
            // callee is compiled for.
            return unsafe { kernels::count_ones(&self.words) };
        }
        count_ones_body(&self.words)
    }

    /// `self &= other`. Both bitmaps must cover the same row range.
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len, "AND over mismatched row ranges");
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Write `self & other` into `out` (reusing its allocation) and
    /// return the intersection's popcount — one pass over the words
    /// where `clone` + `and_assign` + `count_ones` would take three.
    /// This is the inner-node primitive of the index's grid walk.
    ///
    /// All three bitmaps must cover the same row range; `out`'s previous
    /// contents are overwritten.
    pub fn and_into(&self, other: &Bitmap, out: &mut Bitmap) -> u64 {
        debug_assert_eq!(self.len, other.len, "AND over mismatched row ranges");
        debug_assert_eq!(self.len, out.len, "AND into a mismatched row range");
        #[cfg(target_arch = "x86_64")]
        if hw_popcnt() {
            // SAFETY: `hw_popcnt` verified the `popcnt` CPU feature the
            // callee is compiled for.
            return unsafe { kernels::and_into(&self.words, &other.words, &mut out.words) };
        }
        and_into_body(&self.words, &other.words, &mut out.words)
    }

    /// Fused two-level intersection counts: returns
    /// `popcount(self & other)` and writes
    /// `popcount(self & other & thirds[j])` into `out[j]`, all in one
    /// pass over the words with no intermediate bitmap. This is the
    /// second-to-last-level kernel of the index's grid walk, where
    /// `thirds` are the leaf attribute's code bitmaps: visiting the
    /// `(self & other)` word once and AND-ing each leaf word against it
    /// in registers replaces a materialized intersection plus one full
    /// re-read per leaf code.
    ///
    /// All bitmaps must cover the same row range; `out` must have
    /// `thirds.len()` slots and is overwritten.
    pub fn and_count_multi(&self, other: &Bitmap, thirds: &[Bitmap], out: &mut [u64]) -> u64 {
        debug_assert_eq!(self.len, other.len, "AND over mismatched row ranges");
        debug_assert_eq!(thirds.len(), out.len(), "one count slot per third bitmap");
        for t in thirds {
            debug_assert_eq!(self.len, t.len(), "AND over mismatched row ranges");
        }
        match (thirds, out) {
            // no leaf codes to split out: a plain fused AND-popcount
            ([], _) => self.and_count(other),
            // one third (binary leaf attributes — the prediction column
            // — land here): branch-free zip the optimizer can unroll
            ([t], [o]) => {
                #[cfg(target_arch = "x86_64")]
                if hw_popcnt() {
                    // SAFETY: `hw_popcnt` verified the `popcnt` CPU
                    // feature the callee is compiled for.
                    let (total, n) =
                        unsafe { kernels::and_count_pair(&self.words, &other.words, &t.words) };
                    *o = n;
                    return total;
                }
                let (total, n) = and_count_pair_body(&self.words, &other.words, &t.words);
                *o = n;
                total
            }
            // wider leaves: word-major with zero-word skipping, which
            // pays off once several popcounts hang off each word
            (thirds, out) => {
                #[cfg(target_arch = "x86_64")]
                if hw_popcnt() {
                    // SAFETY: `hw_popcnt` verified the `popcnt` CPU
                    // feature the callee is compiled for.
                    return unsafe {
                        kernels::and_count_fan(&self.words, &other.words, thirds, out)
                    };
                }
                and_count_fan_body(&self.words, &other.words, thirds, out)
            }
        }
    }

    /// `popcount(self & other)` without materializing the intersection.
    pub fn and_count(&self, other: &Bitmap) -> u64 {
        debug_assert_eq!(self.len, other.len, "AND over mismatched row ranges");
        #[cfg(target_arch = "x86_64")]
        if hw_popcnt() {
            // SAFETY: `hw_popcnt` verified the `popcnt` CPU feature the
            // callee is compiled for.
            return unsafe { kernels::and_count(&self.words, &other.words) };
        }
        and_count_body(&self.words, &other.words)
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Visit the row position of every set bit, in ascending order.
    pub fn for_each_set<F: FnMut(usize)>(&self, mut f: F) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Heap bytes held by the packed words.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn clear_tail(&mut self) {
        let n_words = self.words.len();
        if let Some(last) = self.words.last_mut() {
            let used = self.len - (n_words - 1) * 64;
            if used < 64 {
                *last &= (1u64 << used) - 1;
            }
        }
    }
}

/// Whether the CPU executes the `popcnt` instruction (std caches the
/// CPUID probe, so this is an atomic load after the first call). The
/// portable `u64::count_ones` lowers to a ~12-op bit-twiddling sequence
/// under the baseline x86-64 target; the counting kernels dispatch to
/// [`kernels`] twins compiled with the feature enabled when it is
/// actually there. Both sides run the *same* `_body` code, so dispatch
/// can only change latency, never a count.
#[cfg(target_arch = "x86_64")]
#[inline]
fn hw_popcnt() -> bool {
    std::arch::is_x86_feature_detected!("popcnt")
}

#[inline(always)]
fn count_ones_body(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[inline(always)]
fn and_count_body(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| u64::from((x & y).count_ones()))
        .sum()
}

#[inline(always)]
fn and_into_body(a: &[u64], b: &[u64], out: &mut [u64]) -> u64 {
    let mut count = 0u64;
    for ((&x, &y), w) in a.iter().zip(b).zip(out) {
        let v = x & y;
        *w = v;
        count += u64::from(v.count_ones());
    }
    count
}

#[inline(always)]
fn and_count_pair_body(a: &[u64], b: &[u64], c: &[u64]) -> (u64, u64) {
    let mut total = 0u64;
    let mut n = 0u64;
    for ((&x, &y), &z) in a.iter().zip(b).zip(c) {
        let v = x & y;
        total += u64::from(v.count_ones());
        n += u64::from((v & z).count_ones());
    }
    (total, n)
}

#[inline(always)]
fn and_count_fan_body(a: &[u64], b: &[u64], thirds: &[Bitmap], out: &mut [u64]) -> u64 {
    out.fill(0);
    let mut total = 0u64;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let v = x & y;
        if v == 0 {
            continue;
        }
        total += u64::from(v.count_ones());
        for (t, o) in thirds.iter().zip(out.iter_mut()) {
            *o += u64::from((v & t.words[i]).count_ones());
        }
    }
    total
}

/// The counting kernels recompiled with the `popcnt` target feature, so
/// every `count_ones` lowers to the single instruction. Calling one is
/// `unsafe` (undefined on CPUs without the feature); the only call
/// sites sit behind [`hw_popcnt`].
#[cfg(target_arch = "x86_64")]
mod kernels {
    use super::Bitmap;

    #[target_feature(enable = "popcnt")]
    pub fn count_ones(words: &[u64]) -> u64 {
        super::count_ones_body(words)
    }

    #[target_feature(enable = "popcnt")]
    pub fn and_count(a: &[u64], b: &[u64]) -> u64 {
        super::and_count_body(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) -> u64 {
        super::and_into_body(a, b, out)
    }

    #[target_feature(enable = "popcnt")]
    pub fn and_count_pair(a: &[u64], b: &[u64], c: &[u64]) -> (u64, u64) {
        super::and_count_pair_body(a, b, c)
    }

    #[target_feature(enable = "popcnt")]
    pub fn and_count_fan(a: &[u64], b: &[u64], thirds: &[Bitmap], out: &mut [u64]) -> u64 {
        super::and_count_fan_body(a, b, thirds, out)
    }
}

/// One bitmap per dictionary code of a column slice: `out[code]` has
/// bit `i` set iff `col[i] == code`. This is the per-(attribute, code)
/// index build primitive; passing a [`crate::shard::RowShard`] column
/// slice yields one shard's index set.
///
/// Codes at or above `cardinality` (impossible in a validated
/// [`crate::Table`], whose push path checks domains) are reported as a
/// typed error rather than dropped, so an index can never silently
/// under-count.
pub fn column_bitmaps(col: &[Value], cardinality: usize) -> Result<Vec<Bitmap>> {
    let mut out = vec![Bitmap::zeros(col.len()); cardinality];
    for (row, &code) in col.iter().enumerate() {
        let Some(bitmap) = out.get_mut(code as usize) else {
            return Err(TabularError::InvalidArgument(format!(
                "code {code} at row {row} exceeds cardinality {cardinality}"
            )));
        };
        bitmap.set(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_roundtrip() {
        let mut b = Bitmap::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            b.set(i);
            assert!(b.get(i));
        }
        assert!(!b.get(2));
        assert_eq!(b.count_ones(), 8);
        assert_eq!(b.words().len(), 3);
    }

    #[test]
    fn ones_clears_the_tail() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(!b.get(70));
        let full = Bitmap::ones(128);
        assert_eq!(full.count_ones(), 128);
        let empty = Bitmap::ones(0);
        assert_eq!(empty.count_ones(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn and_matches_set_intersection() {
        let mut a = Bitmap::zeros(100);
        let mut b = Bitmap::zeros(100);
        for i in 0..100 {
            if i % 2 == 0 {
                a.set(i);
            }
            if i % 3 == 0 {
                b.set(i);
            }
        }
        assert_eq!(a.and_count(&b), 17); // multiples of 6 in 0..100
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.count_ones(), 17);
        // the fused single-pass variant agrees and overwrites out
        let mut out = Bitmap::ones(100);
        assert_eq!(a.and_into(&b, &mut out), 17);
        assert_eq!(out, c);
        // the two-level kernel agrees with chained and_counts
        let mut d = Bitmap::zeros(100);
        let mut e = Bitmap::zeros(100);
        for i in 0..100 {
            if i % 5 == 0 {
                d.set(i);
            }
            if i % 4 == 0 {
                e.set(i);
            }
        }
        let mut counts = [7u64, 7u64];
        let total = a.and_count_multi(&b, &[d.clone(), e.clone()], &mut counts);
        assert_eq!(total, 17);
        assert_eq!(counts[0], c.and_count(&d)); // multiples of 30
        assert_eq!(counts[1], c.and_count(&e)); // multiples of 12
        assert_eq!(counts, [4, 9]);
        // every specialized arity agrees
        let mut one = [0u64];
        assert_eq!(
            a.and_count_multi(&b, std::slice::from_ref(&d), &mut one),
            17
        );
        assert_eq!(one, [4]);
        assert_eq!(a.and_count_multi(&b, &[], &mut []), 17);
        assert!(c.get(6) && !c.get(2) && !c.get(3));
        assert!(!c.is_zero());
        let mut collected = Vec::new();
        c.for_each_set(|i| collected.push(i));
        assert_eq!(
            collected,
            (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_words_validates_shape_and_tail() {
        let b = Bitmap::ones(70);
        let rebuilt = Bitmap::from_words(b.words().to_vec(), 70).unwrap();
        assert_eq!(rebuilt, b);
        // wrong word count
        assert!(Bitmap::from_words(vec![0u64; 3], 70).is_err());
        // set bit past len
        assert!(Bitmap::from_words(vec![u64::MAX, u64::MAX], 70).is_err());
        // exact multiple of 64: no tail to check
        assert!(Bitmap::from_words(vec![u64::MAX, u64::MAX], 128).is_ok());
        assert!(Bitmap::from_words(Vec::new(), 0).is_ok());
    }

    #[test]
    fn column_bitmaps_partition_the_rows() {
        let col: Vec<Value> = vec![2, 0, 1, 2, 2, 0];
        let maps = column_bitmaps(&col, 3).unwrap();
        assert_eq!(maps.len(), 3);
        assert_eq!(maps[0].count_ones(), 2);
        assert_eq!(maps[1].count_ones(), 1);
        assert_eq!(maps[2].count_ones(), 3);
        // every row in exactly one bitmap
        let total: u64 = maps.iter().map(Bitmap::count_ones).sum();
        assert_eq!(total, 6);
        assert_eq!(maps[0].and_count(&maps[2]), 0);
        // out-of-domain code is a typed error, not a silent drop
        assert!(column_bitmaps(&col, 2).is_err());
        // empty slice works
        assert!(column_bitmaps(&[], 4).unwrap().iter().all(Bitmap::is_zero));
    }
}
