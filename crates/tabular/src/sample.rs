//! Sampling utilities: train/test splits and bootstrap resampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// Split `n` row indices into `(train, test)` with `test_fraction` of rows
/// in the test set, shuffled by `rng`.
///
/// # Panics
/// Panics if `test_fraction` is outside `[0, 1]`.
pub fn train_test_split<R: Rng>(
    n: usize,
    test_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1], got {test_fraction}"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = (n as f64 * test_fraction).round() as usize;
    let test = idx.split_off(n.saturating_sub(n_test));
    (idx, test)
}

/// `k` indices drawn uniformly with replacement from `0..n` (a bootstrap
/// sample).
pub fn bootstrap_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(n > 0, "cannot bootstrap from an empty population");
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

/// `k` distinct indices sampled without replacement from `0..n`
/// (Fisher–Yates prefix).
pub fn sample_without_replacement<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_partitions_indices() {
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = train_test_split(100, 0.3, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = train_test_split(10, 0.0, &mut rng);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(10, 1.0, &mut rng);
        assert_eq!((train.len(), test.len()), (0, 10));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = train_test_split(50, 0.5, &mut StdRng::seed_from_u64(1));
        let b = train_test_split(50, 0.5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = bootstrap_indices(10, 1000, &mut rng);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&i| i < 10));
        // with 1000 draws from 10 items every item should appear
        let mut seen = [false; 10];
        for &i in &s {
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn without_replacement_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = sample_without_replacement(20, 20, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
        let s2 = sample_without_replacement(100, 5, &mut rng);
        assert_eq!(s2.len(), 5);
        let mut d = s2.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn without_replacement_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = sample_without_replacement(3, 4, &mut rng);
    }
}
