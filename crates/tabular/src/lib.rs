//! # tabular — columnar data engine for discrete, finite domains
//!
//! This crate is the storage and aggregation substrate of the LEWIS
//! reproduction. The paper (§2) assumes *all domains are discrete and
//! finite; continuous domains are assumed to be binned*, so the engine is
//! built around that assumption from the ground up:
//!
//! * every attribute value is a dictionary code (`u32`) into a finite
//!   [`Domain`];
//! * tables are column-major [`Table`]s of code vectors, cache-friendly for
//!   the full-column scans that dominate probability estimation;
//! * conditional probabilities such as `Pr(o | c, x, k)` are estimated with
//!   the grouped counting engine in [`groupby`], with Laplace smoothing;
//! * continuous source data is quantized through [`binning`].
//!
//! The crate has no opinion about causality or models — it only stores,
//! filters, counts and samples.
//!
//! ## Quick example
//!
//! ```
//! use tabular::{Domain, Schema, Table, Context};
//!
//! let mut schema = Schema::new();
//! let sex = schema.push("sex", Domain::categorical(["F", "M"]));
//! let out = schema.push("approved", Domain::categorical(["no", "yes"]));
//! let mut t = Table::new(schema);
//! t.push_row(&[0, 1]).unwrap();
//! t.push_row(&[1, 0]).unwrap();
//! t.push_row(&[1, 1]).unwrap();
//!
//! // Pr(approved = yes | sex = M), unsmoothed
//! let ctx = Context::of([(sex, 1)]);
//! let p = t.conditional_probability(out, 1, &ctx, 0.0).unwrap();
//! assert!((p - 0.5).abs() < 1e-12);
//! ```

pub mod binning;
pub mod bitmap;
pub mod context;
pub mod csv;
pub mod domain;
pub mod error;
pub mod groupby;
pub mod hash;
pub mod sample;
pub mod schema;
pub mod shard;
pub mod table;

pub use binning::{Binner, BinningStrategy};
pub use bitmap::{column_bitmaps, words_for, Bitmap};
pub use context::Context;
pub use csv::{read_csv_file, read_csv_str, write_csv_file, write_csv_string};
pub use domain::{AttrId, Domain, Value};
pub use error::TabularError;
pub use groupby::{Counter, GroupKey};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use sample::{bootstrap_indices, train_test_split};
pub use schema::{Attribute, Schema};
pub use shard::{shard_boundaries, RowShard, ShardedTable, MAX_SHARDS};
pub use table::Table;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TabularError>;
