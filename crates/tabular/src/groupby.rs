//! Grouped counting: the workhorse behind every probability estimate.
//!
//! LEWIS's identification formulas (paper eqs. 19–21) are sums of the form
//! `Σ_c Pr(o | c, x, k) Pr(c | x, k)`, which reduce to contingency counts
//! `n(c, x, o, k)` over the model-labelled dataset. A [`Counter`] builds
//! those counts in one table scan and answers marginal queries by summing
//! over unspecified attributes.
//!
//! Storage is adaptive: when the joint grid `∏ |Dom(Xᵢ)|` is small the
//! counts live in a dense vector (fast, enumerable); otherwise they fall
//! back to a hash map keyed by mixed-radix packed codes.

use crate::context::Context;
use crate::domain::{AttrId, Value};
use crate::error::TabularError;
use crate::hash::FxHashMap;
use crate::shard::ShardedTable;
use crate::table::Table;
use crate::Result;
use std::ops::Range;

/// Mixed-radix packed group key.
pub type GroupKey = u64;

/// Above this grid size counts are kept sparse.
const DENSE_LIMIT: u64 = 1 << 22; // 4M cells * 8B = 32 MiB

#[derive(Debug, Clone)]
enum Storage {
    Dense(Vec<u64>),
    Sparse(FxHashMap<GroupKey, u64>),
}

/// Counts of value combinations over a fixed attribute tuple.
#[derive(Debug, Clone)]
pub struct Counter {
    attrs: Vec<AttrId>,
    radices: Vec<u64>,
    strides: Vec<u64>,
    grid: u64,
    total: u64,
    storage: Storage,
}

impl Counter {
    /// Count all rows of `table` (optionally restricted to rows matching
    /// `ctx`) grouped by `attrs`.
    pub fn build(table: &Table, attrs: &[AttrId], ctx: &Context) -> Result<Self> {
        Self::build_range(table, attrs, ctx, 0..table.n_rows())
    }

    /// [`Counter::build`] restricted to the contiguous row range `rows`
    /// — the per-shard unit of a sharded counting pass.
    pub fn build_range(
        table: &Table,
        attrs: &[AttrId],
        ctx: &Context,
        rows: Range<usize>,
    ) -> Result<Self> {
        if rows.start > rows.end || rows.end > table.n_rows() {
            return Err(TabularError::InvalidArgument(format!(
                "row range {}..{} out of table of {} rows",
                rows.start,
                rows.end,
                table.n_rows()
            )));
        }
        let mut radices = Vec::with_capacity(attrs.len());
        for &a in attrs {
            radices.push(table.schema().cardinality(a)? as u64);
        }
        let mut strides = vec![1u64; attrs.len()];
        let mut grid: u64 = 1;
        // Row-major: last attribute varies fastest.
        for i in (0..attrs.len()).rev() {
            strides[i] = grid;
            grid = grid.checked_mul(radices[i]).ok_or_else(|| {
                TabularError::InvalidArgument("group-by grid overflows u64".into())
            })?;
        }
        let storage = if grid <= DENSE_LIMIT {
            Storage::Dense(vec![0u64; grid as usize])
        } else {
            Storage::Sparse(FxHashMap::default())
        };
        let mut counter = Counter {
            attrs: attrs.to_vec(),
            radices,
            strides,
            grid,
            total: 0,
            storage,
        };

        let cols: Vec<&[Value]> = counter
            .attrs
            .iter()
            .map(|&a| table.column(a))
            .collect::<Result<_>>()?;
        let ctx_cols: Vec<(&[Value], Value)> = ctx
            .iter()
            .map(|(a, v)| table.column(a).map(|c| (c, v)))
            .collect::<Result<_>>()?;

        'rows: for r in rows {
            for &(col, want) in &ctx_cols {
                if col[r] != want {
                    continue 'rows;
                }
            }
            let mut key: GroupKey = 0;
            for (col, stride) in cols.iter().zip(&counter.strides) {
                key += u64::from(col[r]) * stride;
            }
            counter.bump(key);
            counter.total += 1;
        }
        Ok(counter)
    }

    /// Assemble a counter directly from a dense per-cell count vector —
    /// the bitmap-index path's exit door back into the scan world.
    ///
    /// `counts` must be keyed exactly like [`Counter::build`] keys its
    /// dense storage: mixed-radix row-major over `attrs` (last attribute
    /// fastest), one `u64` per grid cell. Because the index produces the
    /// same unsigned integers a scan would and this constructor stores
    /// them in the same dense layout, a counter built here is
    /// indistinguishable from — not just equal to — its scanned twin.
    ///
    /// Only dense-range grids are accepted: past the dense cell limit a scan
    /// would have used sparse storage, so an index path producing a
    /// dense vector there would break the storage-kind invariant
    /// [`Counter::merge_from`] relies on.
    pub fn from_dense(table: &Table, attrs: &[AttrId], counts: Vec<u64>) -> Result<Self> {
        let mut radices = Vec::with_capacity(attrs.len());
        for &a in attrs {
            radices.push(table.schema().cardinality(a)? as u64);
        }
        let mut strides = vec![1u64; attrs.len()];
        let mut grid: u64 = 1;
        for i in (0..attrs.len()).rev() {
            strides[i] = grid;
            grid = grid.checked_mul(radices[i]).ok_or_else(|| {
                TabularError::InvalidArgument("group-by grid overflows u64".into())
            })?;
        }
        if grid > DENSE_LIMIT {
            return Err(TabularError::InvalidArgument(format!(
                "grid of {grid} cells exceeds the dense storage limit {DENSE_LIMIT}"
            )));
        }
        if counts.len() as u64 != grid {
            return Err(TabularError::InvalidArgument(format!(
                "dense counts of {} cells do not cover the {grid}-cell grid",
                counts.len()
            )));
        }
        let mut total: u64 = 0;
        for &n in &counts {
            total = total
                .checked_add(n)
                .ok_or_else(|| TabularError::InvalidArgument("dense counts overflow u64".into()))?;
        }
        Ok(Counter {
            attrs: attrs.to_vec(),
            radices,
            strides,
            grid,
            total,
            storage: Storage::Dense(counts),
        })
    }

    /// One counting pass fanned across the shards of `sharded` (via the
    /// rayon shim) and reduced **in shard-index order**.
    ///
    /// Counts are unsigned integers and merging is addition, so the
    /// result is *exactly* — not approximately — the counter a single
    /// contiguous [`Counter::build`] would produce, for **any** shard
    /// count (including 1, which takes the single-pass path verbatim).
    /// Downstream floating-point estimates computed from a sharded pass
    /// are therefore bit-identical to the unsharded ones.
    pub fn build_sharded(sharded: &ShardedTable, attrs: &[AttrId], ctx: &Context) -> Result<Self> {
        use rayon::prelude::*;
        let table = sharded.table().as_ref();
        if sharded.n_shards() == 1 {
            return Counter::build(table, attrs, ctx);
        }
        let indices: Vec<usize> = (0..sharded.n_shards()).collect();
        let partials: Vec<Result<Counter>> = indices
            .par_iter()
            .map(|&i| Counter::build_range(table, attrs, ctx, sharded.shard(i).rows()))
            .collect();
        // Fixed-order reduce: shard 0 is the accumulator, shards 1..
        // merge into it in index order. Integer merges commute, but the
        // fixed order keeps the reduction auditable and makes the
        // determinism argument trivial.
        let mut merged: Option<Counter> = None;
        for partial in partials {
            let partial = partial?;
            match &mut merged {
                None => merged = Some(partial),
                Some(m) => m.merge_from(&partial)?,
            }
        }
        merged.ok_or_else(|| TabularError::InvalidArgument("zero shards".into()))
    }

    /// Add another counter's counts into this one. Both counters must
    /// group the same attribute tuple over the same domains (they then
    /// share grid, strides and storage kind by construction).
    pub fn merge_from(&mut self, other: &Counter) -> Result<()> {
        if self.attrs != other.attrs || self.radices != other.radices {
            return Err(TabularError::InvalidArgument(
                "cannot merge counters over different attribute grids".into(),
            ));
        }
        match (&mut self.storage, &other.storage) {
            (Storage::Dense(dst), Storage::Dense(src)) => {
                for (x, &y) in dst.iter_mut().zip(src) {
                    *x += y;
                }
            }
            (Storage::Sparse(sink), Storage::Sparse(other)) => {
                // lint:allow(ordered-iteration): u64 addition into an entry
                // keyed by packed value codes is commutative, so the merged
                // counts are identical for every visit order.
                for (&key, &n) in other {
                    *sink.entry(key).or_insert(0) += n;
                }
            }
            // storage kind is a pure function of the grid size, which
            // the radices check above already pinned equal
            _ => {
                return Err(TabularError::InvalidArgument(
                    "cannot merge counters with different storage kinds".into(),
                ))
            }
        }
        self.total += other.total;
        Ok(())
    }

    #[inline]
    fn bump(&mut self, key: GroupKey) {
        match &mut self.storage {
            Storage::Dense(v) => v[key as usize] += 1,
            Storage::Sparse(m) => *m.entry(key).or_insert(0) += 1,
        }
    }

    /// The grouped attributes, in key order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Total rows counted (those matching the build context).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Size of the full value grid `∏ |Dom(Xᵢ)|`.
    pub fn grid_size(&self) -> u64 {
        self.grid
    }

    /// Pack a full value tuple into its [`GroupKey`].
    ///
    /// # Panics
    /// Panics (debug) if the tuple arity or any code is out of range — the
    /// caller controls both, so this is an internal contract.
    #[inline]
    pub fn key_of(&self, values: &[Value]) -> GroupKey {
        debug_assert_eq!(values.len(), self.attrs.len());
        let mut key = 0;
        for ((&v, &stride), &radix) in values.iter().zip(&self.strides).zip(&self.radices) {
            debug_assert!(u64::from(v) < radix, "code {v} out of radix {radix}");
            key += u64::from(v) * stride;
        }
        key
    }

    /// Unpack a [`GroupKey`] back to a value tuple.
    pub fn values_of(&self, key: GroupKey) -> Vec<Value> {
        let mut out = vec![0 as Value; self.attrs.len()];
        self.unpack_into(key, &mut out);
        out
    }

    /// Count of an exact value tuple.
    pub fn count(&self, values: &[Value]) -> u64 {
        let key = self.key_of(values);
        match &self.storage {
            Storage::Dense(v) => v[key as usize],
            Storage::Sparse(m) => m.get(&key).copied().unwrap_or(0),
        }
    }

    /// Count summed over every attribute not fixed by `fixed`, where
    /// `fixed[i]` optionally pins the i-th grouped attribute.
    pub fn marginal_count(&self, fixed: &[Option<Value>]) -> u64 {
        debug_assert_eq!(fixed.len(), self.attrs.len());
        let mut acc = 0u64;
        self.for_each_nonzero(|values, n| {
            if fixed
                .iter()
                .zip(values)
                .all(|(f, &v)| f.is_none_or(|want| want == v))
            {
                acc += n;
            }
        });
        acc
    }

    /// Visit every observed (non-zero) group.
    pub fn for_each_nonzero<F: FnMut(&[Value], u64)>(&self, mut f: F) {
        match &self.storage {
            Storage::Dense(v) => {
                let mut values = vec![0 as Value; self.attrs.len()];
                for (key, &n) in v.iter().enumerate() {
                    if n > 0 {
                        self.unpack_into(key as u64, &mut values);
                        f(&values, n);
                    }
                }
            }
            Storage::Sparse(m) => {
                let mut values = vec![0 as Value; self.attrs.len()];
                // lint:allow(ordered-iteration): callers that need an order
                // (scores.rs freezing passes) sort what they build from this
                // visit; the closure contract promises no order.
                for (&key, &n) in m {
                    self.unpack_into(key, &mut values);
                    f(&values, n);
                }
            }
        }
    }

    #[inline]
    fn unpack_into(&self, mut key: GroupKey, out: &mut [Value]) {
        for (cell, &stride) in out.iter_mut().zip(&self.strides) {
            *cell = (key / stride) as Value;
            key %= stride;
        }
    }

    /// Observed groups and counts, materialized (sorted by key for
    /// determinism).
    pub fn nonzero_groups(&self) -> Vec<(Vec<Value>, u64)> {
        let mut out = Vec::new();
        self.for_each_nonzero(|values, n| out.push((values.to_vec(), n)));
        out.sort();
        out
    }

    /// Smoothed conditional probability
    /// `Pr(target_attr = target_value | given)` within the counted rows,
    /// where `given[i]` pins grouped attributes and `target` indexes the
    /// grouped attribute list.
    pub fn conditional(
        &self,
        target: usize,
        target_value: Value,
        given: &[Option<Value>],
        alpha: f64,
    ) -> f64 {
        debug_assert!(given[target].is_none(), "target must be free in `given`");
        let denom_n = self.marginal_count(given) as f64;
        let mut num_fixed = given.to_vec();
        num_fixed[target] = Some(target_value);
        let num_n = self.marginal_count(&num_fixed) as f64;
        let card = self.radices[target] as f64;
        let denom = denom_n + alpha * card;
        if denom == 0.0 {
            // Uninformative: uniform over the target's domain.
            return 1.0 / card;
        }
        (num_n + alpha) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::Schema;

    fn table() -> Table {
        let mut s = Schema::new();
        s.push("a", Domain::categorical(["0", "1"]));
        s.push("b", Domain::categorical(["0", "1", "2"]));
        s.push("c", Domain::boolean());
        let mut t = Table::new(s);
        let rows: [[u32; 3]; 7] = [
            [0, 0, 0],
            [0, 1, 1],
            [0, 1, 1],
            [1, 2, 0],
            [1, 2, 1],
            [1, 0, 1],
            [1, 1, 0],
        ];
        for r in rows {
            t.push_row(&r).unwrap();
        }
        t
    }

    #[test]
    fn counts_match_table_counts() {
        let t = table();
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let c = Counter::build(&t, &attrs, &Context::empty()).unwrap();
        assert_eq!(c.total(), 7);
        assert_eq!(c.count(&[0, 1, 1]), 2);
        assert_eq!(c.count(&[1, 2, 0]), 1);
        assert_eq!(c.count(&[0, 2, 0]), 0);
    }

    #[test]
    fn key_roundtrip() {
        let t = table();
        let c = Counter::build(&t, &[AttrId(1), AttrId(2)], &Context::empty()).unwrap();
        for b in 0..3u32 {
            for cc in 0..2u32 {
                let key = c.key_of(&[b, cc]);
                assert_eq!(c.values_of(key), vec![b, cc]);
            }
        }
        assert_eq!(c.grid_size(), 6);
    }

    #[test]
    fn marginals_sum_correctly() {
        let t = table();
        let c = Counter::build(&t, &[AttrId(0), AttrId(2)], &Context::empty()).unwrap();
        // marginal over c for a=1: rows 3..=6 -> 4
        assert_eq!(c.marginal_count(&[Some(1), None]), 4);
        // full marginal = total
        assert_eq!(c.marginal_count(&[None, None]), 7);
        // pin both
        assert_eq!(c.marginal_count(&[Some(1), Some(1)]), 2);
    }

    #[test]
    fn build_with_context_restricts_rows() {
        let t = table();
        let ctx = Context::of([(AttrId(0), 1)]);
        let c = Counter::build(&t, &[AttrId(2)], &ctx).unwrap();
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(&[1]), 2);
    }

    #[test]
    fn conditional_matches_table_estimate() {
        let t = table();
        let attrs = [AttrId(0), AttrId(2)];
        let c = Counter::build(&t, &attrs, &Context::empty()).unwrap();
        // Pr(c=1 | a=0) = 2/3
        let p = c.conditional(1, 1, &[Some(0), None], 0.0);
        let p_tab = t
            .conditional_probability(AttrId(2), 1, &Context::of([(AttrId(0), 0)]), 0.0)
            .unwrap();
        assert!((p - p_tab).abs() < 1e-12);
        // a context value that never occurs yields an empty counter
        let empty =
            Counter::build(&t, &attrs, &Context::of([(AttrId(1), 2), (AttrId(0), 0)])).unwrap();
        assert_eq!(empty.total(), 0);
        // and conditionals fall back to uniform
        let p_u = empty.conditional(1, 1, &[None, None], 0.0);
        assert!((p_u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonzero_groups_sorted_and_complete() {
        let t = table();
        let c = Counter::build(&t, &[AttrId(0), AttrId(1)], &Context::empty()).unwrap();
        let groups = c.nonzero_groups();
        let total: u64 = groups.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7);
        let mut sorted = groups.clone();
        sorted.sort();
        assert_eq!(groups, sorted);
    }

    #[test]
    fn range_builds_partition_the_full_count() {
        let t = table();
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let full = Counter::build(&t, &attrs, &Context::empty()).unwrap();
        let mut merged = Counter::build_range(&t, &attrs, &Context::empty(), 0..3).unwrap();
        let rest = Counter::build_range(&t, &attrs, &Context::empty(), 3..7).unwrap();
        merged.merge_from(&rest).unwrap();
        assert_eq!(merged.total(), full.total());
        assert_eq!(merged.nonzero_groups(), full.nonzero_groups());
        // invalid ranges are typed errors
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..3;
        assert!(Counter::build_range(&t, &attrs, &Context::empty(), reversed).is_err());
        assert!(Counter::build_range(&t, &attrs, &Context::empty(), 0..8).is_err());
        // mismatched grids refuse to merge
        let other = Counter::build(&t, &[AttrId(0)], &Context::empty()).unwrap();
        assert!(merged.merge_from(&other).is_err());
    }

    #[test]
    fn sharded_build_equals_single_pass_for_any_shard_count() {
        let t = table();
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let contexts = [Context::empty(), Context::of([(AttrId(0), 1)])];
        for ctx in &contexts {
            let full = Counter::build(&t, &attrs, ctx).unwrap();
            for n_shards in [1usize, 2, 3, 7, 16] {
                let sharded = ShardedTable::from_shared(std::sync::Arc::new(t.clone()), n_shards);
                let c = Counter::build_sharded(&sharded, &attrs, ctx).unwrap();
                assert_eq!(c.total(), full.total(), "{n_shards} shards");
                assert_eq!(
                    c.nonzero_groups(),
                    full.nonzero_groups(),
                    "{n_shards} shards"
                );
            }
        }
    }

    #[test]
    fn from_dense_equals_a_scan_built_counter() {
        let t = table();
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let scanned = Counter::build(&t, &attrs, &Context::empty()).unwrap();
        // rebuild the dense vector a scan would produce, cell by cell
        let mut counts = vec![0u64; scanned.grid_size() as usize];
        scanned.for_each_nonzero(|values, n| counts[scanned.key_of(values) as usize] = n);
        let assembled = Counter::from_dense(&t, &attrs, counts).unwrap();
        assert_eq!(assembled.total(), scanned.total());
        assert_eq!(assembled.nonzero_groups(), scanned.nonzero_groups());
        // and it merges with scan-built counters (same storage kind)
        let mut merged = assembled.clone();
        merged.merge_from(&scanned).unwrap();
        assert_eq!(merged.total(), 14);
        // wrong-length vectors are typed errors
        assert!(Counter::from_dense(&t, &attrs, vec![0; 3]).is_err());
    }

    #[test]
    fn conditional_uniform_on_empty_support() {
        let t = table();
        let c = Counter::build(&t, &[AttrId(0), AttrId(1)], &Context::empty()).unwrap();
        // b has no rows with a-code that never occurs in subset: pin b=2 & ask about a conditioned on impossible combos
        // Pin a=0, b=2 has zero rows; conditional of target a given b=2 is fine though:
        let p = c.conditional(0, 0, &[None, Some(2)], 0.0);
        assert!((p - 0.0).abs() < 1e-12); // a=0,b=2 never occurs; a=1,b=2 occurs twice
        let p1 = c.conditional(0, 1, &[None, Some(2)], 0.0);
        assert!((p1 - 1.0).abs() < 1e-12);
    }
}
