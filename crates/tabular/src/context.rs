//! Contexts: conjunctions of attribute-value assignments.
//!
//! A [`Context`] is the paper's `k ∈ Dom(K)` — a partial assignment of
//! attributes used to scope explanation scores to a sub-population
//! (contextual explanations) or a single individual (local explanations,
//! where `K = V`). The empty context is the whole population (global).

use crate::domain::{AttrId, Value};

/// A sorted, duplicate-free conjunction `X₁ = v₁ ∧ … ∧ Xₙ = vₙ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Context {
    // Sorted by attribute id; at most one entry per attribute.
    entries: Vec<(AttrId, Value)>,
}

impl Context {
    /// The empty context (matches every row).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a context from assignment pairs. Later duplicates override
    /// earlier ones (useful for "take this row but change X").
    pub fn of<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (AttrId, Value)>,
    {
        let mut ctx = Self::empty();
        for (a, v) in pairs {
            ctx.set(a, v);
        }
        ctx
    }

    /// Assign `attr = value`, replacing any previous assignment of `attr`.
    pub fn set(&mut self, attr: AttrId, value: Value) {
        match self.entries.binary_search_by_key(&attr, |&(a, _)| a) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (attr, value)),
        }
    }

    /// Remove any assignment of `attr`, returning the removed value.
    pub fn unset(&mut self, attr: AttrId) -> Option<Value> {
        match self.entries.binary_search_by_key(&attr, |&(a, _)| a) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value assigned to `attr`, if any.
    pub fn get(&self, attr: AttrId) -> Option<Value> {
        self.entries
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `attr` is constrained by this context.
    pub fn constrains(&self, attr: AttrId) -> bool {
        self.get(attr).is_some()
    }

    /// Number of constrained attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this is the empty (global) context.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate the `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, Value)> + '_ {
        self.entries.iter().copied()
    }

    /// The constrained attribute ids, in order.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.entries.iter().map(|&(a, _)| a)
    }

    /// A new context extended with `attr = value`.
    #[must_use]
    pub fn with(&self, attr: AttrId, value: Value) -> Self {
        let mut c = self.clone();
        c.set(attr, value);
        c
    }

    /// A new context with `attr` unconstrained.
    #[must_use]
    pub fn without(&self, attr: AttrId) -> Self {
        let mut c = self.clone();
        c.unset(attr);
        c
    }

    /// Merge two contexts; `other`'s assignments win on conflicts.
    #[must_use]
    pub fn merged(&self, other: &Context) -> Self {
        let mut c = self.clone();
        for (a, v) in other.iter() {
            c.set(a, v);
        }
        c
    }

    /// Test whether a full row (indexed by attribute id) satisfies the
    /// conjunction.
    #[inline]
    pub fn matches_row(&self, row: &[Value]) -> bool {
        self.entries
            .iter()
            .all(|&(a, v)| row.get(a.index()).copied() == Some(v))
    }
}

impl FromIterator<(AttrId, Value)> for Context {
    fn from_iter<I: IntoIterator<Item = (AttrId, Value)>>(iter: I) -> Self {
        Context::of(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);
    const C: AttrId = AttrId(2);

    #[test]
    fn set_get_unset() {
        let mut ctx = Context::empty();
        assert!(ctx.is_empty());
        ctx.set(B, 3);
        ctx.set(A, 1);
        assert_eq!(ctx.get(A), Some(1));
        assert_eq!(ctx.get(B), Some(3));
        assert_eq!(ctx.len(), 2);
        // entries stay sorted by attr
        let attrs: Vec<_> = ctx.attrs().collect();
        assert_eq!(attrs, vec![A, B]);
        assert_eq!(ctx.unset(A), Some(1));
        assert_eq!(ctx.get(A), None);
        assert_eq!(ctx.unset(A), None);
    }

    #[test]
    fn set_overrides() {
        let ctx = Context::of([(A, 1), (A, 2)]);
        assert_eq!(ctx.get(A), Some(2));
        assert_eq!(ctx.len(), 1);
    }

    #[test]
    fn matches_rows() {
        let ctx = Context::of([(A, 1), (C, 0)]);
        assert!(ctx.matches_row(&[1, 9, 0]));
        assert!(!ctx.matches_row(&[1, 9, 1]));
        assert!(!ctx.matches_row(&[0, 9, 0]));
        // short row cannot match an out-of-range constraint
        assert!(!ctx.matches_row(&[1]));
        assert!(Context::empty().matches_row(&[]));
    }

    #[test]
    fn with_without_merged() {
        let base = Context::of([(A, 1)]);
        let ext = base.with(B, 2);
        assert_eq!(ext.get(B), Some(2));
        assert_eq!(base.get(B), None, "with() must not mutate the receiver");
        let shrunk = ext.without(A);
        assert!(!shrunk.constrains(A));
        let merged = base.merged(&Context::of([(A, 5), (C, 7)]));
        assert_eq!(merged.get(A), Some(5));
        assert_eq!(merged.get(C), Some(7));
    }
}
